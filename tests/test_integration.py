"""Cross-module integration tests: full scenarios against generator ground truth."""

import pytest

from repro import HumMer
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import cd_stores_scenario, crisis_scenario, students_scenario
from repro.evaluation import evaluate_clusters, evaluate_correspondences, evaluate_fusion


def register_all(dataset):
    hummer = HumMer()
    for alias, relation in dataset.sources.items():
        hummer.register(alias, relation)
    return hummer


class TestStudentsScenarioEndToEnd:
    @pytest.fixture(scope="class")
    def outcome(self):
        dataset = students_scenario(
            entity_count=50, overlap=0.4, corruption=CorruptionConfig.low(), seed=77
        )
        hummer = register_all(dataset)
        result = hummer.fuse(list(dataset.sources))
        return dataset, result

    def test_schema_matching_recovers_renamings(self, outcome):
        dataset, result = outcome
        names = [s.name for s in result.sources]
        truth = dataset.truth.true_correspondences(names[0], names[1])
        metrics = evaluate_correspondences(result.correspondences, truth)
        assert metrics.f1 >= 0.8

    def test_duplicate_detection_quality(self, outcome):
        dataset, result = outcome
        truth_pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
        metrics = evaluate_clusters(result.detection.cluster_assignment, truth_pairs)
        assert metrics.f1 >= 0.85

    def test_output_size_close_to_entity_count(self, outcome):
        dataset, result = outcome
        input_tuples = sum(len(s) for s in result.sources)
        entities = dataset.truth.entity_count()
        assert len(result.relation) <= input_tuples
        # close to the true entity count; generated people may share a name,
        # so the occasional extra merge of genuinely indistinguishable
        # entities is allowed
        assert abs(len(result.relation) - entities) <= 0.1 * entities

    def test_fusion_quality_against_clean_records(self, outcome):
        dataset, result = outcome
        quality = evaluate_fusion(
            result.relation,
            dataset.truth.clean_records,
            entity_key_column="name",
            entity_key_attribute="name",
            attributes=["major", "university", "semester"],
        )
        assert quality.conciseness >= 0.9
        assert quality.completeness >= 0.8

    def test_every_output_tuple_has_lineage(self, outcome):
        _, result = outcome
        sources_used = set(result.fusion.lineage.sources_used())
        assert sources_used <= {s.name for s in result.sources}
        assert sources_used  # at least one source contributed


class TestCdScenarioEndToEnd:
    def test_three_store_fusion(self):
        dataset = cd_stores_scenario(
            entity_count=40, store_count=3, overlap=0.5,
            corruption=CorruptionConfig.low(), seed=55,
        )
        hummer = register_all(dataset)
        result = hummer.fuse(list(dataset.sources), resolutions=None)
        truth_pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
        metrics = evaluate_clusters(result.detection.cluster_assignment, truth_pairs)
        assert metrics.f1 >= 0.7
        # the preferred store's schema survives
        for column in ("artist", "title", "price"):
            assert result.relation.schema.has_column(column)

    def test_min_price_query_is_never_above_any_store_price(self):
        dataset = cd_stores_scenario(
            entity_count=30, store_count=2, overlap=0.8,
            corruption=CorruptionConfig.clean(), seed=56,
        )
        hummer = register_all(dataset)
        aliases = list(dataset.sources)
        result = hummer.query(
            f"SELECT title, RESOLVE(price, min) FUSE FROM {aliases[0]}, {aliases[1]} "
            "FUSE BY (title)"
        )
        max_clean_price = max(
            record["price"] for record in dataset.truth.clean_records.values()
        )
        for row in result:
            if row["price"] is not None:
                assert row["price"] <= max_clean_price * 1.5


class TestCrisisScenarioEndToEnd:
    def test_pipeline_handles_three_heterogeneous_sources(self):
        dataset = crisis_scenario(
            entity_count=30, overlap=0.6, corruption=CorruptionConfig.low(), seed=58
        )
        hummer = register_all(dataset)
        result = hummer.fuse(list(dataset.sources))
        assert len(result.sources) == 3
        # duplicates across the three organisations were merged
        input_tuples = sum(len(s) for s in result.sources)
        assert len(result.relation) < input_tuples
        # conflicts were found and resolved
        assert result.conflicts.contradiction_count > 0
        assert result.fusion.resolved_conflict_count > 0


class TestRobustness:
    def test_single_source_single_tuple(self):
        hummer = HumMer()
        hummer.register("tiny", [{"a": 1, "b": "x"}])
        result = hummer.fuse(["tiny"])
        assert len(result.relation) == 1

    def test_sources_with_disjoint_schemas_and_no_shared_instances(self):
        hummer = HumMer()
        hummer.register("left", [{"name": "Anna Schmidt", "age": 22}])
        hummer.register("right", [{"product": "Abbey Road", "price": 12.99}])
        result = hummer.fuse(["left", "right"])
        # nothing merges, nothing crashes; all columns survive
        assert len(result.relation) == 2

    def test_source_with_all_null_column(self):
        hummer = HumMer()
        hummer.register("a", [{"name": "Anna Schmidt", "note": None},
                              {"name": "Ben Mueller", "note": None}])
        hummer.register("b", [{"name": "Anna Schmidt", "note": None}])
        result = hummer.fuse(["a", "b"])
        assert len(result.relation) <= 3

    def test_identical_sources_collapse_to_one_copy(self):
        rows = [
            {"name": "Anna Schmidt", "city": "Berlin", "email": "anna@example.org"},
            {"name": "Ben Mueller", "city": "Hamburg", "email": "ben@example.org"},
        ]
        hummer = HumMer()
        hummer.register("first", rows)
        hummer.register("second", rows)
        result = hummer.fuse(["first", "second"])
        assert len(result.relation) == 2

    def test_empty_source_does_not_break_the_pipeline(self):
        hummer = HumMer()
        hummer.register("filled", [{"name": "Anna Schmidt", "city": "Berlin"},
                                   {"name": "Ben Mueller", "city": "Hamburg"}])
        hummer.register("empty", [])
        result = hummer.fuse(["filled", "empty"])
        assert len(result.relation) == 2
