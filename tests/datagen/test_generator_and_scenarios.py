"""Tests for the dirty-source generator and the scenario builders."""

import pytest

from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.generator import DirtySourceGenerator, SourceSpec
from repro.datagen.scenarios import (
    cd_stores_scenario,
    crisis_scenario,
    students_scenario,
    thalia_scenario,
)
from repro.datagen.scenarios.thalia import AUTOMATABLE_CATEGORIES, THALIA_CATEGORIES


ENTITIES = [
    {"_entity": f"e{i}", "name": f"Person {i}", "age": 20 + i, "city": "Berlin"}
    for i in range(20)
]


class TestDirtySourceGenerator:
    def make(self, **kwargs):
        specs = [
            SourceSpec(name="a"),
            SourceSpec(name="b", rename={"name": "full_name"}, drop=["city"]),
        ]
        defaults = dict(overlap=0.5, default_corruption=CorruptionConfig.clean(), seed=3)
        defaults.update(kwargs)
        return DirtySourceGenerator(specs, **defaults)

    def test_sources_and_ground_truth_are_consistent(self):
        dataset = self.make().generate(ENTITIES)
        assert set(dataset.sources) == {"a", "b"}
        for (source, row_index), entity in dataset.truth.entity_of.items():
            assert row_index < len(dataset.sources[source])
            assert entity in dataset.truth.clean_records

    def test_renaming_and_dropping_applied(self):
        dataset = self.make().generate(ENTITIES)
        b = dataset.sources["b"]
        assert "full_name" in b.schema
        assert "name" not in b.schema
        assert "city" not in b.schema

    def test_attribute_map_records_labels(self):
        dataset = self.make().generate(ENTITIES)
        assert dataset.truth.attribute_map["name"]["b"] == "full_name"
        assert dataset.truth.attribute_map["name"]["a"] == "name"
        assert dataset.truth.true_correspondences("a", "b") >= {("name", "full_name")}

    def test_overlap_creates_cross_source_duplicates(self):
        dataset = self.make(overlap=1.0).generate(ENTITIES)
        pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
        assert len(pairs) >= len(ENTITIES) * 0.8

    def test_zero_overlap_creates_no_duplicates(self):
        dataset = self.make(overlap=0.0).generate(ENTITIES)
        pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
        assert pairs == set()

    def test_deterministic_with_same_seed(self):
        first = self.make(seed=9).generate(ENTITIES)
        second = self.make(seed=9).generate(ENTITIES)
        assert first.sources["a"].rows == second.sources["a"].rows
        assert first.truth.entity_of == second.truth.entity_of

    def test_coverage_reduces_source_size(self):
        specs = [SourceSpec(name="a"), SourceSpec(name="b", coverage=0.2)]
        generator = DirtySourceGenerator(
            specs, overlap=1.0, default_corruption=CorruptionConfig.clean(), seed=5
        )
        dataset = generator.generate(ENTITIES)
        assert len(dataset.sources["b"]) < len(dataset.sources["a"])

    def test_conflict_fields_produce_genuinely_different_values(self):
        specs = [SourceSpec(name="a"), SourceSpec(name="b")]
        generator = DirtySourceGenerator(
            specs,
            overlap=1.0,
            conflict_fields=["age"],
            default_corruption=CorruptionConfig(
                typo_probability=0, missing_probability=0, case_change_probability=0,
                abbreviation_probability=0, token_swap_probability=0,
                numeric_noise_probability=0, conflicting_value_probability=1.0,
            ),
            seed=5,
        )
        dataset = generator.generate(ENTITIES)
        conflicts = 0
        for (source, row), entity in dataset.truth.entity_of.items():
            clean_age = dataset.truth.clean_records[entity]["age"]
            actual = dataset.sources[source].cell(row, "age")
            if actual is not None and actual != clean_age:
                conflicts += 1
        assert conflicts > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DirtySourceGenerator([], overlap=0.5)
        with pytest.raises(ValueError):
            DirtySourceGenerator([SourceSpec(name="a")], overlap=1.5)

    def test_chain_validation(self):
        with pytest.raises(ValueError, match="chain_fraction"):
            self.make(chain_fraction=1.5, chain_fields=["city"])
        with pytest.raises(ValueError, match="chain_fields"):
            self.make(chain_fraction=0.5)

    def test_chain_corruption_plants_bridges(self):
        generator = self.make(chain_fraction=1.0, chain_fields=["age", "city"])
        dataset = generator.generate(ENTITIES)
        bridges = dataset.truth.chain_bridges
        assert bridges
        for foreign, bridged, source, row in bridges:
            assert foreign != bridged
            # ground truth still books the bridge row under its own entity
            assert dataset.truth.entity_of[(source, row)] == bridged
            clean = dataset.truth.clean_records[foreign]
            relation = dataset.sources[source]
            if "age" in relation.schema:
                assert relation.column("age")[row] == clean["age"]

    def test_chain_corruption_only_touches_bridge_rows(self):
        plain = self.make().generate(ENTITIES)
        chained = self.make(chain_fraction=0.8, chain_fields=["age", "city"]).generate(
            ENTITIES
        )
        bridge_rows = {(s, r) for _, _, s, r in chained.truth.chain_bridges}
        assert bridge_rows
        for name in plain.sources:
            before, after = plain.sources[name], chained.sources[name]
            assert len(before) == len(after)
            for row in range(len(before)):
                same = all(
                    before.column(column.name)[row] == after.column(column.name)[row]
                    for column in before.schema.columns
                )
                if (name, row) not in bridge_rows:
                    assert same, (name, row)

    def test_chain_corruption_respects_rename_and_drop(self):
        generator = self.make(chain_fraction=1.0, chain_fields=["name", "city"])
        dataset = generator.generate(ENTITIES)
        source_b = dataset.sources["b"]
        assert "city" not in source_b.schema  # drop honoured, no new column
        for foreign, _, source, row in dataset.truth.chain_bridges:
            if source != "b":
                continue
            # "name" is renamed to "full_name" in source b
            assert source_b.column("full_name")[row] == (
                dataset.truth.clean_records[foreign]["name"]
            )

    def test_chain_corruption_is_deterministic(self):
        first = self.make(chain_fraction=0.6, chain_fields=["city"]).generate(ENTITIES)
        second = self.make(chain_fraction=0.6, chain_fields=["city"]).generate(ENTITIES)
        assert first.truth.chain_bridges == second.truth.chain_bridges
        assert first.sources["a"].rows == second.sources["a"].rows


class TestScenarios:
    def test_students_scenario_shape(self):
        dataset = students_scenario(entity_count=25, seed=3)
        assert set(dataset.sources) == {"EE_Students", "CS_Students"}
        cs = dataset.sources["CS_Students"]
        assert "student_name" in cs.schema
        assert "city" not in cs.schema
        assert dataset.truth.entity_count() <= 25

    def test_cd_stores_scenario_shape(self):
        dataset = cd_stores_scenario(entity_count=30, store_count=3, seed=3)
        assert len(dataset.sources) == 3
        # second store uses the renamed schema
        second = list(dataset.sources.values())[1]
        assert "interpret" in second.schema or "album" in second.schema

    def test_cd_store_count_validation(self):
        with pytest.raises(ValueError):
            cd_stores_scenario(store_count=0)

    def test_crisis_scenario_shape(self):
        dataset = crisis_scenario(entity_count=20, seed=3)
        assert set(dataset.sources) == {"field_hospital", "relief_ngo", "insurance_registry"}
        hospital = dataset.sources["field_hospital"]
        assert "patient" in hospital.schema
        assert "damage" not in hospital.schema

    def test_students_scenario_chain_mode(self):
        dataset = students_scenario(entity_count=40, overlap=0.5, seed=5, chain_fraction=0.6)
        assert dataset.truth.chain_bridges
        clean = students_scenario(entity_count=40, overlap=0.5, seed=5)
        assert not clean.truth.chain_bridges

    def test_scenarios_are_deterministic(self):
        first = students_scenario(entity_count=15, seed=8)
        second = students_scenario(entity_count=15, seed=8)
        assert first.sources["EE_Students"].rows == second.sources["EE_Students"].rows

    def test_thalia_categories_complete(self):
        assert set(THALIA_CATEGORIES) == set(range(1, 13))
        assert AUTOMATABLE_CATEGORIES <= set(THALIA_CATEGORIES)

    @pytest.mark.parametrize("category", sorted(THALIA_CATEGORIES))
    def test_thalia_scenario_builds_every_category(self, category):
        dataset = thalia_scenario(category, entity_count=12, seed=2)
        assert set(dataset.sources) == {"university_a", "university_b"}
        assert len(dataset.sources["university_a"]) > 0
        assert len(dataset.sources["university_b"]) > 0

    def test_thalia_opaque_labels_category(self):
        dataset = thalia_scenario(11, entity_count=12, seed=2)
        assert "col_1" in dataset.sources["university_b"].schema

    def test_thalia_synonym_category(self):
        dataset = thalia_scenario(1, entity_count=12, seed=2)
        assert "lecturer" in dataset.sources["university_b"].schema

    def test_thalia_invalid_category(self):
        with pytest.raises(ValueError):
            thalia_scenario(13)
