"""Test package."""
