"""Tests for the corruption operators."""

from repro.datagen.corruptor import CorruptionConfig, Corruptor


class TestCorruptionConfig:
    def test_presets_ordering(self):
        low, medium, high = CorruptionConfig.low(), CorruptionConfig.medium(), CorruptionConfig.high()
        assert low.typo_probability < medium.typo_probability < high.typo_probability
        assert low.missing_probability < high.missing_probability

    def test_clean_preset_is_all_zero(self):
        clean = CorruptionConfig.clean()
        assert clean.typo_probability == 0
        assert clean.missing_probability == 0
        assert clean.conflicting_value_probability == 0


class TestCorruptor:
    def test_clean_config_is_identity(self):
        corruptor = Corruptor(CorruptionConfig.clean(), seed=1)
        for value in ["Abbey Road", 42, 3.14, True, None]:
            assert corruptor.corrupt_value(value) == value

    def test_deterministic_given_seed(self):
        first = Corruptor(CorruptionConfig.high(), seed=7)
        second = Corruptor(CorruptionConfig.high(), seed=7)
        values = ["Anna Schmidt", "Berlin", "Kind of Blue", 12.99, 1969]
        assert [first.corrupt_value(v) for v in values] == [
            second.corrupt_value(v) for v in values
        ]

    def test_different_seeds_eventually_differ(self):
        first = Corruptor(CorruptionConfig.high(), seed=1)
        second = Corruptor(CorruptionConfig.high(), seed=2)
        values = ["Anna Schmidt"] * 50
        assert [first.corrupt_value(v) for v in values] != [
            second.corrupt_value(v) for v in values
        ]

    def test_null_stays_null(self):
        assert Corruptor(CorruptionConfig.high(), seed=3).corrupt_value(None) is None

    def test_booleans_pass_through(self):
        corruptor = Corruptor(CorruptionConfig(missing_probability=0.0), seed=3)
        assert corruptor.corrupt_value(True) is True

    def test_high_corruption_changes_many_strings(self):
        corruptor = Corruptor(CorruptionConfig.high(), seed=11)
        originals = [f"Example Value {i}" for i in range(100)]
        changed = sum(1 for v in originals if corruptor.corrupt_value(v) != v)
        assert changed > 30

    def test_high_corruption_introduces_missing_values(self):
        corruptor = Corruptor(CorruptionConfig.high(), seed=13)
        nulls = sum(1 for _ in range(200) if corruptor.corrupt_value("something") is None)
        assert nulls > 5

    def test_numeric_noise_stays_close(self):
        config = CorruptionConfig(
            typo_probability=0, missing_probability=0,
            numeric_noise_probability=1.0, numeric_noise_scale=0.05,
        )
        corruptor = Corruptor(config, seed=17)
        for _ in range(50):
            corrupted = corruptor.corrupt_value(100.0)
            assert 90.0 <= corrupted <= 110.0

    def test_integer_values_stay_integers(self):
        config = CorruptionConfig(
            typo_probability=0, missing_probability=0, numeric_noise_probability=1.0,
            numeric_noise_scale=0.2,
        )
        corruptor = Corruptor(config, seed=19)
        assert all(isinstance(corruptor.corrupt_value(1969), int) for _ in range(20))

    def test_should_conflict_rate_roughly_matches_probability(self):
        corruptor = Corruptor(CorruptionConfig(conflicting_value_probability=0.5), seed=23)
        rate = sum(corruptor.should_conflict() for _ in range(1000)) / 1000
        assert 0.4 < rate < 0.6

    def test_typo_operators_produce_valid_strings(self):
        corruptor = Corruptor(CorruptionConfig(typo_probability=1.0, missing_probability=0.0), seed=29)
        for value in ["a", "ab", "Abbey Road", "X"]:
            corrupted = corruptor.corrupt_value(value)
            assert isinstance(corrupted, str)
            assert corrupted  # never empties a value
