"""Tests for the Fuse By parser (AST construction and error handling)."""

import pytest

from repro.engine import expressions as expr
from repro.exceptions import ParseError
from repro.fuseby.ast import ResolveItem, SelectItem, StarItem
from repro.fuseby.parser import parse_query


class TestSelectList:
    def test_star(self):
        query = parse_query("SELECT * FROM t")
        assert query.has_star
        assert isinstance(query.select_items[0], StarItem)

    def test_plain_columns_with_aliases(self):
        query = parse_query("SELECT a, b AS bee, t.c FROM t")
        items = query.select_items
        assert isinstance(items[0], SelectItem)
        assert items[1].alias == "bee"
        assert items[2].column.table == "t"
        assert items[2].column.qualified_name == "t.c"

    def test_resolve_without_function(self):
        query = parse_query("SELECT RESOLVE(Age) FUSE FROM a, b FUSE BY (Name)")
        item = query.select_items[0]
        assert isinstance(item, ResolveItem)
        assert item.function is None

    def test_resolve_with_function(self):
        query = parse_query("SELECT Name, RESOLVE(Age, max) FUSE FROM a, b FUSE BY (Name)")
        item = query.resolve_items()[0]
        assert item.column.name == "Age"
        assert item.function == "max"

    def test_resolve_with_function_arguments(self):
        query = parse_query(
            "SELECT RESOLVE(price, choose('cheap_store')) FUSE FROM a, b FUSE BY (title)"
        )
        item = query.resolve_items()[0]
        assert item.function == "choose"
        assert item.arguments == ("cheap_store",)

    def test_resolve_with_numeric_argument_and_alias(self):
        query = parse_query(
            "SELECT RESOLVE(price, round_to(2)) AS p FUSE FROM a FUSE BY (title)"
        )
        item = query.resolve_items()[0]
        assert item.arguments == (2,)
        assert item.alias == "p"

    def test_resolve_missing_paren_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT RESOLVE Age FROM t")


class TestFromAndFuseBy:
    def test_plain_from(self):
        query = parse_query("SELECT * FROM t1, t2")
        assert not query.fuse_from
        assert [t.name for t in query.tables] == ["t1", "t2"]
        assert not query.is_fusion_query

    def test_fuse_from(self):
        query = parse_query("SELECT * FUSE FROM t1, t2")
        assert query.fuse_from
        assert query.is_fusion_query
        assert query.fuse_by is None

    def test_table_aliases(self):
        query = parse_query("SELECT * FROM students AS s, courses c")
        assert query.tables[0].alias == "s"
        assert query.tables[1].alias == "c"
        assert query.tables[1].effective_name == "c"

    def test_fuse_by_columns(self):
        query = parse_query("SELECT * FUSE FROM a, b FUSE BY (Name, City)")
        assert [c.name for c in query.fuse_by] == ["Name", "City"]

    def test_fuse_by_empty_parens(self):
        query = parse_query("SELECT * FUSE FROM a, b FUSE BY ()")
        assert query.fuse_by == []
        assert query.is_fusion_query

    def test_fuse_by_on_plain_from(self):
        query = parse_query("SELECT * FROM a FUSE BY (Name)")
        assert not query.fuse_from
        assert query.is_fusion_query

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a")

    def test_fuse_without_from_or_by_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FUSE t1")


class TestOtherClauses:
    def test_where_builds_expression_tree(self):
        query = parse_query("SELECT * FROM t WHERE age > 20 AND city = 'Berlin'")
        assert isinstance(query.where, expr.BooleanOp)

    def test_where_supports_in_between_like_null(self):
        query = parse_query(
            "SELECT * FROM t WHERE a IN (1, 2) AND b BETWEEN 1 AND 5 "
            "AND c LIKE 'x%' AND d IS NOT NULL AND NOT e = 1"
        )
        assert query.where is not None

    def test_group_by_and_having(self):
        query = parse_query("SELECT city FROM t GROUP BY city HAVING count > 3")
        assert [c.name for c in query.group_by] == ["city"]
        assert query.having is not None

    def test_order_by_directions(self):
        query = parse_query("SELECT * FROM t ORDER BY age DESC, name")
        assert query.order_by[0].descending
        assert not query.order_by[1].descending

    def test_limit_and_offset(self):
        query = parse_query("SELECT * FROM t LIMIT 10 OFFSET 5")
        assert query.limit == 10
        assert query.offset == 5

    def test_trailing_semicolon_is_accepted(self):
        assert parse_query("SELECT * FROM t;").tables[0].name == "t"

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t garbage garbage garbage")

    def test_str_round_trips_the_clause_structure(self):
        text = (
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE, CS "
            "WHERE Age > 20 FUSE BY (Name) ORDER BY Name LIMIT 5"
        )
        rendered = str(parse_query(text))
        for fragment in ["SELECT", "FUSE FROM", "FUSE BY (Name)", "ORDER BY", "LIMIT 5"]:
            assert fragment in rendered


class TestPaperExample:
    def test_the_papers_statement_parses(self):
        query = parse_query(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)"
        )
        assert query.fuse_from
        assert [t.name for t in query.tables] == ["EE_Student", "CS_Students"]
        assert [c.name for c in query.fuse_by] == ["Name"]
        item = query.resolve_items()[0]
        assert (item.column.name, item.function) == ("Age", "max")
