"""Tests for the AST node helpers."""

from repro.fuseby.ast import (
    ColumnExpression,
    FuseByQuery,
    OrderItem,
    ResolveItem,
    SelectItem,
    StarItem,
    TableReference,
)


class TestNodes:
    def test_column_expression_qualification(self):
        assert ColumnExpression("Age").qualified_name == "Age"
        assert ColumnExpression("Age", table="EE").qualified_name == "EE.Age"
        assert str(ColumnExpression("Age", table="EE")) == "EE.Age"

    def test_star_item(self):
        assert str(StarItem()) == "*"

    def test_select_item_str(self):
        assert str(SelectItem(ColumnExpression("Name"), alias="n")) == "Name AS n"

    def test_resolve_item_str_variants(self):
        plain = ResolveItem(ColumnExpression("Age"))
        named = ResolveItem(ColumnExpression("Age"), function="max")
        with_args = ResolveItem(
            ColumnExpression("price"), function="choose", arguments=("shop",), alias="p"
        )
        assert str(plain) == "RESOLVE(Age)"
        assert str(named) == "RESOLVE(Age, max)"
        assert "choose" in str(with_args) and "AS p" in str(with_args)

    def test_table_reference_effective_name(self):
        assert TableReference("EE_Students").effective_name == "EE_Students"
        assert TableReference("EE_Students", alias="ee").effective_name == "ee"

    def test_order_item_str(self):
        assert str(OrderItem(ColumnExpression("Age"), descending=True)) == "Age DESC"


class TestQueryHelpers:
    def make_query(self, **kwargs):
        defaults = dict(
            select_items=[SelectItem(ColumnExpression("Name")), ResolveItem(ColumnExpression("Age"))],
            tables=[TableReference("a"), TableReference("b")],
        )
        defaults.update(kwargs)
        return FuseByQuery(**defaults)

    def test_is_fusion_query_flags(self):
        assert not self.make_query().is_fusion_query
        assert self.make_query(fuse_from=True).is_fusion_query
        assert self.make_query(fuse_by=[]).is_fusion_query
        assert self.make_query(fuse_by=[ColumnExpression("Name")]).is_fusion_query

    def test_has_star_and_resolve_items(self):
        query = self.make_query(select_items=[StarItem()])
        assert query.has_star
        assert query.resolve_items() == []
        query = self.make_query()
        assert len(query.resolve_items()) == 1

    def test_str_mentions_clauses(self):
        query = self.make_query(
            fuse_from=True,
            fuse_by=[ColumnExpression("Name")],
            order_by=[OrderItem(ColumnExpression("Name"))],
            limit=3,
        )
        text = str(query)
        assert "FUSE FROM" in text
        assert "FUSE BY (Name)" in text
        assert "LIMIT 3" in text
