"""Figure 1 conformance: the parser accepts exactly the Fuse By syntax diagram.

The syntax diagram of the paper (Fig. 1) consists of:

    SELECT  { colref | RESOLVE(colref) | RESOLVE(colref, function) | * } , ...
    FUSE FROM tableref , ...          (FROM also allowed for plain SQL)
    [ where-clause ]
    FUSE BY ( colref, ... )           (optional; may be empty)

plus the statement "HAVING and ORDER BY keep their original meaning".  Every
production in the diagram must be accepted; a set of near-miss statements
must be rejected.
"""

import pytest

from repro.exceptions import QueryError
from repro.fuseby.parser import parse_query

#: Every production of the Fig. 1 diagram, one accepted example per path.
ACCEPTED = [
    # SELECT list paths
    "SELECT * FUSE FROM a, b FUSE BY (k)",
    "SELECT col FUSE FROM a, b FUSE BY (k)",
    "SELECT RESOLVE(col) FUSE FROM a, b FUSE BY (k)",
    "SELECT RESOLVE(col, vote) FUSE FROM a, b FUSE BY (k)",
    "SELECT c1, c2, c3 FUSE FROM a, b FUSE BY (k)",
    "SELECT c1, RESOLVE(c2), RESOLVE(c3, max) FUSE FROM a, b FUSE BY (k)",
    # FROM vs FUSE FROM, one or many tablerefs
    "SELECT * FROM a",
    "SELECT * FROM a, b, c",
    "SELECT * FUSE FROM a FUSE BY (k)",
    "SELECT * FUSE FROM a, b, c, d FUSE BY (k)",
    # where-clause optional
    "SELECT * FUSE FROM a, b WHERE x > 1 FUSE BY (k)",
    "SELECT * FUSE FROM a, b FUSE BY (k)",
    # FUSE BY with one, many, or no colrefs, or absent entirely
    "SELECT * FUSE FROM a, b FUSE BY (k1)",
    "SELECT * FUSE FROM a, b FUSE BY (k1, k2, k3)",
    "SELECT * FUSE FROM a, b FUSE BY ()",
    "SELECT * FUSE FROM a, b",
    # HAVING and ORDER BY keep their original meaning
    "SELECT * FUSE FROM a, b FUSE BY (k) HAVING n > 1",
    "SELECT * FUSE FROM a, b FUSE BY (k) ORDER BY k",
    "SELECT * FUSE FROM a, b FUSE BY (k) ORDER BY k DESC",
    "SELECT * FUSE FROM a, b WHERE x = 1 FUSE BY (k) HAVING y < 2 ORDER BY k ASC",
    # the paper's own example
    "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)",
]

#: Statements just outside the diagram's language.
REJECTED = [
    "RESOLVE(Age) FROM t",                       # no SELECT
    "SELECT FROM t",                             # empty select list
    "SELECT * FUSE BY (k)",                      # no FROM clause at all
    "SELECT * FUSE FROM",                        # missing tableref
    "SELECT * FUSE FROM a, FUSE BY (k)",         # dangling comma
    "SELECT * FUSE FROM a, b FUSE BY k",         # FUSE BY without parentheses
    "SELECT * FUSE FROM a, b FUSE BY (k",        # unclosed parenthesis
    "SELECT RESOLVE() FUSE FROM a FUSE BY (k)",  # RESOLVE without colref
    "SELECT RESOLVE(c,) FUSE FROM a FUSE BY (k)",  # RESOLVE with dangling comma
    "SELECT * FUSE a, b FUSE BY (k)",            # FUSE without FROM/BY
    "SELECT * FROM a ORDER k",                   # ORDER without BY
    "SELECT * FROM a GROUP city",                # GROUP without BY
]


class TestFigure1Grammar:
    @pytest.mark.parametrize("statement", ACCEPTED)
    def test_accepts_every_diagram_production(self, statement):
        query = parse_query(statement)
        assert query.tables

    @pytest.mark.parametrize("statement", REJECTED)
    def test_rejects_near_misses(self, statement):
        with pytest.raises(QueryError):
            parse_query(statement)

    def test_default_select_star_expands_to_source_attributes(self, hummer):
        result = hummer.query("SELECT * FUSE FROM EE_Students, CS_Students FUSE BY (Name)")
        # all attributes present in the sources survive (under preferred names)
        for column in ("Name", "Age", "Major", "Email"):
            assert column in result.schema

    def test_default_resolution_is_coalesce(self, hummer):
        result = hummer.query(
            "SELECT Name, RESOLVE(Major) FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
        )
        anna = [row for row in result if row["Name"] == "Anna Schmidt"][0]
        # coalesce takes the first non-null value, i.e. the EE (preferred) one
        assert anna["Major"] == "Electrical Engineering"
