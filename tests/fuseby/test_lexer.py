"""Tests for the Fuse By lexer."""

import pytest

from repro.exceptions import LexerError
from repro.fuseby.lexer import tokenize_query
from repro.fuseby.tokens import TokenType


def types(text):
    return [token.type for token in tokenize_query(text)]


def values(text):
    return [token.value for token in tokenize_query(text)]


class TestLexer:
    def test_keywords_are_uppercased(self):
        tokens = tokenize_query("select name fuse from t")
        assert tokens[0].value == "SELECT"
        assert tokens[2].value == "FUSE"
        assert tokens[3].value == "FROM"

    def test_identifiers_keep_their_case(self):
        tokens = tokenize_query("SELECT EE_Students")
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[1].value == "EE_Students"

    def test_star_comma_parens_dot(self):
        assert types("*, ().")[:5] == [
            TokenType.STAR,
            TokenType.COMMA,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.DOT,
        ]

    def test_numbers(self):
        tokens = tokenize_query("42 3.14")
        assert tokens[0].value == 42
        assert isinstance(tokens[0].value, int)
        assert tokens[1].value == pytest.approx(3.14)

    def test_single_and_double_quoted_strings(self):
        tokens = tokenize_query("'abc' \"def\"")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "abc"
        assert tokens[1].value == "def"

    def test_escaped_quote(self):
        tokens = tokenize_query("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize_query("'oops")

    def test_operators_including_two_char(self):
        tokens = tokenize_query("a >= 1 and b <> 2 and c != 3 and d < 4")
        operator_values = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert operator_values == [">=", "<>", "!=", "<"]

    def test_comments_are_skipped(self):
        tokens = tokenize_query("SELECT a -- this is a comment\nFROM t")
        assert [t.value for t in tokens if t.type is TokenType.KEYWORD] == ["SELECT", "FROM"]

    def test_line_numbers(self):
        tokens = tokenize_query("SELECT a\nFROM t")
        from_token = [t for t in tokens if t.matches_keyword("FROM")][0]
        assert from_token.line == 2

    def test_illegal_character_raises(self):
        with pytest.raises(LexerError):
            tokenize_query("SELECT a ? b")

    def test_always_ends_with_eof(self):
        assert tokenize_query("")[-1].type is TokenType.EOF
        assert tokenize_query("SELECT")[-1].type is TokenType.EOF

    def test_semicolon(self):
        assert TokenType.SEMICOLON in types("SELECT a FROM t;")
