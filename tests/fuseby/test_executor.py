"""Tests for end-to-end query execution (plain SQL and fusion queries)."""

import pytest

from repro.fuseby.executor import QueryExecutor


@pytest.fixture
def executor(catalog):
    return QueryExecutor(catalog)


class TestPlainQueries:
    def test_select_star(self, executor):
        result = executor.execute("SELECT * FROM EE_Students")
        assert len(result) == 4
        assert "Name" in result.schema

    def test_projection_and_alias(self, executor):
        result = executor.execute("SELECT Name AS who, Age FROM EE_Students")
        assert result.column_names == ("who", "Age")

    def test_where_filter(self, executor):
        result = executor.execute("SELECT Name FROM EE_Students WHERE Age > 23")
        assert set(result.column("Name")) == {"Ben Mueller", "David Fischer"}

    def test_where_with_like_and_in(self, executor):
        result = executor.execute(
            "SELECT Name FROM EE_Students WHERE Name LIKE 'A%' OR Age IN (27)"
        )
        assert set(result.column("Name")) == {"Anna Schmidt", "David Fischer"}

    def test_order_by_and_limit(self, executor):
        result = executor.execute("SELECT Name, Age FROM EE_Students ORDER BY Age DESC LIMIT 2")
        assert result.column("Name") == ["David Fischer", "Ben Mueller"]

    def test_cross_product_of_two_tables(self, executor):
        result = executor.execute("SELECT * FROM EE_Students, CS_Students")
        assert len(result) == 12

    def test_group_by(self, executor):
        result = executor.execute("SELECT Major FROM EE_Students GROUP BY Major")
        assert len(result) == 1

    def test_unknown_source_raises(self, executor):
        from repro.exceptions import CatalogError

        with pytest.raises(CatalogError):
            executor.execute("SELECT * FROM Ghost_Table")

    def test_explain_returns_plan(self, executor):
        plan = executor.explain("SELECT * FUSE FROM EE_Students, CS_Students FUSE BY (Name)")
        assert plan.is_fusion


class TestFusionQueries:
    def test_paper_example_key_based(self, executor):
        result = executor.execute(
            "SELECT Name, RESOLVE(Age, max) "
            "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
        )
        assert len(result) == 5  # 4 EE + 3 CS students, 2 in both
        by_name = {row["Name"]: row["Age"] for row in result}
        assert by_name["Anna Schmidt"] == 23  # max(22, 23)
        assert by_name["Ben Mueller"] == 25
        assert by_name["Elena Wolf"] == 21

    def test_fuse_from_single_table_collapses_exact_key_duplicates(self, catalog, ee_students):
        catalog.register("EE_copy", ee_students.renamed("EE_copy"))
        executor = QueryExecutor(catalog)
        result = executor.execute(
            "SELECT Name, RESOLVE(Age, min) FUSE FROM EE_Students, EE_copy FUSE BY (Name)"
        )
        assert len(result) == 4

    def test_star_fusion_query(self, executor):
        result = executor.execute("SELECT * FUSE FROM EE_Students, CS_Students FUSE BY (Name)")
        assert len(result) == 5
        assert "Major" in result.schema

    def test_automatic_duplicate_detection_without_fuse_by(self, executor):
        result = executor.execute("SELECT * FUSE FROM EE_Students, CS_Students")
        assert len(result) == 5
        assert "objectID" not in result.schema

    def test_where_applies_before_fusion(self, executor):
        result = executor.execute(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Students, CS_Students "
            "WHERE Age > 22 FUSE BY (Name)"
        )
        names = set(result.column("Name"))
        # Anna's EE tuple (22) is filtered out, but her CS tuple (23) survives
        assert "Anna Schmidt" in names
        assert "Elena Wolf" not in names  # 21 filtered

    def test_order_by_and_limit_apply_after_fusion(self, executor):
        result = executor.execute(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Students, CS_Students "
            "FUSE BY (Name) ORDER BY Age DESC LIMIT 2"
        )
        assert len(result) == 2
        assert result.cell(0, "Name") == "David Fischer"

    def test_having_filters_fused_result(self, executor):
        result = executor.execute(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Students, CS_Students "
            "FUSE BY (Name) HAVING Age > 24"
        )
        assert set(result.column("Name")) == {"Ben Mueller", "David Fischer"}

    def test_choose_resolution_function(self, executor):
        result = executor.execute(
            "SELECT Name, RESOLVE(Age, choose('CS_Students')) "
            "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
        )
        by_name = {row["Name"]: row["Age"] for row in result}
        assert by_name["Anna Schmidt"] == 23  # CS value preferred

    def test_concat_and_annotated_concat_resolutions(self, executor):
        concat = executor.execute(
            "SELECT Name, RESOLVE(Age, concat) "
            "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
        )
        anna = [row for row in concat if row["Name"] == "Anna Schmidt"][0]
        assert "22" in str(anna["Age"]) and "23" in str(anna["Age"])
        annotated = executor.execute(
            "SELECT Name, RESOLVE(Age, annotated_concat) "
            "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
        )
        anna = [row for row in annotated if row["Name"] == "Anna Schmidt"][0]
        assert "EE_Students" in str(anna["Age"])
        assert "CS_Students" in str(anna["Age"])

    def test_unknown_output_column_raises(self, executor):
        from repro.exceptions import HummerError

        with pytest.raises(HummerError):
            executor.execute(
                "SELECT Ghost FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
            )

    def test_multi_key_fuse_by(self, executor):
        result = executor.execute(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Students, CS_Students "
            "FUSE BY (Name, Major)"
        )
        # Major conflicts for the shared students, so they do NOT merge on (Name, Major)
        assert len(result) == 7
