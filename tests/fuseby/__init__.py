"""Test package."""
