"""Tests for query planning (semantic analysis)."""

import pytest

from repro.exceptions import PlanningError, UnknownFunctionError
from repro.fuseby.parser import parse_query
from repro.fuseby.planner import Planner


def plan(text):
    return Planner().plan(parse_query(text))


class TestPlanner:
    def test_plain_query_is_not_fusion(self):
        query_plan = plan("SELECT a FROM t WHERE a > 1")
        assert not query_plan.is_fusion
        assert query_plan.aliases == ["t"]
        assert query_plan.fusion_spec is None

    def test_fusion_query_with_keys(self):
        query_plan = plan("SELECT Name, RESOLVE(Age, max) FUSE FROM a, b FUSE BY (Name)")
        assert query_plan.is_fusion
        assert query_plan.fuse_by_columns == ["Name"]
        assert not query_plan.needs_duplicate_detection
        columns = {spec.column: spec.function for spec in query_plan.fusion_spec.resolutions}
        assert columns == {"Age": "max"}
        assert query_plan.output_columns == ["Name", "Age"]

    def test_fusion_without_fuse_by_needs_duplicate_detection(self):
        query_plan = plan("SELECT * FUSE FROM a, b")
        assert query_plan.needs_duplicate_detection
        assert query_plan.fusion_spec.key_columns == ["objectID"]

    def test_empty_fuse_by_needs_duplicate_detection(self):
        query_plan = plan("SELECT * FUSE FROM a, b FUSE BY ()")
        assert query_plan.needs_duplicate_detection

    def test_star_keeps_output_columns_open(self):
        query_plan = plan("SELECT * FUSE FROM a, b FUSE BY (k)")
        assert query_plan.output_columns is None
        assert query_plan.fusion_spec.resolutions == []

    def test_parameterised_function_is_preserved(self):
        query_plan = plan(
            "SELECT RESOLVE(price, choose('cheap')) FUSE FROM a, b FUSE BY (title)"
        )
        spec = query_plan.fusion_spec.resolutions[0]
        assert spec.function == ("choose", ("cheap",))

    def test_resolve_alias_becomes_output_name(self):
        query_plan = plan(
            "SELECT RESOLVE(Age, max) AS oldest FUSE FROM a, b FUSE BY (Name)"
        )
        assert query_plan.fusion_spec.resolutions[0].alias == "oldest"
        assert query_plan.output_columns == ["oldest"]

    def test_resolve_outside_fusion_rejected(self):
        with pytest.raises(PlanningError):
            plan("SELECT RESOLVE(Age, max) FROM t")

    def test_unknown_resolution_function_rejected(self):
        with pytest.raises(UnknownFunctionError):
            plan("SELECT RESOLVE(Age, frobnicate) FUSE FROM a, b FUSE BY (Name)")

    def test_known_aggregates_allowed_as_resolution(self):
        query_plan = plan("SELECT RESOLVE(Age, avg) FUSE FROM a, b FUSE BY (Name)")
        assert query_plan.fusion_spec.resolutions[0].function == "avg"

    def test_fuse_by_column_not_duplicated_in_resolutions(self):
        query_plan = plan("SELECT Name, Age FUSE FROM a, b FUSE BY (Name)")
        columns = [spec.column for spec in query_plan.fusion_spec.resolutions]
        assert columns == ["Age"]
