"""Tests for repro.engine.schema."""

import pytest

from repro.engine.schema import Column, Schema
from repro.engine.types import DataType
from repro.exceptions import DuplicateColumnError, SchemaError, UnknownColumnError


class TestColumn:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_renamed_returns_new_column(self):
        original = Column("name", DataType.STRING)
        renamed = original.renamed("fullname")
        assert renamed.name == "fullname"
        assert renamed.dtype is DataType.STRING
        assert original.name == "name"

    def test_with_source(self):
        assert Column("a").with_source("s1").source == "s1"

    def test_with_type(self):
        assert Column("a").with_type(DataType.INTEGER).dtype is DataType.INTEGER

    def test_str(self):
        assert str(Column("age", DataType.INTEGER)) == "age:integer"


class TestSchemaConstruction:
    def test_from_strings(self):
        schema = Schema(["a", "b"])
        assert schema.names == ("a", "b")
        assert schema["a"].dtype is DataType.ANY

    def test_from_tuples(self):
        schema = Schema([("a", DataType.INTEGER)])
        assert schema.dtype("a") is DataType.INTEGER

    def test_from_columns(self):
        schema = Schema([Column("x"), Column("y")])
        assert len(schema) == 2

    def test_rejects_duplicate_names_case_insensitively(self):
        with pytest.raises(DuplicateColumnError):
            Schema(["Name", "name"])

    def test_rejects_garbage(self):
        with pytest.raises(SchemaError):
            Schema([42])


class TestSchemaLookup:
    def test_position_case_insensitive(self):
        schema = Schema(["Name", "Age"])
        assert schema.position("name") == 0
        assert schema.position("AGE") == 1

    def test_unknown_column_raises_with_available(self):
        schema = Schema(["a", "b"])
        with pytest.raises(UnknownColumnError) as excinfo:
            schema.position("c")
        assert "a" in str(excinfo.value)

    def test_contains(self):
        schema = Schema(["a"])
        assert "A" in schema
        assert "b" not in schema
        assert 42 not in schema

    def test_getitem_by_index_and_name(self):
        schema = Schema(["a", "b"])
        assert schema[1].name == "b"
        assert schema["b"].name == "b"

    def test_positions_preserves_order(self):
        schema = Schema(["a", "b", "c"])
        assert schema.positions(["c", "a"]) == [2, 0]

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))


class TestSchemaTransforms:
    def test_project(self):
        schema = Schema(["a", "b", "c"]).project(["c", "a"])
        assert schema.names == ("c", "a")

    def test_rename(self):
        schema = Schema(["a", "b"]).rename({"a": "x"})
        assert schema.names == ("x", "b")

    def test_rename_unknown_raises(self):
        with pytest.raises(UnknownColumnError):
            Schema(["a"]).rename({"zzz": "x"})

    def test_add_and_drop(self):
        schema = Schema(["a"]).add(Column("b"))
        assert schema.names == ("a", "b")
        assert schema.drop(["a"]).names == ("b",)

    def test_add_at_position(self):
        schema = Schema(["a", "c"]).add(Column("b"), position=1)
        assert schema.names == ("a", "b", "c")

    def test_drop_unknown_raises(self):
        with pytest.raises(UnknownColumnError):
            Schema(["a"]).drop(["b"])

    def test_prefixed(self):
        assert Schema(["a"]).prefixed("t").names == ("t.a",)

    def test_merge_outer_unions_by_name(self):
        left = Schema(["a", "b"])
        right = Schema(["B", "c"])
        merged = left.merge_outer(right)
        assert merged.names == ("a", "b", "c")

    def test_union_all(self):
        merged = Schema.union_all([Schema(["a"]), Schema(["b"]), Schema(["a", "c"])])
        assert merged.names == ("a", "b", "c")

    def test_union_all_empty_raises(self):
        with pytest.raises(SchemaError):
            Schema.union_all([])

    def test_with_sources(self):
        schema = Schema(["a"]).with_sources("s1")
        assert schema["a"].source == "s1"
