"""Tests for repro.engine.relation: Row and Relation behaviour."""

import pytest

from repro.engine.relation import Relation, Row
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType
from repro.exceptions import SchemaError


class TestRow:
    def test_access_by_name_and_index(self, people_relation):
        row = people_relation.row(0)
        assert row["name"] == "Alice"
        assert row[1] == 34

    def test_mapping_protocol(self, people_relation):
        row = people_relation.row(0)
        assert set(row.keys()) == {"name", "age", "city", "salary"}
        assert row.to_dict()["city"] == "Berlin"

    def test_get_with_default(self, people_relation):
        row = people_relation.row(0)
        assert row.get("missing", "fallback") == "fallback"

    def test_replace(self, people_relation):
        row = people_relation.row(0).replace(age=35)
        assert row["age"] == 35
        assert people_relation.row(0)["age"] == 34

    def test_wrong_width_raises(self):
        with pytest.raises(SchemaError):
            Row(Schema(["a", "b"]), (1,))

    def test_equality_and_hash(self):
        schema = Schema(["a"])
        assert Row(schema, (1,)) == Row(schema, (1,))
        assert hash(Row(schema, (1,))) == hash(Row(schema, (1,)))


class TestRelationConstruction:
    def test_row_width_checked(self):
        with pytest.raises(SchemaError):
            Relation(Schema(["a", "b"]), [(1,)])

    def test_from_dicts_infers_schema_and_types(self):
        relation = Relation.from_dicts(
            [{"name": "X", "age": 3}, {"name": "Y", "age": 4, "extra": "e"}]
        )
        assert relation.column_names == ("name", "age", "extra")
        assert relation.schema.dtype("age") is DataType.INTEGER
        assert relation.cell(0, "extra") is None

    def test_from_dicts_case_insensitive_keys(self):
        relation = Relation.from_dicts([{"Name": "X"}, {"name": "Y"}])
        assert relation.column_names == ("Name",)
        assert relation.column("Name") == ["X", "Y"]

    def test_from_columns(self):
        relation = Relation.from_columns({"a": [1, 2], "b": ["x", "y"]})
        assert len(relation) == 2
        assert relation.column("b") == ["x", "y"]

    def test_from_columns_length_mismatch(self):
        with pytest.raises(SchemaError):
            Relation.from_columns({"a": [1], "b": [1, 2]})

    def test_empty(self):
        relation = Relation.empty(Schema(["a"]))
        assert relation.is_empty()

    def test_coerce_types_on_construction(self):
        schema = Schema([Column("n", DataType.INTEGER)])
        relation = Relation(schema, [("4",), ("5",)], coerce_types=True)
        assert relation.column("n") == [4, 5]


class TestRelationAccess:
    def test_len_iter_getitem(self, people_relation):
        assert len(people_relation) == 5
        assert [row["name"] for row in people_relation] == [
            "Alice", "Bob", "Carol", "Dave", "Eve",
        ]
        assert people_relation[1]["name"] == "Bob"
        sliced = people_relation[1:3]
        assert isinstance(sliced, Relation)
        assert len(sliced) == 2

    def test_column_and_cell(self, people_relation):
        assert people_relation.column("age") == [34, 28, 41, 28, None]
        assert people_relation.cell(2, "city") == "Berlin"

    def test_rows_returns_copy(self, people_relation):
        rows = people_relation.rows
        rows.append(("X", 1, "Y", 2.0))
        assert len(people_relation) == 5

    def test_to_dicts(self, people_relation):
        dicts = people_relation.to_dicts()
        assert dicts[0]["name"] == "Alice"
        assert len(dicts) == 5

    def test_equality(self, people_relation):
        assert people_relation == people_relation.copy()


class TestRelationTransforms:
    def test_rename_columns_shares_rows(self, people_relation):
        renamed = people_relation.rename_columns({"name": "person"})
        assert renamed.column("person") == people_relation.column("name")
        assert "name" not in renamed.schema

    def test_with_column_constant(self, people_relation):
        extended = people_relation.with_column("source", "census")
        assert extended.column("source") == ["census"] * 5

    def test_with_column_callable(self, people_relation):
        extended = people_relation.with_column(
            "older", lambda row: (row["age"] or 0) > 30
        )
        assert extended.column("older") == [True, False, True, False, False]

    def test_with_column_sequence_and_position(self, people_relation):
        extended = people_relation.with_column(
            Column("id", DataType.INTEGER), [1, 2, 3, 4, 5], position=0
        )
        assert extended.column_names[0] == "id"
        assert extended.cell(0, "id") == 1

    def test_with_column_wrong_length(self, people_relation):
        with pytest.raises(SchemaError):
            people_relation.with_column("x", [1, 2])

    def test_without_columns(self, people_relation):
        reduced = people_relation.without_columns(["salary", "city"])
        assert reduced.column_names == ("name", "age")

    def test_project(self, people_relation):
        projected = people_relation.project(["city", "name"])
        assert projected.column_names == ("city", "name")
        assert projected.cell(0, "city") == "Berlin"

    def test_filter(self, people_relation):
        berliners = people_relation.filter(lambda row: row["city"] == "Berlin")
        assert len(berliners) == 2

    def test_map_column(self, people_relation):
        upper = people_relation.map_column("name", str.upper)
        assert upper.cell(0, "name") == "ALICE"

    def test_append_rows(self, people_relation):
        extended = people_relation.append_rows([("Frank", 50, "Bonn", 1.0)])
        assert len(extended) == 6
        assert len(people_relation) == 5

    def test_sorted_by_with_nulls_first(self, people_relation):
        ordered = people_relation.sorted_by(["age"])
        assert ordered.cell(0, "name") == "Eve"  # null age sorts first
        assert ordered.cell(4, "name") == "Carol"

    def test_sorted_by_descending(self, people_relation):
        ordered = people_relation.sorted_by(["age"], descending=True)
        assert ordered.cell(0, "name") == "Carol"

    def test_head(self, people_relation):
        assert len(people_relation.head(2)) == 2

    def test_retyped(self):
        relation = Relation(Schema(["n"]), [("1",), ("2",)])
        assert relation.retyped().schema.dtype("n") is DataType.INTEGER


class TestRelationStatsAndDisplay:
    def test_null_count(self, people_relation):
        assert people_relation.null_count("age") == 1
        assert people_relation.null_count("name") == 0

    def test_distinct_values(self, people_relation):
        assert people_relation.distinct_values("city") == ["Berlin", "Hamburg", "Munich"]

    def test_to_text_contains_header_and_rows(self, people_relation):
        text = people_relation.to_text()
        assert "name" in text
        assert "Alice" in text

    def test_to_text_limit(self, people_relation):
        text = people_relation.to_text(limit=2)
        assert "more rows" in text


class TestContentKey:
    def test_equal_content_clones_share_a_key(self, people_relation):
        clone = Relation(
            people_relation.schema, people_relation.rows, name="other_name"
        )
        assert clone.content_key() == people_relation.content_key()
        assert clone.content_hash() == people_relation.content_hash()

    def test_key_reflects_in_place_mutation(self, people_relation):
        before = people_relation.content_key()
        people_relation.store.column(0)[0] = "Changed"
        assert people_relation.content_key() != before

    def test_cross_type_equal_cells_get_distinct_keys(self):
        # True == 1 in Python, but the two tokenise differently — the key
        # must not conflate them.
        bools = Relation(Schema(["flag"]), [(True,)])
        ints = Relation(Schema(["flag"]), [(1,)])
        assert bools.content_key() != ints.content_key()

    def test_unhashable_cells_fall_back_to_repr(self):
        relation = Relation(Schema(["data"]), [(["a", "list"],)])
        assert isinstance(relation.content_hash(), int)
