"""Tests for repro.engine.types: coercion, inference, null handling, comparison."""

import datetime

import pytest

from repro.engine.types import (
    DataType,
    coerce,
    compare_values,
    infer_column_type,
    infer_type,
    is_null,
    values_equal,
)
from repro.exceptions import TypeCoercionError


class TestIsNull:
    def test_none_is_null(self):
        assert is_null(None)

    def test_nan_is_null(self):
        assert is_null(float("nan"))

    def test_zero_is_not_null(self):
        assert not is_null(0)

    def test_empty_string_is_not_null(self):
        assert not is_null("")

    def test_false_is_not_null(self):
        assert not is_null(False)


class TestCoerce:
    def test_none_stays_none(self):
        assert coerce(None, DataType.INTEGER) is None

    def test_null_literal_string_becomes_none(self):
        assert coerce("  NULL ", DataType.STRING) is None
        assert coerce("n/a", DataType.INTEGER) is None
        assert coerce("", DataType.FLOAT) is None

    def test_any_passes_through(self):
        value = object()
        assert coerce(value, DataType.ANY) is value

    def test_string_from_number(self):
        assert coerce(42, DataType.STRING) == "42"
        assert coerce(42.0, DataType.STRING) == "42"
        assert coerce(42.5, DataType.STRING) == "42.5"

    def test_string_from_bool(self):
        assert coerce(True, DataType.STRING) == "true"

    def test_integer_from_string(self):
        assert coerce("17", DataType.INTEGER) == 17
        assert coerce(" -3 ", DataType.INTEGER) == -3
        assert coerce("1,200", DataType.INTEGER) == 1200

    def test_integer_from_integral_float(self):
        assert coerce(4.0, DataType.INTEGER) == 4

    def test_integer_from_fractional_float_fails(self):
        with pytest.raises(TypeCoercionError):
            coerce(4.5, DataType.INTEGER)

    def test_integer_from_garbage_fails(self):
        with pytest.raises(TypeCoercionError):
            coerce("not a number", DataType.INTEGER)

    def test_float_from_string(self):
        assert coerce("3.25", DataType.FLOAT) == pytest.approx(3.25)

    def test_float_from_currency_string(self):
        assert coerce("$12.50", DataType.FLOAT) == pytest.approx(12.5)

    def test_float_from_int(self):
        assert coerce(7, DataType.FLOAT) == 7.0

    def test_boolean_from_strings(self):
        assert coerce("yes", DataType.BOOLEAN) is True
        assert coerce("No", DataType.BOOLEAN) is False
        assert coerce("1", DataType.BOOLEAN) is True

    def test_boolean_from_bad_string_fails(self):
        with pytest.raises(TypeCoercionError):
            coerce("maybe", DataType.BOOLEAN)

    def test_date_from_iso_string(self):
        assert coerce("2005-08-30", DataType.DATE) == datetime.date(2005, 8, 30)

    def test_date_from_german_format(self):
        assert coerce("30.08.2005", DataType.DATE) == datetime.date(2005, 8, 30)

    def test_date_from_datetime_string(self):
        value = coerce("2005-08-30 12:30:00", DataType.DATE)
        assert isinstance(value, datetime.datetime)
        assert value.hour == 12

    def test_date_from_bad_string_fails(self):
        with pytest.raises(TypeCoercionError):
            coerce("next tuesday", DataType.DATE)


class TestInferType:
    def test_null_is_any(self):
        assert infer_type(None) is DataType.ANY

    def test_bool_before_int(self):
        assert infer_type(True) is DataType.BOOLEAN

    def test_int(self):
        assert infer_type(3) is DataType.INTEGER

    def test_float(self):
        assert infer_type(3.5) is DataType.FLOAT

    def test_numeric_string(self):
        assert infer_type("42") is DataType.INTEGER
        assert infer_type("42.5") is DataType.FLOAT

    def test_boolean_string(self):
        assert infer_type("true") is DataType.BOOLEAN

    def test_date_string(self):
        assert infer_type("2005-08-30") is DataType.DATE

    def test_plain_string(self):
        assert infer_type("HumMer") is DataType.STRING

    def test_date_object(self):
        assert infer_type(datetime.date(2005, 8, 30)) is DataType.DATE


class TestInferColumnType:
    def test_all_nulls(self):
        assert infer_column_type([None, None]) is DataType.ANY

    def test_homogeneous_integers(self):
        assert infer_column_type([1, 2, None, 3]) is DataType.INTEGER

    def test_int_float_mix_is_float(self):
        assert infer_column_type([1, 2.5]) is DataType.FLOAT

    def test_mixed_types_fall_back_to_string(self):
        assert infer_column_type([1, "abc"]) is DataType.STRING

    def test_empty_iterable(self):
        assert infer_column_type([]) is DataType.ANY


class TestValuesEqual:
    def test_nulls_never_equal(self):
        assert not values_equal(None, None)
        assert not values_equal(None, 1)

    def test_numeric_cross_type_equality(self):
        assert values_equal(2, 2.0)

    def test_bool_not_equal_to_int(self):
        assert not values_equal(True, 1)

    def test_string_equality(self):
        assert values_equal("a", "a")
        assert not values_equal("a", "A")


class TestCompareValues:
    def test_nulls_sort_first(self):
        assert compare_values(None, 5) == -1
        assert compare_values(5, None) == 1
        assert compare_values(None, None) == 0

    def test_numeric_ordering(self):
        assert compare_values(1, 2) == -1
        assert compare_values(3, 2) == 1
        assert compare_values(2, 2) == 0

    def test_incomparable_types_use_string_order(self):
        assert compare_values(10, "abc") in (-1, 1)
        # deterministic: "10" < "abc"
        assert compare_values(10, "abc") == -1
