"""Tests for the column-major storage engine (ISSUE 9).

Covers :mod:`repro.engine.columnar` directly (ColumnData / ColumnStore),
the columnar accessors and lazy Row views on :class:`Relation`, the
null-mask semantics (including round-trips through the CSV / JSON / XML
sources), mixed-type coercion parity, the cached content digest (hashed
once per relation, even across repeated ``ArtifactStore`` lookups) and the
``Row`` ↔ plain-``Mapping`` equality fix.
"""

import pickle
from collections import OrderedDict

import pytest

from repro.engine.columnar import ColumnData, ColumnStore
from repro.engine.io import CsvSource, JsonSource, XmlSource, write_csv, write_json
from repro.engine.relation import Relation, Row
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType, is_null
from repro.exceptions import SchemaError
from repro.prepare.store import ArtifactStore


class TestColumnData:
    def test_null_mask_flags_none_and_nan(self):
        column = ColumnData(["a", None, float("nan"), "b", 0, ""])
        assert column.null_mask == bytes([0, 1, 1, 0, 0, 0])
        assert column.null_count == 2

    def test_null_mask_is_cached(self):
        column = ColumnData([None, "x"])
        assert column.null_mask is column.null_mask

    def test_null_mask_rebuilt_after_inplace_growth(self):
        # In-place mutation is against the immutability convention but
        # tolerated (content_key documents this); a grown column must not
        # serve a stale shorter mask.
        column = ColumnData(["a", None])
        assert column.null_mask == bytes([0, 1])
        column.values.append(None)
        assert column.null_mask == bytes([0, 1, 1])

    def test_take_preserves_values_and_mask(self):
        column = ColumnData(["a", None, "c"])
        _ = column.null_mask  # force the cache so take() slices it
        taken = column.take([2, 1])
        assert taken.values == ["c", None]
        assert taken.null_mask == bytes([0, 1])

    def test_take_without_cached_mask(self):
        column = ColumnData(["a", None, "c"])
        taken = column.take([1, 0])
        assert taken.null_mask == bytes([1, 0])

    def test_slice_shares_nothing(self):
        column = ColumnData([1, 2, 3, 4])
        sliced = column.slice(slice(1, 3))
        assert sliced.values == [2, 3]
        sliced.values[0] = 99
        assert column.values[1] == 2

    def test_pickle_round_trip(self):
        column = ColumnData(["a", None])
        _ = column.null_mask
        clone = pickle.loads(pickle.dumps(column))
        assert clone.values == ["a", None]
        assert clone.null_mask == bytes([0, 1])


class TestColumnStore:
    def test_from_rows_transposes(self):
        store = ColumnStore.from_rows(2, [("a", 1), ("b", 2), ("c", 3)])
        assert store.row_count == 3
        assert store.width == 2
        assert store.column(0) == ["a", "b", "c"]
        assert store.column(1) == [1, 2, 3]

    def test_from_rows_rejects_ragged_rows(self):
        with pytest.raises(SchemaError):
            ColumnStore.from_rows(2, [("a", 1), ("b",)])

    def test_from_rows_empty(self):
        store = ColumnStore.from_rows(3, [])
        assert store.row_count == 0
        assert store.width == 3

    def test_constructor_rejects_mismatched_column_lengths(self):
        with pytest.raises(SchemaError):
            ColumnStore([ColumnData([1, 2]), ColumnData([1])])

    def test_from_lists_adopts_lists(self):
        left = ["a", "b"]
        store = ColumnStore.from_lists([left, [1, 2]])
        assert store.column(0) is left

    def test_row_supports_negative_indices(self):
        store = ColumnStore.from_rows(2, [("a", 1), ("b", 2)])
        assert store.row(-1) == ("b", 2)
        with pytest.raises(IndexError):
            store.row(2)

    def test_iter_rows_matches_row_tuples(self):
        store = ColumnStore.from_rows(2, [("a", 1), ("b", 2)])
        assert list(store.iter_rows()) == store.row_tuples() == [("a", 1), ("b", 2)]

    def test_select_shares_column_objects(self):
        store = ColumnStore.from_rows(3, [("a", 1, True)])
        selected = store.select([2, 0])
        assert selected.column_data(0) is store.column_data(2)
        assert selected.column_data(1) is store.column_data(0)

    def test_take_reorders_rows(self):
        store = ColumnStore.from_rows(2, [("a", 1), ("b", 2), ("c", 3)])
        taken = store.take([2, 0])
        assert taken.row_tuples() == [("c", 3), ("a", 1)]

    def test_slice_rows(self):
        store = ColumnStore.from_rows(1, [("a",), ("b",), ("c",)])
        assert store.slice(slice(1, None)).row_tuples() == [("b",), ("c",)]

    def test_extended_appends_without_touching_original(self):
        store = ColumnStore.from_rows(2, [("a", 1)])
        extended = store.extended([("b", 2)])
        assert extended.row_tuples() == [("a", 1), ("b", 2)]
        assert store.row_count == 1

    def test_row_count_tracks_inplace_growth(self):
        store = ColumnStore.from_rows(1, [("a",)])
        store.column(0).append("b")
        assert store.row_count == 2
        assert store.row(1) == ("b",)


class TestRelationColumnarAccessors:
    def test_column_is_zero_copy(self, people_relation):
        assert people_relation.column("name") is people_relation.store.column(0)

    def test_columns_fetches_in_given_order(self, people_relation):
        city, name = people_relation.columns(["city", "name"])
        assert name[0] == "Alice"
        assert city[0] == "Berlin"

    def test_projection_shares_column_storage(self, people_relation):
        projected = people_relation.project(["city", "name"])
        assert projected.column("city") is people_relation.column("city")

    def test_rename_shares_column_storage(self, people_relation):
        renamed = people_relation.rename_columns({"name": "full_name"})
        assert renamed.column("full_name") is people_relation.column("name")

    def test_null_mask_shared_across_views(self, people_relation):
        projected = people_relation.project(["city"])
        assert projected.null_mask("city") is people_relation.null_mask("city")

    def test_iteration_yields_lazy_views(self, people_relation):
        row = next(iter(people_relation))
        assert isinstance(row, Row)
        assert row._values is None  # nothing materialised yet
        assert row["name"] == "Alice"
        assert row._values is None  # single-cell access stays lazy
        assert row.values == ("Alice", 34, "Berlin", 52000.0)

    def test_is_null_parity_column_vs_row(self, people_relation):
        # The mask must agree cell-for-cell with is_null() over Row access.
        for name in people_relation.column_names:
            mask = people_relation.null_mask(name)
            for index, row in enumerate(people_relation):
                assert bool(mask[index]) == is_null(row[name])

    def test_nan_is_null_through_both_paths(self):
        relation = Relation(Schema(["x"]), [(float("nan"),), (1.0,)])
        assert relation.null_mask("x") == bytes([1, 0])
        assert relation.null_count("x") == 1
        assert is_null(relation.row(0)["x"])


class TestMixedTypeCoercion:
    """Column-wise coercion must behave exactly like the old row-wise pass."""

    def test_coerced_types_and_nulls(self):
        schema = Schema(
            [Column("n", DataType.INTEGER), Column("f", DataType.FLOAT)]
        )
        relation = Relation(
            schema,
            [("1", "2.5"), (None, ""), ("3", "4")],
            coerce_types=True,
        )
        assert relation.column("n") == [1, None, 3]
        assert relation.column("f") == [2.5, None, 4.0]
        # empty cells become nulls, visible through the mask
        assert relation.null_mask("f") == bytes([0, 1, 0])
        assert relation.null_mask("n") == bytes([0, 1, 0])

    def test_mixed_column_coerces_identically_via_rows_and_columns(self):
        schema = Schema([Column("v", DataType.STRING)])
        relation = Relation(schema, [(1,), ("x",), (2.5,), (None,)], coerce_types=True)
        assert relation.column("v") == [row["v"] for row in relation]
        assert relation.column("v") == ["1", "x", "2.5", None]


class TestNullMaskIoRoundTrips:
    """Nulls survive writing to and reloading from every source format."""

    def test_csv_round_trip(self, tmp_path, people_relation):
        path = tmp_path / "people.csv"
        write_csv(people_relation, path)
        loaded = CsvSource(path).load()
        assert loaded.null_mask("city") == people_relation.null_mask("city")
        assert loaded.null_mask("age") == people_relation.null_mask("age")
        assert loaded.null_count("city") == 1

    def test_json_round_trip(self, tmp_path, people_relation):
        path = tmp_path / "people.json"
        write_json(people_relation, path)
        loaded = JsonSource(path).load()
        assert loaded.null_mask("city") == people_relation.null_mask("city")
        assert loaded.null_mask("age") == people_relation.null_mask("age")

    def test_xml_missing_elements_are_null(self, tmp_path):
        path = tmp_path / "people.xml"
        path.write_text(
            """<people>
                 <person><name>Alice</name><city>Berlin</city></person>
                 <person><name>Bob</name></person>
                 <person><name>Carol</name><city></city></person>
               </people>"""
        )
        loaded = XmlSource(path).load()
        assert loaded.null_mask("city") == bytes([0, 1, 1])
        assert loaded.null_mask("name") == bytes([0, 0, 0])

    def test_nan_written_as_null_to_csv(self, tmp_path):
        relation = Relation(Schema(["x", "y"]), [(float("nan"), 1.0), (2.0, 3.0)])
        path = tmp_path / "nan.csv"
        write_csv(relation, path)
        loaded = CsvSource(path).load()
        # The reloaded cell is null again (whether parsed back as NaN or
        # dropped to None) and the mask flags it — round-trip null parity.
        assert is_null(loaded.cell(0, "x"))
        assert loaded.null_mask("x") == bytes([1, 0])
        assert loaded.null_mask("y") == bytes([0, 0])


class TestContentDigestCaching:
    def test_digest_computed_once(self, people_relation, monkeypatch):
        first = people_relation.content_digest()
        # any further fold over the column storage would blow up here
        monkeypatch.setattr(
            ColumnStore,
            "columns",
            property(lambda self: pytest.fail("row content re-hashed")),
        )
        assert people_relation.content_digest() == first

    def test_two_store_lookups_hash_rows_only_once(self, people_relation, monkeypatch):
        store = ArtifactStore()
        built = store.get_or_build(
            "people", "index", (), people_relation, lambda: "artifact"
        )
        assert built == "artifact"
        # The digest is now cached on the relation; a second lookup must
        # validate against the cache without re-reading the column storage.
        monkeypatch.setattr(
            ColumnStore,
            "columns",
            property(lambda self: pytest.fail("second lookup re-hashed the rows")),
        )
        again = store.get_or_build(
            "people", "index", (), people_relation, lambda: "rebuilt"
        )
        assert again == "artifact"
        assert store.counters.reused["index"] == 1

    def test_digest_differs_for_different_content(self):
        left = Relation(Schema(["a"]), [(1,)])
        right = Relation(Schema(["a"]), [(2,)])
        assert left.content_digest() != right.content_digest()

    def test_digest_separates_cross_type_equal_cells(self):
        # True == 1 == 1.0 in Python; the digest must not conflate them.
        digests = {
            Relation(Schema(["a"]), [(value,)]).content_digest()
            for value in (True, 1, 1.0)
        }
        assert len(digests) == 3


class TestRowMappingEquality:
    """Satellite: Row == any Mapping with the same name→value pairs."""

    @pytest.fixture
    def row(self):
        return Row(Schema(["name", "age"]), ("Alice", 34))

    def test_row_equals_dict_both_directions(self, row):
        as_dict = {"name": "Alice", "age": 34}
        assert row == as_dict
        assert as_dict == row  # dict.__eq__ → NotImplemented → reflected call
        assert not row != as_dict

    def test_row_equals_other_mapping_types(self, row):
        assert row == OrderedDict([("age", 34), ("name", "Alice")])

    def test_row_not_equal_to_different_mapping(self, row):
        assert row != {"name": "Alice", "age": 35}
        assert row != {"name": "Alice"}
        assert {"name": "Alice", "age": 35} != row

    def test_row_not_equal_to_non_mapping(self, row):
        assert row != ("Alice", 34)
        assert row.__eq__(("Alice", 34)) is NotImplemented

    def test_lazy_view_equals_dict(self, people_relation):
        view = people_relation.row(1)
        assert view == {
            "name": "Bob",
            "age": 28,
            "city": "Hamburg",
            "salary": 48000.0,
        }

    def test_rows_with_same_values_but_different_schema_differ(self):
        left = Row(Schema(["a", "b"]), (1, 2))
        right = Row(Schema(["x", "y"]), (1, 2))
        assert left != right
        # ... but as mappings they are not equal either (different names)
        assert dict(left) != dict(right)
