"""Test package."""
