"""Tests for the relational operators (select, project, join, union, group, ...)."""

import pytest

from repro.engine import expressions as expr
from repro.engine.operators import (
    Aggregate,
    AggregateSpec,
    CrossProduct,
    Distinct,
    GroupBy,
    Join,
    Limit,
    OuterUnion,
    Project,
    ProjectItem,
    RelationSource,
    Rename,
    Scan,
    Select,
    Sort,
    SortKey,
    Union,
)
from repro.engine.operators.aggregates import AGGREGATE_FUNCTIONS, aggregate_function
from repro.engine.operators.union import outer_union
from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.exceptions import ExpressionError, SchemaError


@pytest.fixture
def orders():
    return Relation.from_dicts(
        [
            {"order_id": 1, "customer": "Alice", "amount": 30.0},
            {"order_id": 2, "customer": "Bob", "amount": 20.0},
            {"order_id": 3, "customer": "Alice", "amount": 50.0},
            {"order_id": 4, "customer": "Carol", "amount": None},
        ],
        name="orders",
    )


@pytest.fixture
def customers():
    return Relation.from_dicts(
        [
            {"name": "Alice", "city": "Berlin"},
            {"name": "Bob", "city": "Hamburg"},
            {"name": "Dora", "city": "Munich"},
        ],
        name="customers",
    )


class TestSourceAndScan:
    def test_relation_source(self, orders):
        assert RelationSource(orders).execute() is orders

    def test_scan_fetches_lazily(self, orders):
        catalog = Catalog()
        scan = Scan(catalog, "orders")
        catalog.register("orders", orders)
        assert len(scan.execute()) == 4

    def test_explain_tree(self, orders):
        plan = Select(RelationSource(orders), expr.IsNull(expr.ColumnRef("amount")))
        text = plan.explain()
        assert "Select" in text
        assert "RelationSource" in text


class TestSelect:
    def test_filters_rows(self, orders):
        predicate = expr.Comparison(">", expr.ColumnRef("amount"), expr.Literal(25))
        result = Select(RelationSource(orders), predicate).execute()
        assert [row["order_id"] for row in result] == [1, 3]

    def test_unknown_predicate_drops_row(self, orders):
        predicate = expr.Comparison(">", expr.ColumnRef("amount"), expr.Literal(0))
        result = Select(RelationSource(orders), predicate).execute()
        # Carol's null amount is unknown, hence dropped
        assert len(result) == 3


class TestProject:
    def test_plain_projection(self, orders):
        result = Project(
            RelationSource(orders),
            [ProjectItem.column("customer"), ProjectItem.column("amount", alias="total")],
        ).execute()
        assert result.column_names == ("customer", "total")

    def test_computed_item(self, orders):
        doubled = ProjectItem(
            expr.BinaryOp("*", expr.ColumnRef("amount"), expr.Literal(2)), alias="double"
        )
        result = Project(RelationSource(orders), [doubled]).execute()
        assert result.column("double")[0] == 60.0

    def test_duplicate_output_names_are_disambiguated(self, orders):
        result = Project(
            RelationSource(orders),
            [ProjectItem.column("customer"), ProjectItem.column("customer")],
        ).execute()
        assert len(set(result.column_names)) == 2


class TestRename:
    def test_rename(self, orders):
        result = Rename(RelationSource(orders), {"customer": "buyer"}).execute()
        assert "buyer" in result.schema
        assert "customer" not in result.schema


class TestJoins:
    def test_cross_product(self, orders, customers):
        result = CrossProduct(RelationSource(orders), RelationSource(customers)).execute()
        assert len(result) == 12
        assert len(result.schema) == 5

    def test_inner_hash_join(self, orders, customers):
        result = Join(
            RelationSource(orders),
            RelationSource(customers),
            on=("customer", "name"),
        ).execute()
        assert len(result) == 3  # Carol has no match, Dora never matches
        assert set(result.column("city")) == {"Berlin", "Hamburg"}

    def test_left_join_pads_with_nulls(self, orders, customers):
        result = Join(
            RelationSource(orders),
            RelationSource(customers),
            on=("customer", "name"),
            how="left",
        ).execute()
        assert len(result) == 4
        carol = [row for row in result if row["customer"] == "Carol"][0]
        assert carol["city"] is None

    def test_full_join_includes_unmatched_right(self, orders, customers):
        result = Join(
            RelationSource(orders),
            RelationSource(customers),
            on=("customer", "name"),
            how="full",
        ).execute()
        cities = [row["city"] for row in result]
        assert "Munich" in cities
        assert len(result) == 5

    def test_predicate_join(self, orders, customers):
        predicate = expr.Comparison(
            "=", expr.ColumnRef("customer"), expr.ColumnRef("name")
        )
        result = Join(
            RelationSource(orders), RelationSource(customers), predicate=predicate
        ).execute()
        assert len(result) == 3

    def test_join_name_clash_is_qualified(self, customers):
        other = Relation.from_dicts([{"name": "Alice", "city": "Potsdam"}], name="alt")
        result = Join(
            RelationSource(customers), RelationSource(other), on=("name", "name")
        ).execute()
        assert "alt.name" in result.schema or "alt.city" in result.schema

    def test_join_requires_condition(self, orders, customers):
        with pytest.raises(ValueError):
            Join(RelationSource(orders), RelationSource(customers))

    def test_join_rejects_unknown_type(self, orders, customers):
        with pytest.raises(ValueError):
            Join(RelationSource(orders), RelationSource(customers), on=("a", "b"), how="right")


class TestUnions:
    def test_union_all(self, orders):
        result = Union(RelationSource(orders), RelationSource(orders)).execute()
        assert len(result) == 8

    def test_union_width_mismatch_raises(self, orders, customers):
        with pytest.raises(SchemaError):
            Union(RelationSource(orders), RelationSource(customers)).execute()

    def test_outer_union_merges_schemas(self, orders, customers):
        result = OuterUnion(RelationSource(orders), RelationSource(customers)).execute()
        assert len(result) == 7
        assert set(result.column_names) == {"order_id", "customer", "amount", "name", "city"}
        # padded cells are null
        assert result.cell(0, "city") is None
        assert result.cell(4, "order_id") is None

    def test_outer_union_function_requires_input(self):
        with pytest.raises(SchemaError):
            outer_union([])

    def test_outer_union_matches_columns_by_name_case_insensitively(self):
        left = Relation.from_dicts([{"Name": "x", "Age": 1}], name="l")
        right = Relation.from_dicts([{"name": "y"}], name="r")
        result = outer_union([left, right])
        assert len(result.schema) == 2
        assert result.column("Name") == ["x", "y"]


class TestDistinctSortLimit:
    def test_distinct_full_row(self, orders):
        doubled = Union(RelationSource(orders), RelationSource(orders)).execute()
        result = Distinct(RelationSource(doubled)).execute()
        assert len(result) == 4

    def test_distinct_subset_keeps_first(self, orders):
        result = Distinct(RelationSource(orders), subset=["customer"]).execute()
        assert len(result) == 3
        alice = [row for row in result if row["customer"] == "Alice"][0]
        assert alice["order_id"] == 1

    def test_sort_ascending_and_descending(self, orders):
        ascending = Sort(RelationSource(orders), [SortKey("amount")]).execute()
        assert ascending.cell(0, "customer") == "Carol"  # null first
        descending = Sort(RelationSource(orders), [SortKey("amount", descending=True)]).execute()
        assert descending.cell(0, "amount") == 50.0

    def test_sort_multiple_keys_is_stable(self, orders):
        result = Sort(
            RelationSource(orders), [SortKey("customer"), SortKey("amount")]
        ).execute()
        assert [row["order_id"] for row in result][:2] == [1, 3]

    def test_limit_and_offset(self, orders):
        assert len(Limit(RelationSource(orders), 2).execute()) == 2
        offset = Limit(RelationSource(orders), 2, offset=3).execute()
        assert len(offset) == 1

    def test_limit_rejects_negative(self, orders):
        with pytest.raises(ValueError):
            Limit(RelationSource(orders), -1)


class TestAggregates:
    def test_standard_aggregates_ignore_nulls(self):
        values = [1, 2, None, 3]
        assert AGGREGATE_FUNCTIONS["count"](values) == 3
        assert AGGREGATE_FUNCTIONS["count_all"](values) == 4
        assert AGGREGATE_FUNCTIONS["sum"](values) == 6
        assert AGGREGATE_FUNCTIONS["avg"](values) == 2
        assert AGGREGATE_FUNCTIONS["min"](values) == 1
        assert AGGREGATE_FUNCTIONS["max"](values) == 3
        assert AGGREGATE_FUNCTIONS["median"]([1, 2, None, 10]) == 2

    def test_aggregates_on_all_nulls_return_none(self):
        assert AGGREGATE_FUNCTIONS["sum"]([None, None]) is None
        assert AGGREGATE_FUNCTIONS["max"]([None]) is None

    def test_count_distinct(self):
        assert AGGREGATE_FUNCTIONS["count_distinct"]([1, 1.0, "1", None]) == 2

    def test_min_max_on_mixed_types_do_not_raise(self):
        assert AGGREGATE_FUNCTIONS["min"]([3, "abc"]) in (3, "abc")

    def test_lookup_unknown_aggregate(self):
        with pytest.raises(ExpressionError):
            aggregate_function("frobnicate")

    def test_stddev_needs_two_values(self):
        assert AGGREGATE_FUNCTIONS["stddev"]([1]) is None
        assert AGGREGATE_FUNCTIONS["stddev"]([1, 3]) == pytest.approx(1.4142, rel=1e-3)


class TestGroupBy:
    def test_group_with_aggregates(self, orders):
        result = GroupBy(
            RelationSource(orders),
            ["customer"],
            [AggregateSpec("amount", "sum", alias="total"), AggregateSpec("order_id", "count")],
        ).execute()
        assert len(result) == 3
        alice = [row for row in result if row["customer"] == "Alice"][0]
        assert alice["total"] == 80.0
        assert alice["count_order_id"] == 2

    def test_group_preserves_first_seen_order(self, orders):
        result = GroupBy(RelationSource(orders), ["customer"]).execute()
        assert [row["customer"] for row in result] == ["Alice", "Bob", "Carol"]

    def test_callable_aggregate(self, orders):
        result = GroupBy(
            RelationSource(orders),
            ["customer"],
            [AggregateSpec("amount", lambda values: len(values), alias="n")],
        ).execute()
        assert [row["n"] for row in result] == [2, 1, 1]

    def test_whole_table_aggregate(self, orders):
        result = Aggregate(
            RelationSource(orders), [AggregateSpec("amount", "max", alias="maximum")]
        ).execute()
        assert len(result) == 1
        assert result.cell(0, "maximum") == 50.0
