"""Tests for the CSV / JSON / XML source adapters."""

import json

import pytest

from repro.engine.io import CsvSource, JsonSource, XmlSource, write_csv, write_json
from repro.engine.types import DataType
from repro.exceptions import SourceError


class TestCsvSource:
    def test_round_trip(self, tmp_path, people_relation):
        path = tmp_path / "people.csv"
        write_csv(people_relation, path)
        loaded = CsvSource(path).load()
        assert len(loaded) == len(people_relation)
        assert loaded.schema.dtype("age") is DataType.INTEGER
        assert loaded.cell(0, "name") == "Alice"
        # empty CSV cells become nulls
        assert loaded.cell(3, "city") is None

    def test_header_and_types(self, tmp_path):
        path = tmp_path / "cds.csv"
        path.write_text("title,price,year\nAbbey Road,12.99,1969\nKind of Blue,9.5,1959\n")
        relation = CsvSource(path).load()
        assert relation.column_names == ("title", "price", "year")
        assert relation.schema.dtype("price") is DataType.FLOAT
        assert relation.column("year") == [1969, 1959]

    def test_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,1\nb,2\n")
        relation = CsvSource(path, has_header=False, column_names=["letter", "number"]).load()
        assert relation.column("letter") == ["a", "b"]

    def test_without_header_generates_names(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,1\n")
        relation = CsvSource(path, has_header=False).load()
        assert relation.column_names == ("column_1", "column_2")

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("x;y\n1;2\n")
        relation = CsvSource(path, delimiter=";").load()
        assert relation.column("y") == [2]

    def test_ragged_rows_are_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,c\n1,2\n")
        relation = CsvSource(path).load()
        assert relation.cell(0, "c") is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SourceError):
            CsvSource(tmp_path / "missing.csv").load()

    def test_source_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "students.csv"
        path.write_text("a\n1\n")
        assert CsvSource(path).load().name == "students"


class TestJsonSource:
    def test_array_of_objects(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"a": 1, "b": "x"}, {"a": 2}]))
        relation = JsonSource(path).load()
        assert len(relation) == 2
        assert relation.cell(1, "b") is None

    def test_ndjson(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text('{"a": 1}\n{"a": 2}\n')
        assert len(JsonSource(path).load()) == 2

    def test_nested_objects_are_flattened(self, tmp_path):
        path = tmp_path / "nested.json"
        path.write_text(json.dumps([{"name": "x", "address": {"city": "Berlin"}}]))
        relation = JsonSource(path).load()
        assert relation.cell(0, "address.city") == "Berlin"

    def test_lists_become_strings(self, tmp_path):
        path = tmp_path / "lists.json"
        path.write_text(json.dumps([{"tags": ["a", "b"]}]))
        assert JsonSource(path).load().cell(0, "tags") == "a, b"

    def test_records_key(self, tmp_path):
        path = tmp_path / "wrapped.json"
        path.write_text(json.dumps({"items": [{"a": 1}], "meta": 5}))
        assert len(JsonSource(path, records_key="items").load()) == 1

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json]")
        with pytest.raises(SourceError):
            JsonSource(path).load()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SourceError):
            JsonSource(tmp_path / "missing.json").load()

    def test_write_json_round_trip(self, tmp_path, people_relation):
        path = tmp_path / "out.json"
        write_json(people_relation, path)
        loaded = JsonSource(path).load()
        assert len(loaded) == len(people_relation)


class TestXmlSource:
    def test_record_elements(self, tmp_path):
        path = tmp_path / "cds.xml"
        path.write_text(
            """<catalog>
                 <cd id="1"><title>Abbey Road</title><artist>The Beatles</artist></cd>
                 <cd id="2"><title>Kind of Blue</title><artist>Miles Davis</artist></cd>
               </catalog>"""
        )
        relation = XmlSource(path).load()
        assert len(relation) == 2
        assert relation.cell(0, "title") == "Abbey Road"
        assert relation.cell(1, "id") == "2"

    def test_nested_children_are_flattened_one_level(self, tmp_path):
        path = tmp_path / "people.xml"
        path.write_text(
            """<people>
                 <person><name>X</name><address><city>Berlin</city></address></person>
               </people>"""
        )
        relation = XmlSource(path).load()
        assert relation.cell(0, "address.city") == "Berlin"

    def test_record_path(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(
            "<root><meta/><items><item><a>1</a></item><item><a>2</a></item></items></root>"
        )
        relation = XmlSource(path, record_path="items/item").load()
        assert len(relation) == 2

    def test_invalid_xml_raises(self, tmp_path):
        path = tmp_path / "broken.xml"
        path.write_text("<unclosed>")
        with pytest.raises(SourceError):
            XmlSource(path).load()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SourceError):
            XmlSource(tmp_path / "missing.xml").load()
