"""Tests for relation profiling."""

from repro.engine.relation import Relation
from repro.engine.statistics import profile_relation


class TestProfileRelation:
    def test_basic_counts(self, people_relation):
        stats = profile_relation(people_relation)
        assert stats.row_count == 5
        assert stats.column_count == 4
        assert stats.column("name").null_count == 0
        assert stats.column("age").null_count == 1
        assert stats.column("city").distinct_count == 3

    def test_ratios(self, people_relation):
        stats = profile_relation(people_relation)
        assert stats.column("age").null_ratio == 0.2
        assert stats.column("age").completeness == 0.8
        # 3 distinct ages among 4 non-null cells
        assert stats.column("age").distinctness == 0.75

    def test_average_length_is_over_strings(self, people_relation):
        stats = profile_relation(people_relation)
        assert stats.column("name").average_length == sum(len(n) for n in
            ["Alice", "Bob", "Carol", "Dave", "Eve"]) / 5

    def test_empty_relation(self):
        relation = Relation.from_dicts([])
        stats = profile_relation(relation)
        assert stats.row_count == 0
        assert stats.column_count == 0

    def test_all_null_column(self):
        relation = Relation.from_dicts([{"a": None}, {"a": None}])
        stats = profile_relation(relation)
        assert stats.column("a").null_ratio == 1.0
        assert stats.column("a").distinctness == 0.0
        assert stats.column("a").average_length == 0.0

    def test_case_insensitive_lookup(self, people_relation):
        stats = profile_relation(people_relation)
        assert stats.column("NAME").name == "name"
