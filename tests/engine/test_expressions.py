"""Tests for the expression language (SQL three-valued logic included)."""

import pytest

from repro.engine import expressions as expr
from repro.engine.relation import Row
from repro.engine.schema import Schema
from repro.exceptions import ExpressionError


@pytest.fixture
def row():
    schema = Schema(["name", "age", "city", "score"])
    return Row(schema, ("Alice", 30, None, 7.5))


class TestColumnRefAndLiteral:
    def test_column_ref(self, row):
        assert expr.ColumnRef("age").evaluate(row) == 30

    def test_column_ref_case_insensitive(self, row):
        assert expr.ColumnRef("NAME").evaluate(row) == "Alice"

    def test_qualified_falls_back_to_unqualified(self, row):
        assert expr.ColumnRef("people.age").evaluate(row) == 30

    def test_unknown_column_raises(self, row):
        with pytest.raises(ExpressionError):
            expr.ColumnRef("missing").evaluate(row)

    def test_empty_name_rejected(self):
        with pytest.raises(ExpressionError):
            expr.ColumnRef("")

    def test_literal(self, row):
        assert expr.Literal(42).evaluate(row) == 42

    def test_references(self):
        assert expr.ColumnRef("a").references() == ["a"]
        assert expr.Literal(1).references() == []


class TestArithmetic:
    def test_binary_ops(self, row):
        age = expr.ColumnRef("age")
        assert expr.BinaryOp("+", age, expr.Literal(5)).evaluate(row) == 35
        assert expr.BinaryOp("-", age, expr.Literal(5)).evaluate(row) == 25
        assert expr.BinaryOp("*", age, expr.Literal(2)).evaluate(row) == 60
        assert expr.BinaryOp("/", age, expr.Literal(2)).evaluate(row) == 15
        assert expr.BinaryOp("%", age, expr.Literal(7)).evaluate(row) == 2

    def test_null_propagates(self, row):
        assert expr.BinaryOp("+", expr.ColumnRef("city"), expr.Literal("x")).evaluate(row) is None

    def test_division_by_zero_raises(self, row):
        with pytest.raises(ExpressionError):
            expr.BinaryOp("/", expr.Literal(1), expr.Literal(0)).evaluate(row)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            expr.BinaryOp("**", expr.Literal(1), expr.Literal(2))

    def test_unary_minus(self, row):
        assert expr.UnaryOp("-", expr.ColumnRef("age")).evaluate(row) == -30

    def test_unary_on_null(self, row):
        assert expr.UnaryOp("-", expr.ColumnRef("city")).evaluate(row) is None


class TestComparison:
    def test_equality(self, row):
        assert expr.Comparison("=", expr.ColumnRef("age"), expr.Literal(30)).evaluate(row) is True
        assert expr.Comparison("!=", expr.ColumnRef("age"), expr.Literal(30)).evaluate(row) is False

    def test_ordering(self, row):
        assert expr.Comparison("<", expr.ColumnRef("age"), expr.Literal(40)).evaluate(row) is True
        assert expr.Comparison(">=", expr.ColumnRef("age"), expr.Literal(30)).evaluate(row) is True

    def test_null_comparison_is_unknown(self, row):
        assert expr.Comparison("=", expr.ColumnRef("city"), expr.Literal("Berlin")).evaluate(row) is None

    def test_cross_type_comparison_does_not_raise(self, row):
        assert expr.Comparison("<", expr.ColumnRef("name"), expr.Literal(5)).evaluate(row) in (
            True,
            False,
        )


class TestBooleanLogic:
    def test_and_or(self, row):
        true = expr.Comparison("=", expr.ColumnRef("age"), expr.Literal(30))
        false = expr.Comparison(">", expr.ColumnRef("age"), expr.Literal(100))
        assert expr.BooleanOp("AND", [true, true]).evaluate(row) is True
        assert expr.BooleanOp("AND", [true, false]).evaluate(row) is False
        assert expr.BooleanOp("OR", [false, true]).evaluate(row) is True
        assert expr.BooleanOp("OR", [false, false]).evaluate(row) is False

    def test_three_valued_logic(self, row):
        unknown = expr.Comparison("=", expr.ColumnRef("city"), expr.Literal("x"))
        true = expr.Comparison("=", expr.ColumnRef("age"), expr.Literal(30))
        false = expr.Comparison(">", expr.ColumnRef("age"), expr.Literal(100))
        # unknown AND true -> unknown; unknown AND false -> false
        assert expr.BooleanOp("AND", [unknown, true]).evaluate(row) is None
        assert expr.BooleanOp("AND", [unknown, false]).evaluate(row) is False
        # unknown OR true -> true; unknown OR false -> unknown
        assert expr.BooleanOp("OR", [unknown, true]).evaluate(row) is True
        assert expr.BooleanOp("OR", [unknown, false]).evaluate(row) is None

    def test_not(self, row):
        true = expr.Comparison("=", expr.ColumnRef("age"), expr.Literal(30))
        unknown = expr.Comparison("=", expr.ColumnRef("city"), expr.Literal("x"))
        assert expr.NotOp(true).evaluate(row) is False
        assert expr.NotOp(unknown).evaluate(row) is None

    def test_empty_boolean_rejected(self):
        with pytest.raises(ExpressionError):
            expr.BooleanOp("AND", [])


class TestPredicates:
    def test_is_null(self, row):
        assert expr.IsNull(expr.ColumnRef("city")).evaluate(row) is True
        assert expr.IsNull(expr.ColumnRef("age")).evaluate(row) is False
        assert expr.IsNull(expr.ColumnRef("city"), negated=True).evaluate(row) is False

    def test_in_list(self, row):
        assert expr.InList(
            expr.ColumnRef("age"), [expr.Literal(29), expr.Literal(30)]
        ).evaluate(row) is True
        assert expr.InList(expr.ColumnRef("age"), [expr.Literal(1)]).evaluate(row) is False
        assert expr.InList(
            expr.ColumnRef("age"), [expr.Literal(1)], negated=True
        ).evaluate(row) is True

    def test_in_list_with_null_choice_is_unknown_when_not_found(self, row):
        assert expr.InList(
            expr.ColumnRef("age"), [expr.Literal(1), expr.Literal(None)]
        ).evaluate(row) is None

    def test_between(self, row):
        assert expr.Between(
            expr.ColumnRef("age"), expr.Literal(20), expr.Literal(40)
        ).evaluate(row) is True
        assert expr.Between(
            expr.ColumnRef("age"), expr.Literal(31), expr.Literal(40)
        ).evaluate(row) is False
        assert expr.Between(
            expr.ColumnRef("age"), expr.Literal(20), expr.Literal(40), negated=True
        ).evaluate(row) is False

    def test_like(self, row):
        assert expr.Like(expr.ColumnRef("name"), "Ali%").evaluate(row) is True
        assert expr.Like(expr.ColumnRef("name"), "a_ice").evaluate(row) is True
        assert expr.Like(expr.ColumnRef("name"), "Bob%").evaluate(row) is False
        assert expr.Like(expr.ColumnRef("city"), "%").evaluate(row) is None


class TestFunctionsAndCase:
    def test_scalar_functions(self, row):
        assert expr.FunctionCall("upper", [expr.ColumnRef("name")]).evaluate(row) == "ALICE"
        assert expr.FunctionCall("length", [expr.ColumnRef("name")]).evaluate(row) == 5
        assert expr.FunctionCall(
            "coalesce", [expr.ColumnRef("city"), expr.Literal("unknown")]
        ).evaluate(row) == "unknown"

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            expr.FunctionCall("frobnicate", [])

    def test_case_when(self, row):
        case = expr.CaseWhen(
            [
                (expr.Comparison(">", expr.ColumnRef("age"), expr.Literal(40)), expr.Literal("old")),
                (expr.Comparison(">", expr.ColumnRef("age"), expr.Literal(20)), expr.Literal("adult")),
            ],
            default=expr.Literal("young"),
        )
        assert case.evaluate(row) == "adult"

    def test_case_without_default_returns_none(self, row):
        case = expr.CaseWhen(
            [(expr.Comparison(">", expr.ColumnRef("age"), expr.Literal(100)), expr.Literal("x"))]
        )
        assert case.evaluate(row) is None

    def test_case_requires_branches(self):
        with pytest.raises(ExpressionError):
            expr.CaseWhen([])
