"""Tests for the metadata repository (catalog)."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.io.inline import InlineSource
from repro.engine.relation import Relation
from repro.exceptions import CatalogError


@pytest.fixture
def relation():
    return Relation.from_dicts([{"a": 1}, {"a": 2}], name="numbers")


class TestRegistration:
    def test_register_relation(self, relation):
        catalog = Catalog()
        catalog.register("numbers", relation)
        assert catalog.has("numbers")
        assert len(catalog) == 1

    def test_register_dicts(self):
        catalog = Catalog()
        catalog.register("people", [{"name": "X"}, {"name": "Y"}])
        assert len(catalog.fetch("people")) == 2

    def test_register_data_source(self, relation):
        catalog = Catalog()
        catalog.register("numbers", InlineSource(relation))
        assert catalog.fetch("numbers").column("a") == [1, 2]

    def test_duplicate_alias_rejected(self, relation):
        catalog = Catalog()
        catalog.register("numbers", relation)
        with pytest.raises(CatalogError):
            catalog.register("NUMBERS", relation)

    def test_replace_allows_overwrite(self, relation):
        catalog = Catalog()
        catalog.register("numbers", relation)
        catalog.register("numbers", [{"a": 9}], replace=True)
        assert catalog.fetch("numbers").column("a") == [9]

    def test_unregister(self, relation):
        catalog = Catalog()
        catalog.register("numbers", relation)
        catalog.unregister("numbers")
        assert not catalog.has("numbers")

    def test_unregister_unknown_raises(self):
        with pytest.raises(CatalogError):
            Catalog().unregister("ghost")


class TestFetch:
    def test_fetch_renames_to_alias(self, relation):
        catalog = Catalog()
        catalog.register("my_numbers", relation)
        assert catalog.fetch("my_numbers").name == "my_numbers"

    def test_fetch_unknown_raises_with_known_aliases(self, relation):
        catalog = Catalog()
        catalog.register("numbers", relation)
        with pytest.raises(CatalogError) as excinfo:
            catalog.fetch("ghost")
        assert "numbers" in str(excinfo.value)

    def test_fetch_is_cached(self, relation):
        calls = []

        class CountingSource(InlineSource):
            def load(self):
                calls.append(1)
                return super().load()

        catalog = Catalog()
        catalog.register("numbers", CountingSource(relation))
        catalog.fetch("numbers")
        catalog.fetch("numbers")
        assert len(calls) == 1

    def test_invalidate_forces_reload(self, relation):
        calls = []

        class CountingSource(InlineSource):
            def load(self):
                calls.append(1)
                return super().load()

        catalog = Catalog()
        catalog.register("numbers", CountingSource(relation))
        catalog.fetch("numbers")
        catalog.invalidate("numbers")
        catalog.fetch("numbers")
        assert len(calls) == 2

    def test_fetch_many_order(self, relation):
        catalog = Catalog()
        catalog.register("a", relation)
        catalog.register("b", [{"x": 1}])
        relations = catalog.fetch_many(["b", "a"])
        assert relations[0].name == "b"
        assert relations[1].name == "a"

    def test_transformations_are_applied(self, relation):
        catalog = Catalog()
        catalog.register(
            "numbers",
            relation,
            transformations=[lambda rel: rel.with_column("doubled", lambda row: row["a"] * 2)],
        )
        assert catalog.fetch("numbers").column("doubled") == [2, 4]

    def test_contains_and_aliases(self, relation):
        catalog = Catalog()
        catalog.register("numbers", relation)
        assert "numbers" in catalog
        assert 5 not in catalog
        assert catalog.aliases() == ["numbers"]


class TestReplaceOrdering:
    """register(replace=True) keeps the alias's original registration slot."""

    def test_replace_keeps_registration_order(self):
        catalog = Catalog()
        catalog.register("first", [{"x": 1}])
        catalog.register("second", [{"x": 2}])
        catalog.register("third", [{"x": 3}])
        catalog.register("second", [{"x": 99}], replace=True)
        # the replaced alias stays in its original slot, never moves to the end
        assert catalog.aliases() == ["first", "second", "third"]
        assert catalog.fetch("second").column("x") == [99]

    def test_replace_updates_alias_spelling_in_place(self):
        catalog = Catalog()
        catalog.register("alpha", [{"x": 1}])
        catalog.register("beta", [{"x": 2}])
        catalog.register("ALPHA", [{"x": 3}], replace=True)
        # same slot, new casing: replacement addresses the same logical source
        assert catalog.aliases() == ["ALPHA", "beta"]
        assert catalog.fetch("alpha").column("x") == [3]

    def test_replace_invalidates_prepared_artifacts(self):
        from repro.prepare import SourcePreparer

        catalog = Catalog()
        catalog.register("numbers", [{"x": 1}])
        SourcePreparer(catalog).prepare(["numbers"])
        assert len(catalog.artifacts) == 4
        catalog.register("numbers", [{"x": 2}], replace=True)
        assert len(catalog.artifacts) == 0
