"""Tests for the pluggable graph clustering subsystem (ISSUE 10).

Covers the strategy contract (dense assignment ids, split-only refinement),
the chaining pathology on canonical weighted graphs, the resolver, the
report payloads, and the detector integration.
"""

import pytest

from repro.dedup.clustering import transitive_closure_clusters
from repro.dedup.detector import OBJECT_ID_COLUMN, DuplicateDetector
from repro.dedup.graphcluster import (
    CLUSTERING_STRATEGIES,
    BicliqueClustering,
    ClusteringReport,
    GraphClustering,
    TransitiveClustering,
    resolve_clustering,
)
from repro.dedup.graphcluster.components import (
    build_adjacency,
    component_cohesion,
    connected_components,
    minimum_cut,
)
from repro.engine.relation import Relation

# Canonical four-row setup: rows 0/2 from source s1, rows 1/3 from s2;
# entity a = rows {0, 1}, entity b = rows {2, 3}.
SOURCES = ["s1", "s2", "s1", "s2"]
#: Chain artifact: two strong pairs joined by one borderline bridge (1-2).
CHAIN_EDGES = [(0, 1, 0.9), (2, 3, 0.9), (1, 2, 0.72)]
#: Genuine sparse entity: a path with uniform strong similarities.
GENUINE_EDGES = [(0, 1, 0.9), (0, 3, 0.85), (2, 3, 0.9)]
#: Full 2x2 biclique: one entity with two records per source.
FULL_EDGES = [(0, 1, 0.9), (0, 3, 0.85), (1, 2, 0.8), (2, 3, 0.9)]


@pytest.fixture(params=["transitive", "graph", "biclique"])
def strategy(request):
    return resolve_clustering(request.param)


class TestResolver:
    def test_none_resolves_to_transitive_baseline(self):
        assert isinstance(resolve_clustering(None), TransitiveClustering)

    @pytest.mark.parametrize("name", sorted(CLUSTERING_STRATEGIES))
    def test_names_resolve(self, name):
        strategy = resolve_clustering(name)
        assert strategy.name == name

    def test_instance_passes_through(self):
        instance = GraphClustering(min_cohesion=0.5)
        assert resolve_clustering(instance) is instance

    def test_instance_with_options_rejected(self):
        with pytest.raises(ValueError, match="already-constructed"):
            resolve_clustering(GraphClustering(), min_cohesion=0.5)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="biclique, graph, transitive"):
            resolve_clustering("louvain")

    def test_options_reach_the_constructor(self):
        strategy = resolve_clustering("biclique", max_component_size=10)
        assert strategy.max_component_size == 10

    def test_bad_option_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_clustering("graph", min_cohesion=0.0)
        with pytest.raises(ValueError):
            resolve_clustering("graph", min_side=0)
        with pytest.raises(ValueError):
            resolve_clustering("biclique", weak_edge_ratio=1.5)
        with pytest.raises(ValueError):
            resolve_clustering("biclique", max_component_size=1)
        with pytest.raises(ValueError):
            resolve_clustering("biclique", max_bicliques=0)


class TestContract:
    """Every strategy honours the assignment contract."""

    def test_empty_graph_gives_singletons(self, strategy):
        result = strategy.cluster(4, [], sources=SOURCES)
        assert result.assignment == [0, 1, 2, 3]
        assert result.report.clusters == 4
        assert result.report.largest_cluster == 1
        assert result.report.edges == 0

    def test_zero_rows(self, strategy):
        result = strategy.cluster(0, [], sources=[])
        assert result.assignment == []
        assert result.report.clusters == 0
        assert result.report.largest_cluster == 0

    def test_assignment_ids_are_dense_and_first_row_ordered(self, strategy):
        result = strategy.cluster(6, [(3, 4, 0.9)], sources=["a", "b"] * 3)
        assert result.assignment == [0, 1, 2, 3, 3, 4]

    def test_out_of_range_edge_is_a_clear_error(self, strategy):
        with pytest.raises(ValueError, match=r"\(0, 9\) is out of range"):
            strategy.cluster(4, [(0, 9, 0.8)], sources=SOURCES)

    def test_never_merges_across_components(self, strategy):
        edges = [(0, 1, 0.9), (2, 3, 0.8), (4, 5, 0.7), (3, 4, 0.6)]
        sources = ["a", "b", "a", "b", "a", "b"]
        result = strategy.cluster(6, edges, sources=sources)
        baseline = transitive_closure_clusters(6, [(a, b) for a, b, _ in edges])
        for i in range(6):
            for j in range(6):
                if baseline[i] != baseline[j]:
                    assert result.assignment[i] != result.assignment[j]

    def test_deterministic(self, strategy):
        first = strategy.cluster(4, CHAIN_EDGES, sources=SOURCES)
        second = strategy.cluster(4, list(CHAIN_EDGES), sources=list(SOURCES))
        assert first.assignment == second.assignment
        assert first.report.as_dict() == second.report.as_dict()


class TestTransitiveStrategy:
    def test_matches_union_find_baseline(self):
        edges = [(0, 1, 0.9), (1, 2, 0.5), (4, 5, 0.99)]
        result = TransitiveClustering().cluster(7, edges)
        assert result.assignment == transitive_closure_clusters(
            7, [(a, b) for a, b, _ in edges]
        )
        assert result.report.chains_split == 0
        assert result.report.edges_cut == 0

    def test_merges_the_chain(self):
        result = TransitiveClustering().cluster(4, CHAIN_EDGES, sources=SOURCES)
        assert result.assignment == [0, 0, 0, 0]
        assert result.report.largest_cluster == 4


@pytest.mark.parametrize("strategy_name", ["graph", "biclique"])
class TestChainingPathology:
    """The canonical cases that motivated the subsystem."""

    def test_weak_bridge_is_split(self, strategy_name):
        result = resolve_clustering(strategy_name).cluster(
            4, CHAIN_EDGES, sources=SOURCES
        )
        assert result.assignment == [0, 0, 1, 1]
        assert result.report.chains_split == 1
        assert result.report.edges_cut == 1

    def test_uniform_path_stays_merged(self, strategy_name):
        # Same topology as the chain, but uniform weights: a genuine sparse
        # entity must not be split (weights, not topology, decide).
        result = resolve_clustering(strategy_name).cluster(
            4, GENUINE_EDGES, sources=SOURCES
        )
        assert result.assignment == [0, 0, 0, 0]
        assert result.report.chains_split == 0

    def test_full_biclique_stays_merged(self, strategy_name):
        result = resolve_clustering(strategy_name).cluster(
            4, FULL_EDGES, sources=SOURCES
        )
        assert result.assignment == [0, 0, 0, 0]
        assert result.report.edges_cut == 0

    def test_barbell_of_triangles_is_split(self, strategy_name):
        # Two strong triangles joined by one weak bridge (2-3).
        edges = [
            (0, 1, 0.9), (0, 2, 0.88), (1, 2, 0.92),
            (3, 4, 0.9), (3, 5, 0.91), (4, 5, 0.89),
            (2, 3, 0.6),
        ]
        sources = ["a", "b", "a", "b", "a", "b"]
        result = resolve_clustering(strategy_name).cluster(6, edges, sources=sources)
        assert result.assignment == [0, 0, 0, 1, 1, 1]
        assert result.report.chains_split == 1


class TestGraphStrategy:
    def test_dense_component_skips_the_audit(self):
        result = GraphClustering().cluster(4, FULL_EDGES, sources=SOURCES)
        assert result.report.diagnostics == {"components_audited": 0}

    def test_sparse_component_is_audited(self):
        result = GraphClustering().cluster(4, CHAIN_EDGES, sources=SOURCES)
        assert result.report.diagnostics["components_audited"] >= 1

    def test_min_side_protects_single_records(self):
        # The global minimum cut strands the pendant record 4; rather than
        # cut a singleton loose, the audit keeps the component whole.
        edges = [(0, 1, 0.9), (0, 2, 0.9), (1, 2, 0.9), (2, 3, 0.5), (3, 4, 0.45)]
        result = GraphClustering().cluster(5, edges)
        assert result.assignment == [0, 0, 0, 0, 0]
        assert result.report.chains_split == 0

    def test_works_without_source_labels(self):
        result = GraphClustering().cluster(4, CHAIN_EDGES)
        assert result.assignment == [0, 0, 1, 1]


class TestBicliqueStrategy:
    def test_no_sources_falls_back_to_transitive(self):
        result = BicliqueClustering().cluster(4, CHAIN_EDGES)
        assert result.assignment == [0, 0, 0, 0]
        assert result.report.diagnostics["fallback"] == "no source labels"

    def test_source_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="3 entries for a relation of 4"):
            BicliqueClustering().cluster(4, CHAIN_EDGES, sources=["a", "b", "a"])

    def test_within_source_only_component_kept_whole(self):
        edges = [(0, 1, 0.9), (1, 2, 0.6)]
        result = BicliqueClustering().cluster(3, edges, sources=["a", "a", "a"])
        assert result.assignment == [0, 0, 0]

    def test_oversize_component_kept_whole_and_reported(self):
        edges = [(i, i + 1, 0.9) for i in range(5)]
        sources = ["a", "b"] * 3
        result = BicliqueClustering(max_component_size=4).cluster(
            6, edges, sources=sources
        )
        assert result.assignment == [0] * 6
        assert result.report.diagnostics["oversize_components"] == 1

    def test_leftover_attaches_to_strongest_neighbour(self):
        # Rows 0-3 form the 2x2 biclique; row 4 hangs off row 3 by a strong
        # within-source edge and must join the biclique's cluster.
        edges = [(0, 1, 0.9), (0, 3, 0.85), (1, 2, 0.85), (2, 3, 0.9), (3, 4, 0.88)]
        sources = SOURCES + ["s2"]
        result = BicliqueClustering().cluster(5, edges, sources=sources)
        assert result.assignment == [0, 0, 0, 0, 0]
        assert result.report.diagnostics["leftovers_attached"] == 1

    def test_report_counts_bicliques(self):
        result = BicliqueClustering().cluster(4, FULL_EDGES, sources=SOURCES)
        assert result.report.diagnostics["bicliques_used"] == 1


class TestComponents:
    def test_build_adjacency_keeps_max_weight_on_duplicates(self):
        adjacency = build_adjacency(2, [(0, 1, 0.5), (0, 1, 0.8), (0, 1, 0.6)])
        assert adjacency[0] == {1: 0.8}

    def test_build_adjacency_skips_self_loops(self):
        adjacency = build_adjacency(2, [(1, 1, 0.9)])
        assert adjacency[1] == {}

    def test_connected_components_ordered_by_first_member(self):
        adjacency = build_adjacency(5, [(3, 4, 0.9), (0, 2, 0.9)])
        assert connected_components(adjacency) == [[0, 2], [1], [3, 4]]

    def test_cohesion(self):
        full = build_adjacency(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
        path = build_adjacency(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert component_cohesion([0, 1, 2], full) == 1.0
        assert component_cohesion([0, 1, 2], path) == pytest.approx(2 / 3)
        assert component_cohesion([0], full) == 1.0

    def test_minimum_cut_finds_the_bridge(self):
        adjacency = build_adjacency(4, CHAIN_EDGES)
        cut_weight, side_a, side_b = minimum_cut([0, 1, 2, 3], adjacency)
        assert cut_weight == pytest.approx(0.72)
        assert side_a == [0, 1]
        assert side_b == [2, 3]


class TestReport:
    def test_as_dict_omits_empty_diagnostics(self):
        report = ClusteringReport(strategy="transitive", clusters=2)
        assert "diagnostics" not in report.as_dict()

    def test_as_dict_includes_diagnostics(self):
        report = ClusteringReport(strategy="graph", diagnostics={"components_audited": 3})
        assert report.as_dict()["diagnostics"] == {"components_audited": 3}


@pytest.fixture
def chained_relation():
    """Five records: entities anna (0, 1) and ben (2, 3) plus a loner.

    Record 2 is a bridge: ben's name but anna's email/city, so pairwise
    scoring links it strongly to 3 and borderline to 0/1.
    """
    return Relation.from_dicts(
        [
            {"name": "Anna Schmidt", "city": "Berlin", "email": "anna@mail.de", "sourceID": "a"},
            {"name": "Anna Schmitd", "city": "Berlin", "email": "anna@mail.de", "sourceID": "b"},
            {"name": "Ben Mueller", "city": "Berlin", "email": "anna@mail.de", "sourceID": "a"},
            {"name": "Benjamin Mueller", "city": "Hamburg", "email": "ben@mail.de", "sourceID": "b"},
            {"name": "Carla Weber", "city": "Munich", "email": "carla@web.de", "sourceID": "a"},
        ],
        name="people",
    )


class TestDetectorIntegration:
    def test_default_detector_reports_transitive(self, chained_relation):
        result = DuplicateDetector(threshold=0.55).detect(chained_relation)
        assert result.clustering_report is not None
        assert result.clustering_report.strategy == "transitive"
        assert result.clustering_report.clusters == result.cluster_count

    def test_clustering_name_is_resolved(self, chained_relation):
        result = DuplicateDetector(threshold=0.55, clustering="graph").detect(
            chained_relation
        )
        assert result.clustering_report.strategy == "graph"

    def test_object_ids_follow_the_strategy_assignment(self, chained_relation):
        result = DuplicateDetector(threshold=0.55, clustering="biclique").detect(
            chained_relation
        )
        object_ids = result.relation.column(OBJECT_ID_COLUMN)
        assert list(object_ids) == result.cluster_assignment

    def test_transitive_name_is_bit_identical_to_default(self, chained_relation):
        default = DuplicateDetector(threshold=0.55).detect(chained_relation)
        named = DuplicateDetector(threshold=0.55, clustering="transitive").detect(
            chained_relation
        )
        assert named.cluster_assignment == default.cluster_assignment
        assert named.duplicate_pairs == default.duplicate_pairs

    def test_strategies_only_refine_the_transitive_result(self, chained_relation):
        baseline = DuplicateDetector(threshold=0.55).detect(chained_relation)
        for name in ("graph", "biclique"):
            refined = DuplicateDetector(threshold=0.55, clustering=name).detect(
                chained_relation
            )
            size = len(baseline.cluster_assignment)
            for i in range(size):
                for j in range(size):
                    if baseline.cluster_assignment[i] != baseline.cluster_assignment[j]:
                        assert (
                            refined.cluster_assignment[i]
                            != refined.cluster_assignment[j]
                        ), name

    def test_instance_injection(self, chained_relation):
        strategy = GraphClustering(min_cohesion=0.9)
        result = DuplicateDetector(threshold=0.55, clustering=strategy).detect(
            chained_relation
        )
        assert result.clustering_report.strategy == "graph"
