"""Tests for the pluggable blocking subsystem."""

import pytest

from repro.dedup.blocking import (
    AllPairsBlocking,
    SortedNeighborhoodBlocking,
    TokenBlocking,
    resolve_blocking,
)
from repro.dedup.detector import DuplicateDetector
from repro.engine.relation import Relation
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources


@pytest.fixture
def people():
    return Relation.from_dicts(
        [
            {"name": "Anna Schmidt", "city": "Berlin"},
            {"name": "Anna Schmitd", "city": "Berlin"},
            {"name": "Ben Mueller", "city": "Hamburg"},
            {"name": "Carla Weber", "city": "Munich"},
            {"name": "Zoe Young", "city": "Dresden"},
        ],
        name="people",
    )


def combined_relation(dataset):
    sources = dataset.source_list
    matching = MultiMatcher(DumasMatcher()).match(sources)
    return transform_sources(sources, matching.correspondences)


class TestResolveBlocking:
    def test_none_is_allpairs(self):
        assert isinstance(resolve_blocking(None), AllPairsBlocking)

    def test_names_resolve(self):
        assert isinstance(resolve_blocking("allpairs"), AllPairsBlocking)
        assert isinstance(resolve_blocking("snm"), SortedNeighborhoodBlocking)
        assert isinstance(resolve_blocking("token"), TokenBlocking)

    def test_options_are_forwarded(self):
        strategy = resolve_blocking("snm", window=4)
        assert strategy.window == 4

    def test_instances_pass_through(self):
        strategy = TokenBlocking()
        assert resolve_blocking(strategy) is strategy

    def test_instance_with_options_rejected(self):
        with pytest.raises(ValueError):
            resolve_blocking(TokenBlocking(), window=4)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown blocking strategy"):
            resolve_blocking("sorted")


class TestAllPairsBlocking:
    def test_enumerates_every_pair(self, people):
        pairs = list(AllPairsBlocking().pairs(people, ["name", "city"]))
        assert pairs == [(i, j) for i in range(5) for j in range(i + 1, 5)]


class TestSortedNeighborhoodBlocking:
    def test_window_must_cover_a_neighbour(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocking(window=1)

    def test_key_style_validated(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocking(key_style="fancy")

    def test_window_sliding_pairs_only_neighbours(self, people):
        # Single pass on city with the minimal window: exactly the adjacent
        # tuples in sorted key order are paired.
        strategy = SortedNeighborhoodBlocking(window=2, keys=["city"], key_style="value")
        pairs = set(strategy.pairs(people, ["name", "city"]))
        # sorted cities: berlin(0), berlin(1), dresden(4), hamburg(2), munich(3)
        assert pairs == {(0, 1), (1, 4), (2, 4), (2, 3)}

    def test_wider_window_reaches_further(self, people):
        narrow = set(
            SortedNeighborhoodBlocking(window=2, keys=["city"]).pairs(people, ["city"])
        )
        wide = set(
            SortedNeighborhoodBlocking(window=5, keys=["city"]).pairs(people, ["city"])
        )
        assert narrow < wide
        assert wide == {(i, j) for i in range(5) for j in range(i + 1, 5)}

    def test_multi_pass_dedups_pairs(self, people):
        # Both passes propose (0, 1); the union must not repeat it.
        strategy = SortedNeighborhoodBlocking(window=3, keys=["name", "city"])
        pairs = list(strategy.pairs(people, ["name", "city"]))
        assert len(pairs) == len(set(pairs))

    def test_null_keys_sit_out_the_pass(self):
        relation = Relation.from_dicts(
            [
                {"name": "Anna", "city": None},
                {"name": "Bert", "city": None},
                {"name": "Cara", "city": "Ulm"},
                {"name": "Dora", "city": "Ulm"},
            ],
            name="sparse",
        )
        strategy = SortedNeighborhoodBlocking(window=4, keys=["city"])
        pairs = set(strategy.pairs(relation, ["city"]))
        assert pairs == {(2, 3)}

    def test_rare_first_key_canonicalises_word_swaps(self):
        relation = Relation.from_dicts(
            [
                {"affiliation": "Freie Universitaet Berlin"},
                {"affiliation": "Humboldt Universitaet Berlin"},
                {"affiliation": "Freie Berlin Universitaet"},
                {"affiliation": "TU Muenchen"},
            ],
            name="unis",
        )
        rare = SortedNeighborhoodBlocking(window=2, keys=["affiliation"])
        pairs = set(rare.pairs(relation, ["affiliation"]))
        # word order is canonicalised, so the two Freie variants are adjacent
        assert (0, 2) in pairs

    def test_max_keys_caps_defaulted_passes_only(self, people):
        capped = SortedNeighborhoodBlocking(window=3, max_keys=1)
        assert capped.pass_keys(["name", "city"]) == ["name"]
        explicit = SortedNeighborhoodBlocking(window=3, keys=["name", "city"], max_keys=1)
        assert explicit.pass_keys(["ignored"]) == ["name", "city"]


class TestTokenBlocking:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBlocking(qgram=1)
        with pytest.raises(ValueError):
            TokenBlocking(max_block_size=1)
        with pytest.raises(ValueError):
            TokenBlocking(max_block_fraction=0.0)

    def test_pairs_share_a_token(self, people):
        pairs = set(TokenBlocking().pairs(people, ["name", "city"]))
        assert (0, 1) in pairs  # share "anna" and "berlin"
        assert (3, 4) not in pairs  # no shared token

    def test_pairs_are_deduplicated(self, people):
        # (0, 1) shares both "anna" and "berlin" — proposed once.
        pairs = list(TokenBlocking().pairs(people, ["name", "city"]))
        assert len(pairs) == len(set(pairs))

    def test_block_frequency_capping(self):
        rows = [{"tag": "common", "id": f"unique{i:03d}"} for i in range(8)]
        relation = Relation.from_dicts(rows, name="tags")
        capped = TokenBlocking(max_block_size=4)
        # "common" appears in all 8 rows > cap of 4 — no pairs at all
        assert list(capped.pairs(relation, ["tag", "id"])) == []
        uncapped = TokenBlocking(max_block_size=50, max_block_fraction=1.0)
        assert len(set(uncapped.pairs(relation, ["tag", "id"]))) == 8 * 7 // 2

    def test_fractional_cap(self):
        strategy = TokenBlocking(max_block_size=1000, max_block_fraction=0.5)
        assert strategy.effective_cap(100) == 50
        assert strategy.effective_cap(2) == 2  # never below 2

    def test_qgram_tokens_survive_typos(self):
        strategy = TokenBlocking(qgram=3)
        left = strategy.tokens("Schmidt")
        right = strategy.tokens("Schmitd")
        assert left & right  # shared leading trigrams

    def test_min_token_length_drops_fragments(self):
        assert "de" not in TokenBlocking().tokens("ben m de mail")
        assert "mail" in TokenBlocking().tokens("ben m de mail")

    def test_index_build_allocates_no_rows(self, people, monkeypatch):
        # ISSUE 9: the columnar index build reads the blocking attributes
        # through zero-copy column accessors — no Row object (materialised
        # or lazy view) may be constructed for any tuple.
        from repro.engine.relation import Row

        allocations = []
        original_init = Row.__init__
        original_view = Row.view.__func__

        def counting_init(self, schema, values):
            allocations.append("init")
            original_init(self, schema, values)

        def counting_view(cls, schema, store, index):
            allocations.append("view")
            return original_view(cls, schema, store, index)

        monkeypatch.setattr(Row, "__init__", counting_init)
        monkeypatch.setattr(Row, "view", classmethod(counting_view))
        index = TokenBlocking().build_index(people, ["name", "city"])
        assert allocations == []
        assert index  # the build still produced postings

    def test_index_build_matches_row_at_a_time_reference(self, people):
        # Same postings, same order, as a naive per-row rebuild.
        strategy = TokenBlocking()
        expected = {}
        for index, row in enumerate(people):
            tokens = set()
            for attribute in ("name", "city"):
                value = row[attribute]
                if value is None:
                    continue
                tokens |= strategy.tokens(value)
            for token in tokens:
                expected.setdefault(token, []).append(index)
        assert strategy.build_index(people, ["name", "city"]) == expected

    def test_index_provider_serves_prepared_index(self, people, monkeypatch):
        # The prepared-source layer installs an index_provider that merges
        # per-source postings; when it serves, no tokenisation happens.
        strategy = TokenBlocking()
        prepared = TokenBlocking().build_index(people, ["name", "city"])
        expected = set(strategy.pairs(people, ["name", "city"]))

        def fail_build(self, relation, attributes):  # pragma: no cover - guard
            raise AssertionError("cold build must not run when the provider serves")

        strategy.index_provider = lambda relation, attributes: prepared
        monkeypatch.setattr(TokenBlocking, "build_index", fail_build)
        assert set(strategy.pairs(people, ["name", "city"])) == expected

    def test_index_provider_declining_falls_back_to_cold_build(self, people):
        # A provider returning None (foreign relation, parameter mismatch)
        # means "build it yourself" — results are unchanged either way.
        strategy = TokenBlocking()
        baseline = set(TokenBlocking().pairs(people, ["name", "city"]))
        calls = []

        def declining(relation, attributes):
            calls.append(tuple(attributes))
            return None

        strategy.index_provider = declining
        assert set(strategy.pairs(people, ["name", "city"])) == baseline
        assert calls == [("name", "city")]

    def test_mutated_relation_is_not_served_stale_candidates(self, people):
        # Without an installed provider every pairs() call tokenises the
        # relation as it currently is (index reuse lives in the catalog's
        # artifact store, which validates content digests), so even a caller
        # that mutates row storage in place gets fresh candidates.
        strategy = TokenBlocking()
        before = set(strategy.pairs(people, ["name", "city"]))
        assert (0, 1) in before
        people.store.column(0)[1] = "Completely Different"
        people.store.column(1)[1] = "Elsewhere"
        after = set(strategy.pairs(people, ["name", "city"]))
        assert (0, 1) not in after  # row 1 no longer shares a token with row 0

    def test_hash_colliding_content_is_not_conflated(self):
        # hash(True) == hash(1) but str(True) != str(1): indexes must keep
        # the relations' textual cell forms apart.
        strategy = TokenBlocking(min_token_length=1)
        bools = Relation.from_dicts(
            [{"flag": True, "name": "anna"}, {"flag": True, "name": "anna b"}],
            name="bools",
        )
        ints = Relation.from_dicts(
            [{"flag": 1, "name": "anna"}, {"flag": 1, "name": "anna b"}],
            name="ints",
        )
        bool_index = strategy.indexed_blocks(bools, ["flag", "name"])
        int_index = strategy.indexed_blocks(ints, ["flag", "name"])
        assert "true" in bool_index and "true" not in int_index
        assert "1" in int_index and "1" not in bool_index

    def test_accents_normalised_like_the_measure(self):
        # Blocking shares the measure's accent-stripping normalisation, so
        # accented variants land in the same blocks / sort adjacently.
        relation = Relation.from_dicts(
            [
                {"name": "Jörg Müller", "city": "München"},
                {"name": "Jorg Muller", "city": "Munchen"},
                {"name": "Zoe Young", "city": "Dresden"},
            ],
            name="accents",
        )
        assert (0, 1) in set(TokenBlocking().pairs(relation, ["name", "city"]))
        snm = SortedNeighborhoodBlocking(window=2, keys=["name"])
        assert (0, 1) in set(snm.pairs(relation, ["name"]))


class TestDetectorIntegration:
    def test_detector_accepts_strategy_names(self, people):
        for blocking in ["allpairs", "snm", "token"]:
            result = DuplicateDetector(threshold=0.7, blocking=blocking).detect(people)
            assignment = result.cluster_assignment
            assert assignment[0] == assignment[1]

    def test_statistics_report_blocking_stage(self, people):
        result = DuplicateDetector(threshold=0.7, blocking="token").detect(people)
        stats = result.filter_statistics
        assert stats.total_pairs == 10
        assert 0 < stats.blocking_candidates < stats.total_pairs
        assert stats.blocking_pruned == stats.total_pairs - stats.blocking_candidates
        assert 0.0 < stats.blocking_ratio < 1.0
        assert stats.considered == stats.blocking_candidates
        assert set(stats.as_dict()) >= {
            "total_pairs",
            "blocking_candidates",
            "blocking_pruned",
            "cross_source_skipped",
            "considered",
            "pruned",
            "compared",
        }

    def test_hummer_configured_blocking_reaches_detector(self):
        from repro.config import DedupConfig, FusionConfig
        from repro.hummer import HumMer

        hummer = HumMer(config=FusionConfig(dedup=DedupConfig(blocking="token")))
        assert isinstance(hummer.detector.blocking, TokenBlocking)

    def test_allpairs_statistics_unchanged(self, people):
        stats = DuplicateDetector(blocking="allpairs").detect(people).filter_statistics
        assert stats.blocking_candidates == stats.total_pairs == 10
        assert stats.blocking_pruned == 0


@pytest.mark.parametrize("strategy", ["snm", "token"])
class TestRecallParity:
    """Blocked detection recovers the identical accepted duplicate-pair set.

    The acceptance bar for the blocking subsystem: on the low-corruption
    students and CD-store scenarios, `snm` and `token` accept exactly the
    pairs the all-pairs baseline accepts while proposing fewer candidates.
    """

    def assert_parity(self, combined, strategy):
        baseline = DuplicateDetector(blocking="allpairs").detect(combined)
        blocked = DuplicateDetector(blocking=strategy).detect(combined)
        assert set(blocked.duplicate_pairs) == set(baseline.duplicate_pairs)
        assert blocked.cluster_assignment == baseline.cluster_assignment
        assert (
            blocked.filter_statistics.blocking_candidates
            < baseline.filter_statistics.blocking_candidates
        )

    def test_students_low_corruption(self, small_students_dataset, strategy):
        self.assert_parity(combined_relation(small_students_dataset), strategy)

    def test_cd_store_low_corruption(self, small_cds_dataset, strategy):
        self.assert_parity(combined_relation(small_cds_dataset), strategy)


class TestCrossSourceStatistics:
    def test_cross_source_skips_are_counted(self):
        relation = Relation.from_dicts(
            [
                {"name": "Anna Schmidt", "sourceID": "a"},
                {"name": "Anna Schmidt", "sourceID": "a"},
                {"name": "Anna Schmidt", "sourceID": "b"},
            ],
            name="people",
        )
        result = DuplicateDetector(cross_source_only=True).detect(relation)
        stats = result.filter_statistics
        assert stats.cross_source_skipped == 1  # the a/a pair
        assert stats.considered == 2

    def test_absent_source_column_skips_nothing(self, people):
        result = DuplicateDetector(cross_source_only=True).detect(people)
        assert result.filter_statistics.cross_source_skipped == 0
