"""Tests for the profiling-driven adaptive planner and union blocking."""

import pytest

from repro.core.pipeline import FusionPipeline
from repro.dedup.blocking import (
    AdaptiveBlocking,
    AllPairsBlocking,
    SortedNeighborhoodBlocking,
    TokenBlocking,
    UnionBlocking,
    format_plan_report,
    profile_relation,
    resolve_blocking,
)
from repro.dedup.detector import DuplicateDetector
from repro.engine.catalog import Catalog
from repro.engine.relation import Relation


@pytest.fixture
def people():
    return Relation.from_dicts(
        [
            {"name": "Anna Schmidt", "city": "Berlin"},
            {"name": "Anna Schmitd", "city": "Berlin"},
            {"name": "Ben Mueller", "city": "Hamburg"},
            {"name": "Carla Weber", "city": "Munich"},
            {"name": "Zoe Young", "city": "Dresden"},
        ],
        name="people",
    )


@pytest.fixture
def duplicated_pairs_relation():
    """24 tuples = 12 entities x 2 copies; every value pair shares rare tokens.

    Token blocks all have size 2 (far below the cap), so the corruption
    estimate is 0.0 and the planner stays on the sorted-neighborhood path.
    """
    rows = []
    for i in range(12):
        name = f"first{i:02d} last{i:02d}"
        rows.append({"name": name})
        rows.append({"name": name})
    return Relation.from_dicts(rows, name="duplicated")


@pytest.fixture
def unique_tokens_relation():
    """24 tuples whose values share no token at all → corruption estimate 1.0."""
    rows = [{"name": f"zzqx{i:02d}vv"} for i in range(24)]
    return Relation.from_dicts(rows, name="unique")


class TestResolveSpellings:
    def test_adaptive_resolves(self):
        strategy = resolve_blocking("adaptive")
        assert isinstance(strategy, AdaptiveBlocking)

    def test_adaptive_options_forwarded(self):
        strategy = resolve_blocking("adaptive", small_threshold=7, window_ladder=(2, 4))
        assert strategy.small_threshold == 7
        assert strategy.window_ladder == [2, 4]

    def test_union_resolves_with_default_children(self):
        strategy = resolve_blocking("union")
        assert isinstance(strategy, UnionBlocking)
        assert [child.name for child in strategy.children] == ["snm", "token"]

    def test_union_composite_spelling(self):
        strategy = resolve_blocking("union:snm+token")
        assert isinstance(strategy, UnionBlocking)
        assert [child.name for child in strategy.children] == ["snm", "token"]

    def test_union_composite_single_child(self):
        strategy = resolve_blocking("union:token")
        assert [child.name for child in strategy.children] == ["token"]

    def test_union_composite_empty_rejected(self):
        with pytest.raises(ValueError, match="union blocking spec"):
            resolve_blocking("union:")

    def test_union_composite_unknown_child_rejected(self):
        with pytest.raises(ValueError, match="unknown blocking strategy"):
            resolve_blocking("union:snm+bogus")

    def test_union_composite_with_options_rejected(self):
        with pytest.raises(ValueError, match="composite union spec"):
            resolve_blocking("union:snm+token", window=4)

    def test_union_needs_a_child(self):
        with pytest.raises(ValueError, match="at least one child"):
            UnionBlocking([])


class TestUnionBlocking:
    def test_union_is_superset_of_children(self, people):
        attributes = ["name", "city"]
        snm = SortedNeighborhoodBlocking(window=2)
        token = TokenBlocking()
        union = UnionBlocking([snm, token])
        union_pairs = set(union.pairs(people, attributes))
        assert set(snm.pairs(people, attributes)) <= union_pairs
        assert set(token.pairs(people, attributes)) <= union_pairs

    def test_union_dedups_and_orders_pairs(self, people):
        union = UnionBlocking(["snm", "token"])
        pairs = list(union.pairs(people, ["name", "city"]))
        assert len(pairs) == len(set(pairs))
        assert all(i < j for i, j in pairs)

    def test_union_plan_report(self, people):
        union = UnionBlocking(["snm", "token"])
        report = union.plan_report(people, ["name", "city"])
        assert report == {"strategy": "union", "children": ["snm", "token"]}


class TestAdaptiveValidation:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBlocking(small_threshold=-1)
        with pytest.raises(ValueError):
            AdaptiveBlocking(window_ladder=())
        with pytest.raises(ValueError):
            AdaptiveBlocking(window_ladder=(8, 4))
        with pytest.raises(ValueError):
            AdaptiveBlocking(window_ladder=(8, 8))
        with pytest.raises(ValueError):
            AdaptiveBlocking(plateau_ratio=0.0)
        with pytest.raises(ValueError):
            AdaptiveBlocking(max_pair_fraction=0.0)
        with pytest.raises(ValueError):
            AdaptiveBlocking(snm_options={"window": 5})


class TestProfile:
    def test_profile_counts_nulls_and_cardinality(self):
        relation = Relation.from_dicts(
            [
                {"name": "Anna Schmidt", "city": "Berlin"},
                {"name": "Anna Schmidt", "city": None},
                {"name": "Ben Mueller", "city": None},
                {"name": "Carla Weber", "city": "Berlin"},
            ],
            name="sparse",
        )
        profile = profile_relation(relation, ["name", "city"])
        assert profile.tuple_count == 4
        assert profile.total_pairs == 6
        by_name = {attribute.attribute: attribute for attribute in profile.attributes}
        assert by_name["city"].null_rate == pytest.approx(0.5)
        assert by_name["city"].distinct_ratio == pytest.approx(0.5)  # 1 distinct / 2
        assert by_name["name"].null_rate == 0.0
        assert by_name["name"].distinct_ratio == pytest.approx(0.75)  # 3 distinct / 4
        assert 0.0 <= profile.corruption_estimate <= 1.0
        assert profile.token_count > 0

    def test_profile_limits_attribute_count(self, people):
        profile = profile_relation(people, ["name", "city"], max_attributes=1)
        assert [attribute.attribute for attribute in profile.attributes] == ["name"]

    def test_evidence_free_attribute_counts_as_corrupted(self):
        relation = Relation.from_dicts(
            [{"code": f"unique{i:02d}"} for i in range(6)], name="codes"
        )
        profile = profile_relation(relation, ["code"])
        assert profile.attributes[0].corruption_estimate == pytest.approx(1.0)


class TestPlanner:
    def test_small_input_plans_allpairs(self, people):
        strategy = AdaptiveBlocking()
        plan = strategy.plan(people, ["name", "city"])
        assert isinstance(plan.strategy, AllPairsBlocking)
        assert plan.proposed_pairs == 10
        assert any("small_threshold" in reason for reason in plan.reasons)
        pairs = list(strategy.pairs(people, ["name", "city"]))
        assert pairs == list(AllPairsBlocking().pairs(people, ["name", "city"]))

    def test_window_escalates_to_ladder_maximum(self, duplicated_pairs_relation):
        strategy = AdaptiveBlocking(
            small_threshold=4,
            window_ladder=(4, 8, 16),
            plateau_ratio=0.25,
            max_pair_fraction=1.0,
        )
        plan = strategy.plan(duplicated_pairs_relation, ["name"])
        assert isinstance(plan.strategy, SortedNeighborhoodBlocking)
        assert plan.options == {"window": 16}
        assert any("ladder maximum" in reason for reason in plan.reasons)

    def test_window_escalation_stops_at_plateau(self, duplicated_pairs_relation):
        # n=24: window 16 proposes 240 pairs, window 32 all 276 — under a 25%
        # growth threshold the escalation stops at 16.
        strategy = AdaptiveBlocking(
            small_threshold=4,
            window_ladder=(16, 32, 64),
            plateau_ratio=0.25,
            max_pair_fraction=1.0,
        )
        plan = strategy.plan(duplicated_pairs_relation, ["name"])
        assert plan.options == {"window": 16}
        assert any("plateau" in reason for reason in plan.reasons)

    def test_budget_steps_window_back_down(self, duplicated_pairs_relation):
        # budget = 30% of 276 = 82 pairs; windows 16 (240) and 8 (140) are
        # over, window 4 (66) fits.
        strategy = AdaptiveBlocking(
            small_threshold=4,
            window_ladder=(4, 8, 16),
            plateau_ratio=0.25,
            max_pair_fraction=0.3,
        )
        plan = strategy.plan(duplicated_pairs_relation, ["name"])
        assert plan.options == {"window": 4}
        assert plan.proposed_pairs == 66
        assert any("budget" in reason for reason in plan.reasons)

    def test_budget_overrun_at_ladder_minimum_is_recorded(self, duplicated_pairs_relation):
        # budget = 5% of 276 = 13 pairs; even the smallest window (66
        # proposals) is over, and the plan must say so.
        strategy = AdaptiveBlocking(
            small_threshold=4,
            window_ladder=(4, 8),
            plateau_ratio=0.25,
            max_pair_fraction=0.05,
        )
        plan = strategy.plan(duplicated_pairs_relation, ["name"])
        assert plan.options == {"window": 4}
        assert any("even at the ladder minimum" in reason for reason in plan.reasons)

    def test_planned_proposals_are_replayed_not_reenumerated(
        self, duplicated_pairs_relation, monkeypatch
    ):
        # Planning already enumerates the chosen strategy's pairs; pairs()
        # must replay that list instead of running the strategy again.
        strategy = AdaptiveBlocking(small_threshold=4, window_ladder=(4, 8))
        plan = strategy.plan(duplicated_pairs_relation, ["name"])
        assert plan.proposals is not None
        assert plan.proposals == list(
            plan.strategy.pairs(duplicated_pairs_relation, ["name"])
        )

        def exploding_pairs(self, relation, attributes):
            raise AssertionError("chosen strategy re-enumerated after planning")

        monkeypatch.setattr(SortedNeighborhoodBlocking, "pairs", exploding_pairs)
        replayed = list(strategy.pairs(duplicated_pairs_relation, ["name"]))
        assert replayed == plan.proposals

    def test_only_newest_plan_keeps_proposals(self, duplicated_pairs_relation):
        strategy = AdaptiveBlocking(small_threshold=4, window_ladder=(4, 8))
        first = strategy.plan(duplicated_pairs_relation, ["name"])
        assert first.proposals is not None
        other = Relation.from_dicts(
            [{"name": f"other{i:02d} row{i:02d}"} for i in range(12)], name="other"
        )
        second = strategy.plan(other, ["name"])
        assert second.proposals is not None
        assert first.proposals is None  # stripped; re-enumeration still works
        assert list(strategy.pairs(duplicated_pairs_relation, ["name"]))

    def test_high_corruption_escalates_to_union(self, unique_tokens_relation):
        strategy = AdaptiveBlocking(small_threshold=4, window_ladder=(4, 8))
        plan = strategy.plan(unique_tokens_relation, ["name"])
        assert isinstance(plan.strategy, UnionBlocking)
        assert plan.options["children"] == ["snm", "token"]
        assert any("corruption estimate" in reason for reason in plan.reasons)
        # the report is JSON-shaped and renders
        report = plan.as_dict()
        assert report["strategy"] == "union"
        assert report["profile"]["corruption_estimate"] == pytest.approx(1.0)
        lines = format_plan_report(report)
        # rendered like a direct UnionBlocking report: children in the
        # headline, not dumped as a raw options list
        assert lines[0].startswith("blocking plan: union")
        assert "over snm+token" in lines[0]
        assert "children=" not in lines[0]

    def test_plan_memoised_per_content(self, people):
        strategy = AdaptiveBlocking()
        first = strategy.plan(people, ["name", "city"])
        second = strategy.plan(people, ["name", "city"])
        assert second is first
        assert strategy.last_plan is first

    def test_plan_recomputed_after_content_mutation(self, people):
        strategy = AdaptiveBlocking()
        first = strategy.plan(people, ["name", "city"])
        people.store.column(0).append("New Person")
        people.store.column(1).append("Nowhere")
        second = strategy.plan(people, ["name", "city"])
        assert second is not first
        assert second.profile.tuple_count == 6


class TestPlanThreading:
    def test_detector_reports_plan_in_statistics(self, people):
        result = DuplicateDetector(blocking="adaptive").detect(people)
        plan = result.filter_statistics.blocking_plan
        assert plan is not None
        assert plan["strategy"] == "allpairs"
        assert plan["profile"]["tuple_count"] == 5
        assert "blocking_plan" in result.filter_statistics.as_dict()

    def test_adaptive_small_input_matches_allpairs_exactly(self, people):
        baseline = DuplicateDetector(blocking="allpairs").detect(people)
        adaptive = DuplicateDetector(blocking="adaptive").detect(people)
        assert [
            (score.left_index, score.right_index, score.similarity)
            for score in adaptive.scores
        ] == [
            (score.left_index, score.right_index, score.similarity)
            for score in baseline.scores
        ]
        assert adaptive.cluster_assignment == baseline.cluster_assignment

    def test_fixed_strategies_report_no_plan(self, people):
        result = DuplicateDetector(blocking="token").detect(people)
        assert result.filter_statistics.blocking_plan is None

    def test_union_plan_reaches_statistics(self, people):
        result = DuplicateDetector(blocking="union:snm+token").detect(people)
        assert result.filter_statistics.blocking_plan == {
            "strategy": "union",
            "children": ["snm", "token"],
        }

    def test_pipeline_summary_names_the_plan(self, ee_students, cs_students):
        catalog = Catalog()
        catalog.register("EE_Students", ee_students)
        catalog.register("CS_Students", cs_students)
        result = FusionPipeline(
            catalog, detector=DuplicateDetector(blocking="adaptive")
        ).run(["EE_Students", "CS_Students"])
        assert result.summary()["blocking_plan"] == "allpairs"

    def test_summary_omits_plan_for_fixed_strategies(self, ee_students, cs_students):
        catalog = Catalog()
        catalog.register("EE_Students", ee_students)
        catalog.register("CS_Students", cs_students)
        result = FusionPipeline(catalog).run(["EE_Students", "CS_Students"])
        assert "blocking_plan" not in result.summary()
