"""Tests for union-find and transitive-closure clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup.clustering import UnionFind, transitive_closure_clusters


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(3)
        assert not uf.connected(0, 1)
        assert uf.find(2) == 2

    def test_union_connects(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.union(0, 1)  # already merged

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_groups(self):
        uf = UnionFind(5)
        uf.union(0, 2)
        uf.union(3, 4)
        groups = uf.groups()
        assert [0, 2] in groups
        assert [3, 4] in groups
        assert [1] in groups

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_len(self):
        assert len(UnionFind(7)) == 7

    def test_out_of_range_union_names_the_pair(self):
        uf = UnionFind(3)
        with pytest.raises(ValueError, match=r"\(0, 3\) is out of range"):
            uf.union(0, 3)
        with pytest.raises(ValueError, match=r"\(-1, 2\) is out of range"):
            uf.union(-1, 2)
        # the failed unions must not have corrupted the structure
        assert not uf.connected(0, 2)


class TestTransitiveClosure:
    def test_no_pairs_gives_singletons(self):
        assert transitive_closure_clusters(3, []) == [0, 1, 2]

    def test_chain_merges_into_one_cluster(self):
        assignment = transitive_closure_clusters(4, [(0, 1), (1, 2), (2, 3)])
        assert len(set(assignment)) == 1

    def test_cluster_ids_are_dense_and_ordered(self):
        assignment = transitive_closure_clusters(5, [(3, 4)])
        assert assignment == [0, 1, 2, 3, 3]

    def test_out_of_range_pair_is_a_clear_error(self):
        with pytest.raises(
            ValueError, match=r"duplicate pair \(1, 5\) is out of range for a relation of 3 tuples"
        ):
            transitive_closure_clusters(3, [(0, 1), (1, 5)])

    def test_two_separate_clusters(self):
        assignment = transitive_closure_clusters(6, [(0, 5), (1, 2)])
        assert assignment[0] == assignment[5]
        assert assignment[1] == assignment[2]
        assert assignment[0] != assignment[1]

    @given(
        st.integers(min_value=1, max_value=30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=40),
    )
    @settings(max_examples=60)
    def test_property_pairs_end_up_in_same_cluster(self, size, raw_pairs):
        pairs = [(a % size, b % size) for a, b in raw_pairs]
        assignment = transitive_closure_clusters(size, pairs)
        assert len(assignment) == size
        for a, b in pairs:
            assert assignment[a] == assignment[b]
        # ids are dense: 0..k-1
        assert set(assignment) == set(range(len(set(assignment))))
