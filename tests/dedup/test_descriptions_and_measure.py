"""Tests for attribute selection heuristics and the duplicate similarity measure."""

import pytest

from repro.dedup.descriptions import AttributeSelection, select_interesting_attributes
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.engine.relation import Relation


@pytest.fixture
def dirty_people():
    return Relation.from_dicts(
        [
            {"name": "Anna Schmidt", "age": 22, "city": "Berlin", "constant": "x", "sparse": None, "sourceID": "a"},
            {"name": "Anna Schmitd", "age": 22, "city": "Berlin", "constant": "x", "sparse": None, "sourceID": "b"},
            {"name": "Ben Mueller", "age": 25, "city": "Hamburg", "constant": "x", "sparse": None, "sourceID": "a"},
            {"name": "Carla Weber", "age": 23, "city": "Berlin", "constant": "x", "sparse": "y", "sourceID": "b"},
            {"name": "David Fischer", "age": 27, "city": "Munich", "constant": "x", "sparse": None, "sourceID": "a"},
        ],
        name="people",
    )


class TestAttributeSelection:
    def test_system_columns_rejected(self, dirty_people):
        selection = select_interesting_attributes(dirty_people)
        assert "sourceID" not in selection
        assert "sourceID" in selection.rejected

    def test_sparse_column_rejected(self, dirty_people):
        # sparse is null in 4 of 5 rows; with a stricter null budget it is dropped
        selection = select_interesting_attributes(dirty_people, max_null_ratio=0.7)
        assert "sparse" not in selection
        assert "sparse" in selection.rejected

    def test_constant_column_rejected(self, dirty_people):
        # constant has a single value; with a stricter distinctness bar it is dropped
        selection = select_interesting_attributes(dirty_people, min_distinctness=0.25)
        assert "constant" not in selection
        assert "constant" in selection.rejected

    def test_identifying_columns_kept_with_high_weight(self, dirty_people):
        selection = select_interesting_attributes(dirty_people)
        assert "name" in selection
        assert selection.weights["name"] >= selection.weights["city"]

    def test_always_include_overrides_heuristics(self, dirty_people):
        selection = select_interesting_attributes(dirty_people, always_include=["constant"])
        assert "constant" in selection

    def test_exclude_overrides_heuristics(self, dirty_people):
        selection = select_interesting_attributes(dirty_people, exclude=["name"])
        assert "name" not in selection

    def test_user_adjustment_add_remove(self, dirty_people):
        selection = select_interesting_attributes(dirty_people)
        selection.remove("city")
        assert "city" not in selection
        assert "city" in selection.rejected
        selection.add("city", weight=0.5)
        assert "city" in selection
        assert selection.weights["city"] == 0.5

    def test_len_and_iter(self, dirty_people):
        selection = select_interesting_attributes(dirty_people)
        assert len(selection) == len(list(selection))


class TestDuplicateSimilarityMeasure:
    def make_measure(self, relation, **kwargs):
        selection = select_interesting_attributes(relation)
        return DuplicateSimilarityMeasure(selection, **kwargs).fit(relation)

    def test_identical_rows_score_one(self, dirty_people):
        measure = self.make_measure(dirty_people)
        row = dirty_people.rows[0]
        assert measure.compare_rows(row, row) == pytest.approx(1.0)

    def test_typo_duplicate_scores_higher_than_different_person(self, dirty_people):
        measure = self.make_measure(dirty_people)
        rows = dirty_people.rows
        duplicate_score = measure.compare_rows(rows[0], rows[1])
        different_score = measure.compare_rows(rows[0], rows[2])
        assert duplicate_score > 0.75
        assert different_score < duplicate_score

    def test_missing_values_are_neutral(self, dirty_people):
        measure = self.make_measure(dirty_people)
        evidence = measure.explain_rows(dirty_people.rows[0], dirty_people.rows[1])
        # "sparse" is not selected at all; nothing about missing data lowers the score
        assert evidence.similarity > 0.75

    def test_explain_reports_contradictions(self, dirty_people):
        measure = self.make_measure(dirty_people)
        evidence = measure.explain_rows(dirty_people.rows[0], dirty_people.rows[2])
        assert "name" in evidence.contradicting_attributes or "name" in evidence.per_attribute

    def test_soft_idf_rare_values_weigh_more(self, dirty_people):
        measure = self.make_measure(dirty_people)
        rare = measure.soft_idf("city", "Munich")     # appears once
        common = measure.soft_idf("city", "Berlin")   # appears three times
        assert rare > common

    def test_soft_idf_null_is_zero(self, dirty_people):
        measure = self.make_measure(dirty_people)
        assert measure.soft_idf("city", None) == 0.0

    def test_upper_bound_never_below_true_similarity(self, dirty_people):
        measure = self.make_measure(dirty_people)
        rows = dirty_people.rows
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                assert measure.upper_bound(rows[i], rows[j]) >= measure.compare_rows(
                    rows[i], rows[j]
                ) - 1e-9

    def test_numeric_range_scaling_separates_ages(self):
        relation = Relation.from_dicts(
            [{"name": f"P{i}", "age": 18 + i} for i in range(12)], name="ages"
        )
        selection = select_interesting_attributes(relation)
        measure = DuplicateSimilarityMeasure(selection).fit(relation)
        same_age = measure._attribute_similarity("age", 20, 20)
        far_age = measure._attribute_similarity("age", 18, 29)
        assert same_age == pytest.approx(1.0)
        assert far_age < 0.1

    def test_sharpness_one_reproduces_raw_similarity(self, dirty_people):
        selection = select_interesting_attributes(dirty_people)
        soft = DuplicateSimilarityMeasure(selection, sharpness=1.0).fit(dirty_people)
        sharp = DuplicateSimilarityMeasure(selection, sharpness=3.0).fit(dirty_people)
        rows = dirty_people.rows
        assert soft.compare_rows(rows[0], rows[2]) >= sharp.compare_rows(rows[0], rows[2])

    def test_unknown_columns_in_selection_are_ignored(self, dirty_people):
        selection = AttributeSelection(attributes=["name", "ghost_column"])
        measure = DuplicateSimilarityMeasure(selection).fit(dirty_people)
        assert measure.compare_rows(dirty_people.rows[0], dirty_people.rows[0]) == 1.0

    def test_empty_selection_scores_zero(self, dirty_people):
        selection = AttributeSelection(attributes=[])
        measure = DuplicateSimilarityMeasure(selection).fit(dirty_people)
        assert measure.compare_rows(dirty_people.rows[0], dirty_people.rows[1]) == 0.0
