"""Tests for pair generation, filtering, classification and the detector."""

import pytest

from repro.dedup.classification import classify_pairs
from repro.dedup.descriptions import select_interesting_attributes
from repro.dedup.detector import OBJECT_ID_COLUMN, DuplicateDetector
from repro.dedup.filters import UpperBoundFilter
from repro.dedup.pairs import CandidatePairGenerator, PairScore
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.engine.relation import Relation
from repro.evaluation import evaluate_clusters
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources


@pytest.fixture
def duplicated_people():
    return Relation.from_dicts(
        [
            {"name": "Anna Schmidt", "city": "Berlin", "email": "anna.schmidt@mail.de", "sourceID": "a"},
            {"name": "Anna Schmitd", "city": "Berlin", "email": "anna.schmidt@mail.de", "sourceID": "b"},
            {"name": "Ben Mueller", "city": "Hamburg", "email": "ben.m@mail.de", "sourceID": "a"},
            {"name": "Benjamin Mueller", "city": "Hamburg", "email": "ben.m@mail.de", "sourceID": "b"},
            {"name": "Carla Weber", "city": "Munich", "email": "carla@web.de", "sourceID": "a"},
        ],
        name="people",
    )


class TestCandidatePairs:
    def make_generator(self, relation, **kwargs):
        selection = select_interesting_attributes(relation)
        measure = DuplicateSimilarityMeasure(selection).fit(relation)
        return CandidatePairGenerator(measure, filter_threshold=0.5, **kwargs)

    def test_all_pairs_enumerated(self, duplicated_people):
        generator = self.make_generator(duplicated_people)
        assert len(list(generator.candidate_indices(duplicated_people))) == 10

    def test_cross_source_only_skips_same_source(self, duplicated_people):
        generator = self.make_generator(duplicated_people, cross_source_only=True)
        pairs = list(generator.candidate_indices(duplicated_people))
        assert (0, 2) not in pairs  # both from source a
        assert (0, 1) in pairs

    def test_score_pairs_returns_similarities(self, duplicated_people):
        generator = self.make_generator(duplicated_people, use_filter=False)
        scores = generator.score_pairs(duplicated_people)
        assert len(scores) == 10
        assert all(0.0 <= score.similarity <= 1.0 for score in scores)

    def test_keep_evidence(self, duplicated_people):
        generator = self.make_generator(duplicated_people, use_filter=False, keep_evidence=True)
        scores = generator.score_pairs(duplicated_people)
        assert all(score.evidence is not None for score in scores)

    def test_filter_reduces_full_comparisons_without_losing_duplicates(self, duplicated_people):
        unfiltered = self.make_generator(duplicated_people, use_filter=False)
        filtered = self.make_generator(duplicated_people, use_filter=True)
        unfiltered_scores = {s.as_tuple(): s.similarity for s in unfiltered.score_pairs(duplicated_people)}
        filtered_scores = {s.as_tuple(): s.similarity for s in filtered.score_pairs(duplicated_people)}
        assert filtered.filter.statistics.pruned >= 0
        # every pair above the threshold survives the filter with the same score
        for pair, similarity in unfiltered_scores.items():
            if similarity >= 0.5:
                assert filtered_scores.get(pair) == pytest.approx(similarity)


class TestUpperBoundFilter:
    def test_statistics_and_disable(self, duplicated_people):
        selection = select_interesting_attributes(duplicated_people)
        measure = DuplicateSimilarityMeasure(selection).fit(duplicated_people)
        enabled = UpperBoundFilter(measure, threshold=0.99)
        disabled = UpperBoundFilter(measure, threshold=0.99, enabled=False)
        rows = duplicated_people.rows
        enabled.passes(rows[0], rows[4])
        disabled.passes(rows[0], rows[4])
        assert enabled.statistics.considered == 1
        assert disabled.statistics.pruned == 0
        assert 0.0 <= enabled.statistics.pruning_ratio <= 1.0

    def test_reset(self, duplicated_people):
        selection = select_interesting_attributes(duplicated_people)
        measure = DuplicateSimilarityMeasure(selection).fit(duplicated_people)
        filt = UpperBoundFilter(measure, threshold=0.9)
        filt.passes(duplicated_people.rows[0], duplicated_people.rows[1])
        filt.statistics.reset()
        assert filt.statistics.considered == 0


class TestClassification:
    def test_three_segments(self):
        scores = [PairScore(0, 1, 0.9), PairScore(0, 2, 0.72), PairScore(1, 2, 0.2)]
        classified = classify_pairs(scores, threshold=0.8, uncertainty_band=0.1)
        assert classified.counts == {
            "sure_duplicates": 1,
            "unsure": 1,
            "sure_non_duplicates": 1,
        }

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            classify_pairs([], threshold=0.8, uncertainty_band=-0.1)

    def test_accepted_pairs_default_behaviour(self):
        scores = [PairScore(0, 1, 0.9), PairScore(0, 2, 0.72)]
        classified = classify_pairs(scores, threshold=0.8, uncertainty_band=0.1)
        assert classified.accepted_pairs(accept_unsure_by_default=False) == [(0, 1)]
        assert set(classified.accepted_pairs(accept_unsure_by_default=True)) == {(0, 1), (0, 2)}

    def test_user_decisions_override_default(self):
        scores = [PairScore(0, 2, 0.72)]
        classified = classify_pairs(scores, threshold=0.8, uncertainty_band=0.1)
        classified.confirm((0, 2), False)
        assert classified.accepted_pairs(accept_unsure_by_default=True) == []
        classified.confirm((0, 2), True)
        assert classified.accepted_pairs(accept_unsure_by_default=False) == [(0, 2)]

    def test_confirm_all(self):
        scores = [PairScore(0, 2, 0.72), PairScore(1, 3, 0.75)]
        classified = classify_pairs(scores, threshold=0.8, uncertainty_band=0.1)
        classified.confirm_all(True)
        assert len(classified.accepted_pairs(accept_unsure_by_default=False)) == 2


class TestDuplicateDetector:
    def test_appends_object_id_column(self, duplicated_people):
        result = DuplicateDetector(threshold=0.7).detect(duplicated_people)
        assert OBJECT_ID_COLUMN in result.relation.schema
        assert len(result.relation) == len(duplicated_people)

    def test_finds_the_obvious_duplicates(self, duplicated_people):
        result = DuplicateDetector(threshold=0.7).detect(duplicated_people)
        assignment = result.cluster_assignment
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[4] not in (assignment[0], assignment[2])
        assert result.cluster_count == 3

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DuplicateDetector(threshold=1.5)

    def test_multi_tuple_clusters(self, duplicated_people):
        result = DuplicateDetector(threshold=0.7).detect(duplicated_people)
        multi = result.multi_tuple_clusters()
        assert all(len(rows) > 1 for rows in multi.values())
        assert len(multi) == 2

    def test_higher_threshold_means_fewer_duplicates(self, duplicated_people):
        lenient = DuplicateDetector(threshold=0.5, uncertainty_band=0.0).detect(duplicated_people)
        strict = DuplicateDetector(threshold=0.99, uncertainty_band=0.0).detect(duplicated_people)
        assert strict.cluster_count >= lenient.cluster_count

    def test_redetect_with_decisions_respects_user(self, duplicated_people):
        detector = DuplicateDetector(threshold=0.95, uncertainty_band=0.4, accept_unsure=False)
        result = detector.detect(duplicated_people)
        # accept every unsure pair manually, clusters can only shrink in number
        result.classified.confirm_all(True)
        revised = detector.redetect_with_decisions(duplicated_people, result)
        assert revised.cluster_count <= result.cluster_count

    def test_filter_does_not_change_the_clustering(self, duplicated_people):
        with_filter = DuplicateDetector(threshold=0.7, use_filter=True).detect(duplicated_people)
        without_filter = DuplicateDetector(threshold=0.7, use_filter=False).detect(duplicated_people)
        assert with_filter.cluster_assignment == without_filter.cluster_assignment
        assert with_filter.filter_statistics.considered == 10

    def test_end_to_end_quality_on_generated_data(self, small_students_dataset):
        sources = small_students_dataset.source_list
        matching = MultiMatcher(DumasMatcher()).match(sources)
        combined = transform_sources(sources, matching.correspondences)
        result = DuplicateDetector().detect(combined)
        truth_pairs = small_students_dataset.truth.duplicate_pairs_within(
            small_students_dataset.combined_row_origin()
        )
        metrics = evaluate_clusters(result.cluster_assignment, truth_pairs)
        assert metrics.f1 >= 0.8
