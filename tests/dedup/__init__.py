"""Test package."""
