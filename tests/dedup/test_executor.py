"""Determinism and parity tests for the pluggable scoring executors."""

import pickle

import pytest

from repro.dedup.descriptions import select_interesting_attributes
from repro.dedup.detector import DuplicateDetector
from repro.dedup.executor import (
    MultiprocessExecutor,
    ScoringBatch,
    SerialExecutor,
    executor_for_workers,
    resolve_executor,
    score_batch,
)
from repro.dedup.pairs import CandidatePairGenerator
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources


def combined_relation(dataset):
    sources = dataset.source_list
    matching = MultiMatcher(DumasMatcher()).match(sources)
    return transform_sources(sources, matching.correspondences)


def score_key(scores):
    return [(score.left_index, score.right_index, score.similarity) for score in scores]


class TestResolveExecutor:
    def test_none_is_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_names_resolve(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("multiprocess"), MultiprocessExecutor)

    def test_options_are_forwarded(self):
        executor = resolve_executor("multiprocess", workers=3, chunk_size=128)
        assert executor.workers == 3
        assert executor.chunk_size == 128

    def test_instances_pass_through(self):
        executor = MultiprocessExecutor(workers=2)
        assert resolve_executor(executor) is executor

    def test_instance_with_options_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor(SerialExecutor(), workers=2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scoring executor"):
            resolve_executor("threads")

    def test_executor_for_workers(self):
        assert isinstance(executor_for_workers(None), SerialExecutor)
        assert isinstance(executor_for_workers(1), SerialExecutor)
        multiprocess = executor_for_workers(4, chunk_size=64)
        assert isinstance(multiprocess, MultiprocessExecutor)
        assert multiprocess.workers == 4
        assert multiprocess.chunk_size == 64

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(workers=0)
        with pytest.raises(ValueError):
            MultiprocessExecutor(chunk_size=0)
        with pytest.raises(ValueError):
            MultiprocessExecutor(min_parallel_pairs=-1)


class TestChunking:
    def test_default_chunk_size_targets_four_batches_per_worker(self):
        executor = MultiprocessExecutor(workers=2)
        assert executor.effective_chunk_size(8000) == 1000

    def test_explicit_chunk_size_wins(self):
        executor = MultiprocessExecutor(workers=2, chunk_size=100)
        assert executor.effective_chunk_size(8000) == 100

    def test_chunk_size_never_zero(self):
        executor = MultiprocessExecutor(workers=8)
        assert executor.effective_chunk_size(1) == 1


class TestMeasurePickling:
    def test_snapshot_drops_trigram_cache(self, small_students_dataset):
        relation = combined_relation(small_students_dataset)
        selection = select_interesting_attributes(relation)
        measure = DuplicateSimilarityMeasure(selection).fit(relation)
        rows = relation.rows
        measure.upper_bound(rows[0], rows[1])  # populate the cache
        assert measure._trigram_cache

        clone = pickle.loads(pickle.dumps(measure))
        assert clone._trigram_cache == {}
        # the clone scores identically despite the dropped cache
        assert clone.compare_rows(rows[0], rows[1]) == measure.compare_rows(
            rows[0], rows[1]
        )
        assert clone.upper_bound(rows[0], rows[1]) == measure.upper_bound(
            rows[0], rows[1]
        )

    def test_score_batch_matches_direct_scoring(self, small_students_dataset):
        relation = combined_relation(small_students_dataset)
        selection = select_interesting_attributes(relation)
        measure = DuplicateSimilarityMeasure(selection).fit(relation)
        generator = CandidatePairGenerator(measure, filter_threshold=0.6)
        pairs = list(generator.candidate_indices(relation))
        attributes = measure.fitted_attributes
        batch = ScoringBatch(
            measure=pickle.loads(pickle.dumps(measure)),
            columns={attribute: relation.column(attribute) for attribute in attributes},
            null_masks={
                attribute: relation.null_mask(attribute) for attribute in attributes
            },
            filter_threshold=0.6,
            use_filter=True,
            keep_evidence=False,
        )
        result = score_batch(batch, pairs)
        expected = generator.score_pairs(relation)
        assert score_key(result.scores) == score_key(expected)
        assert result.considered == len(pairs)
        assert result.pruned == generator.statistics.pruned


class TestColumnarBatchParity:
    """The batched columnar scorer is bit-identical to the per-pair reference
    (ISSUE 9): same floats, same pruning decisions, same evidence — for every
    combination of filter and evidence settings."""

    def setup_scoring(self, dataset):
        relation = combined_relation(dataset)
        selection = select_interesting_attributes(relation)
        measure = DuplicateSimilarityMeasure(selection).fit(relation)
        generator = CandidatePairGenerator(measure, filter_threshold=0.6)
        pairs = list(generator.candidate_indices(relation))
        return relation, measure, pairs

    def reference_scores(
        self, measure, relation, pairs, threshold, use_filter, keep_evidence
    ):
        """The seed per-pair loop: row tuples, one measure call per pair."""
        rows = relation.rows
        scores, pruned = [], 0
        for i, j in pairs:
            if use_filter and measure.upper_bound(rows[i], rows[j]) < threshold:
                pruned += 1
                continue
            if keep_evidence:
                evidence = measure.explain_rows(rows[i], rows[j])
                scores.append((i, j, evidence.similarity, evidence))
            else:
                scores.append((i, j, measure.compare_rows(rows[i], rows[j]), None))
        return scores, pruned

    @pytest.mark.parametrize("use_filter", [True, False])
    @pytest.mark.parametrize("keep_evidence", [True, False])
    def test_score_batch_bit_identical(
        self, small_students_dataset, use_filter, keep_evidence
    ):
        relation, measure, pairs = self.setup_scoring(small_students_dataset)
        batch = ScoringBatch(
            measure=measure,
            columns={
                attribute: relation.column(attribute)
                for attribute in measure.fitted_attributes
            },
            null_masks={
                attribute: relation.null_mask(attribute)
                for attribute in measure.fitted_attributes
            },
            filter_threshold=0.6,
            use_filter=use_filter,
            keep_evidence=keep_evidence,
        )
        result = score_batch(batch, pairs)
        expected, pruned = self.reference_scores(
            measure, relation, pairs, 0.6, use_filter, keep_evidence
        )
        assert result.considered == len(pairs)
        assert result.pruned == pruned
        assert len(result.scores) == len(expected)
        for score, (i, j, similarity, evidence) in zip(result.scores, expected):
            assert (score.left_index, score.right_index) == (i, j)
            assert score.similarity == similarity  # bit-identical float
            if keep_evidence:
                assert score.evidence is not None
                assert score.evidence == evidence
            else:
                assert score.evidence is None

    def test_columnar_scorer_upper_bound_parity(self, small_students_dataset):
        relation, measure, pairs = self.setup_scoring(small_students_dataset)
        scorer = measure.columnar_scorer(
            {
                attribute: relation.column(attribute)
                for attribute in measure.fitted_attributes
            }
        )
        rows = relation.rows
        for i, j in pairs:
            assert scorer.upper_bound(i, j) == measure.upper_bound(rows[i], rows[j])


class TestSerialParity:
    """The serial executor is byte-identical to the seed scoring loop."""

    def test_detector_defaults_to_serial(self):
        assert isinstance(DuplicateDetector().executor, SerialExecutor)

    def test_small_input_fallback_matches_serial(self, small_students_dataset):
        relation = combined_relation(small_students_dataset)
        serial = DuplicateDetector(executor=SerialExecutor()).detect(relation)
        # high threshold → the fallback path scores in-process
        fallback = DuplicateDetector(
            executor=MultiprocessExecutor(workers=2, min_parallel_pairs=10**9)
        ).detect(relation)
        assert score_key(fallback.scores) == score_key(serial.scores)
        assert fallback.cluster_assignment == serial.cluster_assignment
        assert (
            fallback.filter_statistics.as_dict() == serial.filter_statistics.as_dict()
        )


@pytest.mark.parametrize("blocking", ["allpairs", "token"])
class TestMultiprocessParity:
    """Multiprocess scoring reproduces the serial run exactly (ISSUE 2 bar)."""

    def parity_check(self, relation, blocking, **executor_options):
        serial = DuplicateDetector(blocking=blocking, executor=SerialExecutor()).detect(
            relation
        )
        parallel = DuplicateDetector(
            blocking=blocking,
            executor=MultiprocessExecutor(min_parallel_pairs=0, **executor_options),
        ).detect(relation)
        assert score_key(parallel.scores) == score_key(serial.scores)
        assert set(parallel.duplicate_pairs) == set(serial.duplicate_pairs)
        assert parallel.cluster_assignment == serial.cluster_assignment
        assert (
            parallel.filter_statistics.as_dict() == serial.filter_statistics.as_dict()
        )
        return serial, parallel

    def test_students_parity(self, small_students_dataset, blocking):
        relation = combined_relation(small_students_dataset)
        self.parity_check(relation, blocking, workers=2)

    def test_cds_parity(self, small_cds_dataset, blocking):
        relation = combined_relation(small_cds_dataset)
        self.parity_check(relation, blocking, workers=2)

    def test_tiny_chunks_preserve_order(self, small_students_dataset, blocking):
        # chunk_size=7 forces many batches per worker; the merged score list
        # must still come back in candidate order.
        relation = combined_relation(small_students_dataset)
        self.parity_check(relation, blocking, workers=2, chunk_size=7)


class TestAdaptiveExecutorParity:
    """Adaptive blocking composes with the multiprocess executor (ISSUE 3).

    On the parity fixture the planner falls back to all-pairs (the input is
    far below ``small_threshold``), so adaptive + multiprocess must be
    bit-identical to a serial all-pairs run — same ``PairScore`` list, same
    clusters, same filter counters; only the plan report is extra.
    """

    def test_adaptive_multiprocess_matches_serial_allpairs(self, small_students_dataset):
        from repro.dedup.blocking import AdaptiveBlocking

        relation = combined_relation(small_students_dataset)
        serial = DuplicateDetector(
            blocking="allpairs", executor=SerialExecutor()
        ).detect(relation)
        adaptive = DuplicateDetector(
            blocking="adaptive",
            executor=MultiprocessExecutor(workers=2, min_parallel_pairs=0),
        ).detect(relation)
        assert score_key(adaptive.scores) == score_key(serial.scores)
        assert adaptive.cluster_assignment == serial.cluster_assignment
        serial_stats = serial.filter_statistics.as_dict()
        adaptive_stats = adaptive.filter_statistics.as_dict()
        plan = adaptive_stats.pop("blocking_plan")
        serial_stats.pop("blocking_plan")
        assert plan["strategy"] == "allpairs"
        assert adaptive_stats == serial_stats
        # sanity: the planner really did fall back because of input size
        assert isinstance(
            DuplicateDetector(blocking="adaptive").blocking, AdaptiveBlocking
        )

    def test_escalated_plan_is_executor_invariant(self, small_students_dataset):
        # Force the escalated (non-allpairs) path with small_threshold=0 and
        # check serial vs. multiprocess runs of the *same* plan agree exactly,
        # plan report included.
        from repro.dedup.blocking import AdaptiveBlocking

        relation = combined_relation(small_students_dataset)
        serial = DuplicateDetector(
            blocking=AdaptiveBlocking(small_threshold=0),
            executor=SerialExecutor(),
        ).detect(relation)
        parallel = DuplicateDetector(
            blocking=AdaptiveBlocking(small_threshold=0),
            executor=MultiprocessExecutor(workers=2, min_parallel_pairs=0),
        ).detect(relation)
        assert serial.filter_statistics.blocking_plan["strategy"] != "allpairs"
        assert score_key(parallel.scores) == score_key(serial.scores)
        assert parallel.cluster_assignment == serial.cluster_assignment
        assert (
            parallel.filter_statistics.as_dict() == serial.filter_statistics.as_dict()
        )


class TestEvidenceAndThreading:
    def test_keep_evidence_survives_the_pool(self, small_students_dataset):
        relation = combined_relation(small_students_dataset)
        serial = DuplicateDetector(
            keep_evidence=True, executor=SerialExecutor()
        ).detect(relation)
        parallel = DuplicateDetector(
            keep_evidence=True,
            executor=MultiprocessExecutor(workers=2, min_parallel_pairs=0),
        ).detect(relation)
        assert score_key(parallel.scores) == score_key(serial.scores)
        for left, right in zip(serial.scores, parallel.scores):
            assert left.evidence is not None and right.evidence is not None
            assert left.evidence.similarity == right.evidence.similarity
            assert left.evidence.per_attribute == right.evidence.per_attribute

    def test_hummer_threads_executor_into_detector(self):
        from repro.config import DedupConfig, FusionConfig
        from repro.hummer import HumMer

        hummer = HumMer(config=FusionConfig(dedup=DedupConfig(executor="multiprocess")))
        assert isinstance(hummer.detector.executor, MultiprocessExecutor)

    def test_injected_detector_executor_wins(self):
        from repro.hummer import HumMer

        detector = DuplicateDetector(
            executor=MultiprocessExecutor(workers=2, min_parallel_pairs=0)
        )
        hummer = HumMer(detector=detector)
        assert hummer.detector.executor is detector.executor

    def test_configured_pipeline_executor(self, small_students_dataset):
        from repro.config import DedupConfig, FusionConfig
        from repro.core.pipeline import FusionPipeline
        from repro.engine.catalog import Catalog

        dataset = small_students_dataset
        catalog = Catalog()
        for alias, relation in dataset.sources.items():
            catalog.register(alias, relation)
        pipeline = FusionPipeline(
            catalog, config=FusionConfig(dedup=DedupConfig(executor="multiprocess"))
        )
        assert isinstance(pipeline.detector.executor, MultiprocessExecutor)
        result = pipeline.run(list(dataset.sources))
        serial_result = FusionPipeline(catalog).run(list(dataset.sources))
        assert result.detection.cluster_assignment == (
            serial_result.detection.cluster_assignment
        )
