"""Tests for child-table enrichment of duplicate detection."""

import pytest

from repro.dedup.enrichment import RelationshipSpec, enrich_with_children
from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.exceptions import DedupError


@pytest.fixture
def catalog_with_children():
    catalog = Catalog()
    students = Relation.from_dicts(
        [
            {"student_id": 1, "name": "A. Schmidt"},
            {"student_id": 2, "name": "Anna Schmidt"},
            {"student_id": 3, "name": "A. Schmitt"},
        ],
        name="students",
    )
    enrollments = Relation.from_dicts(
        [
            {"student": 1, "course": "Database Systems", "grade": 1.3},
            {"student": 1, "course": "Information Integration", "grade": 1.7},
            {"student": 2, "course": "Database Systems", "grade": 1.3},
            {"student": 2, "course": "Information Integration", "grade": 1.7},
            {"student": 3, "course": "Organic Chemistry", "grade": 2.0},
        ],
        name="enrollments",
    )
    catalog.register("students", students)
    catalog.register("enrollments", enrollments)
    return catalog, students


class TestEnrichment:
    def test_appends_description_column(self, catalog_with_children):
        catalog, students = catalog_with_children
        enriched = enrich_with_children(
            students,
            catalog,
            [RelationshipSpec("enrollments", parent_key="student_id", child_key="student")],
        )
        assert "enrollments_description" in enriched.schema
        description = enriched.cell(0, "enrollments_description")
        assert "Database Systems" in description
        assert "Information Integration" in description

    def test_parents_without_children_get_null(self, catalog_with_children):
        catalog, students = catalog_with_children
        extra = students.append_rows([(4, "Zora Quux")])
        enriched = enrich_with_children(
            extra,
            catalog,
            [RelationshipSpec("enrollments", parent_key="student_id", child_key="student")],
        )
        assert enriched.cell(3, "enrollments_description") is None

    def test_explicit_child_attributes_and_output_name(self, catalog_with_children):
        catalog, students = catalog_with_children
        enriched = enrich_with_children(
            students,
            catalog,
            [
                RelationshipSpec(
                    "enrollments",
                    parent_key="student_id",
                    child_key="student",
                    child_attributes=["course"],
                    output_column="courses",
                )
            ],
        )
        assert "courses" in enriched.schema
        assert "1.3" not in enriched.cell(0, "courses")

    def test_unknown_parent_key_raises(self, catalog_with_children):
        catalog, students = catalog_with_children
        with pytest.raises(DedupError):
            enrich_with_children(
                students,
                catalog,
                [RelationshipSpec("enrollments", parent_key="ghost", child_key="student")],
            )

    def test_unknown_child_key_raises(self, catalog_with_children):
        catalog, students = catalog_with_children
        with pytest.raises(DedupError):
            enrich_with_children(
                students,
                catalog,
                [RelationshipSpec("enrollments", parent_key="student_id", child_key="ghost")],
            )

    def test_child_evidence_separates_lookalike_students(self, catalog_with_children):
        """The paper's point: related data distinguishes duplicates from non-duplicates."""
        catalog, students = catalog_with_children
        spec = RelationshipSpec("enrollments", parent_key="student_id", child_key="student")
        enriched = enrich_with_children(students, catalog, [spec])

        from repro.dedup.descriptions import select_interesting_attributes
        from repro.dedup.similarity_measure import DuplicateSimilarityMeasure

        bare_selection = select_interesting_attributes(students, exclude=["student_id"])
        bare = DuplicateSimilarityMeasure(bare_selection).fit(students)
        rich_selection = select_interesting_attributes(enriched, exclude=["student_id"])
        rich = DuplicateSimilarityMeasure(rich_selection).fit(enriched)

        # students 1 and 2 share their whole course history (true duplicates);
        # student 3 has a similar name but a different history.
        same_gap_bare = bare.compare_rows(students.rows[0], students.rows[1]) - bare.compare_rows(
            students.rows[0], students.rows[2]
        )
        same_gap_rich = rich.compare_rows(enriched.rows[0], enriched.rows[1]) - rich.compare_rows(
            enriched.rows[0], enriched.rows[2]
        )
        assert same_gap_rich > same_gap_bare
