"""End-to-end service tests (ISSUE 7 acceptance).

* Two tenants drive stepped fusion runs concurrently — each streams its
  own progress and neither sees the other's state.
* A service that is killed mid-session resumes from a client-held snapshot
  on a freshly booted instance, bit-identically.
"""

import threading

from repro.service import ServiceClient, ServiceServer

from tests.service.conftest import GOLDEN_DIR

CRM = (GOLDEN_DIR / "crm_customers.csv").read_text()
SHOP = (GOLDEN_DIR / "shop_clients.csv").read_text()

STEPS = [
    "choose_sources", "prepare", "schema_matching", "attribute_selection",
    "duplicate_detection", "conflict_resolution", "fusion",
]


def drive_tenant(base_url: str, tenant: str, outcome: dict) -> None:
    """One tenant's full workflow: upload, fuse with streaming, download."""
    try:
        client = ServiceClient(base_url)
        client.create_tenant(tenant)
        client.upload_csv("crm", CRM)
        client.upload_csv("shop", SHOP)
        session = client.create_session(["crm", "shop"])["session"]

        events = []
        streamer = threading.Thread(
            target=lambda: events.extend(client.stream_events(session)),
            daemon=True,
        )
        streamer.start()
        for step in STEPS:
            client.advance(session, to=step)
        streamer.join(timeout=30)

        outcome["events"] = events
        outcome["result"] = client.result(session)
        outcome["sources"] = client.sources()
    except Exception as exc:  # surfaced by the main thread's assertions
        outcome["error"] = exc


class TestConcurrentTenants:
    def test_two_tenants_interleave_without_crosstalk(self, server):
        outcomes = {"one": {}, "two": {}}
        threads = [
            threading.Thread(
                target=drive_tenant,
                args=(server.base_url, f"team-{name}", outcome),
            )
            for name, outcome in outcomes.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        results = []
        for name, outcome in outcomes.items():
            assert "error" not in outcome, f"tenant {name}: {outcome.get('error')}"
            assert outcome["sources"] == ["crm", "shop"]
            stage_steps = [
                e["step"] for e in outcome["events"] if e["event"] == "stage"
            ]
            assert stage_steps == STEPS, f"tenant {name} missed stage events"
            # at least one intra-step progress event per progress-emitting step
            progress_steps = {
                e["step"] for e in outcome["events"] if e["event"] == "progress"
            }
            assert {"schema_matching", "duplicate_detection", "fusion"} <= progress_steps
            assert outcome["events"][-1]["event"] == "end"
            results.append(outcome["result"])

        # identical inputs, isolated tenants: identical outputs
        assert results[0]["rows"] == results[1]["rows"]
        assert results[0]["columns"] == results[1]["columns"]


class TestRestartResume:
    def test_killed_service_resumes_snapshot_bit_identically(self):
        # first service instance: step to duplicate detection, decide an
        # unsure pair, snapshot, and (for the reference) run to completion
        with ServiceServer() as first:
            client = ServiceClient(first.base_url)
            client.create_tenant("resilient")
            client.upload_csv("crm", CRM)
            client.upload_csv("shop", SHOP)
            session = client.create_session(["crm", "shop"])["session"]
            client.advance(session, to="duplicate_detection")
            detection = client.session_status(session)["step_reports"][
                "duplicate_detection"
            ]["payload"]
            snapshot = client.snapshot(session)
            reference = None
            client.run_to_completion(session)
            reference = client.result(session)
        # `with` exit killed the first service; its in-memory sessions died

        with ServiceServer() as second:
            client = ServiceClient(second.base_url)
            client.create_tenant("resilient")
            assert client.tenants() == ["resilient"]  # fresh registry
            client.upload_csv("crm", CRM)
            client.upload_csv("shop", SHOP)
            restored = client.restore_session(snapshot)
            assert restored["completed_steps"] == snapshot["completed_steps"]
            replayed = client.session_status(restored["session"])["step_reports"][
                "duplicate_detection"
            ]["payload"]
            assert replayed["clusters"] == detection["clusters"]
            client.run_to_completion(restored["session"])
            resumed = client.result(restored["session"])

        assert resumed["columns"] == reference["columns"]
        assert resumed["rows"] == reference["rows"]
        # summaries match modulo wall-clock timing
        def strip(summary):
            return {k: v for k, v in summary.items() if k != "seconds"}

        assert strip(resumed["summary"]) == strip(reference["summary"])

    def test_restore_against_changed_data_fails_loudly(self):
        with ServiceServer() as first:
            client = ServiceClient(first.base_url)
            client.create_tenant("strict")
            client.upload_csv("crm", CRM)
            client.upload_csv("shop", SHOP)
            session = client.create_session(["crm", "shop"])["session"]
            client.advance(session, to="prepare")
            snapshot = client.snapshot(session)

        with ServiceServer() as second:
            client = ServiceClient(second.base_url)
            client.create_tenant("strict")
            client.upload_csv("crm", CRM + "Zoe Zimmer,99,Nowhere,zoe@example.com\n")
            client.upload_csv("shop", SHOP)
            try:
                client.restore_session(snapshot)
            except Exception as exc:
                assert "digest" in str(exc)
            else:
                raise AssertionError("restore over changed data must fail")
