"""Durability + admission-control tests for the fusion service (ISSUE 8).

* A service with a data dir journals tenants, sources and per-step session
  snapshots; a fresh process pointed at the same directory recovers all of
  it with zero client re-upload, and a session resumed mid-wizard fuses
  bit-identically to the golden fixture.
* The same guarantee holds across a real ``SIGKILL`` of a ``hummer serve
  --data-dir`` subprocess (also exercised by the CI smoke job).
* A tenant whose bounded work queue is full answers 429 ``TenantBusy``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient, ServiceServer, ServiceState
from repro.service.client import ServiceError

from tests.service.conftest import GOLDEN_DIR, upload_golden

SRC_DIR = str(Path(__file__).parent.parent.parent / "src")
GOLDEN = json.loads((GOLDEN_DIR / "expected_fusion.json").read_text())


def golden_rounded(rows):
    """Row cells in the golden file's JSON-stable form (floats rounded)."""
    return [
        [round(value, 9) if isinstance(value, float) else value for value in row]
        for row in rows
    ]


class TestRestartRecovery:
    def test_fresh_process_recovers_tenants_sources_and_sessions(
        self, tmp_path, golden_csv
    ):
        data_dir = tmp_path / "state"

        with ServiceServer(state=ServiceState(data_dir=str(data_dir))) as first:
            client = ServiceClient(first.base_url)
            client.create_tenant("durable")
            aliases = upload_golden(client, golden_csv)
            session = client.create_session(aliases)["session"]
            client.advance(session, to="duplicate_detection")
            detection = client.session_status(session)["step_reports"][
                "duplicate_detection"
            ]["payload"]
        # `with` exit stopped the first process; only ids survive client-side

        with ServiceServer(state=ServiceState(data_dir=str(data_dir))) as second:
            client = ServiceClient(second.base_url, tenant="durable")
            # zero re-upload: registry, sources and session all recovered
            assert client.tenants() == ["durable"]
            assert client.sources() == ["crm", "shop"]
            status = client.session_status(session)
            assert status["completed_steps"] == [
                "choose_sources", "prepare", "schema_matching",
                "attribute_selection", "duplicate_detection",
            ]
            replayed = client.session_status(session)["step_reports"][
                "duplicate_detection"
            ]["payload"]
            assert replayed["clusters"] == detection["clusters"]
            client.run_to_completion(session)
            resumed = client.result(session)

        # the resumed run is bit-identical to the uninterrupted golden run
        assert resumed["columns"] == GOLDEN["columns"]
        assert golden_rounded(resumed["rows"]) == GOLDEN["rows"]

    def test_recovery_reports_in_stats(self, tmp_path, golden_csv):
        data_dir = tmp_path / "state"
        with ServiceServer(state=ServiceState(data_dir=str(data_dir))) as first:
            client = ServiceClient(first.base_url)
            client.create_tenant("observed")
            aliases = upload_golden(client, golden_csv)
            client.create_session(aliases)

        with ServiceServer(state=ServiceState(data_dir=str(data_dir))) as second:
            stats = ServiceClient(second.base_url).stats()
            assert stats["recovery"]["recovered"] is True
            assert stats["recovery"]["tenants"] == 1
            assert stats["recovery"]["sessions"] == 1
            assert stats["recovery"]["errors"] == []
            assert stats["tenants"]["observed"]["sources"] == 2
            assert stats["tenants"]["observed"]["admission"]["queued"] == 0

    def test_deleted_tenant_stays_deleted_across_restart(
        self, tmp_path, golden_csv
    ):
        data_dir = tmp_path / "state"
        with ServiceServer(state=ServiceState(data_dir=str(data_dir))) as first:
            client = ServiceClient(first.base_url)
            client.create_tenant("ephemeral")
            upload_golden(client, golden_csv)
            client.delete_tenant()

        with ServiceServer(state=ServiceState(data_dir=str(data_dir))) as second:
            assert ServiceClient(second.base_url).tenants() == []


class TestKillAndRestart:
    """The acceptance e2e: SIGKILL mid-wizard, restart, resume server-side."""

    @staticmethod
    def spawn(data_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--data-dir", str(data_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = process.stdout.readline()
        assert "listening on http://" in line, f"unexpected banner: {line!r}"
        port = int(line.rsplit(":", 1)[1])
        client = ServiceClient(f"http://127.0.0.1:{port}")
        deadline = time.monotonic() + 10
        while True:
            try:
                assert client.health()["status"] == "ok"
                return process, client
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)

    def test_sigkill_mid_wizard_then_restart_resumes_bit_identically(
        self, tmp_path, golden_csv
    ):
        data_dir = tmp_path / "state"

        process, client = self.spawn(data_dir)
        try:
            client.create_tenant("survivor")
            aliases = upload_golden(client, golden_csv)
            session = client.create_session(aliases)["session"]
            client.advance(session, to="duplicate_detection")
        finally:
            # hard kill: no atexit, no flush beyond the journal's own appends
            process.kill()
            process.wait(timeout=10)

        process, client = self.spawn(data_dir)
        try:
            client.tenant = "survivor"
            # zero client re-upload
            assert client.tenants() == ["survivor"]
            assert client.sources() == ["crm", "shop"]
            status = client.session_status(session)
            assert status["completed_steps"][-1] == "duplicate_detection"
            client.run_to_completion(session)
            resumed = client.result(session)
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

        assert resumed["columns"] == GOLDEN["columns"]
        assert golden_rounded(resumed["rows"]) == GOLDEN["rows"]


class TestBackpressure:
    def test_full_tenant_queue_answers_429(self, server, golden_csv):
        client = ServiceClient(server.base_url)
        client.create_tenant()
        try:
            aliases = upload_golden(client, golden_csv)
            session = client.create_session(aliases)["session"]

            tenant = server.state.tenants[client.tenant]
            live = tenant.sessions[session].session
            started = threading.Event()
            release = threading.Event()
            original = live._runners["choose_sources"]

            def gated_step():
                started.set()
                release.wait(timeout=30)
                return original()

            live._runners["choose_sources"] = gated_step
            tenant.max_queued = 0
            try:
                slow = threading.Thread(
                    target=lambda: ServiceClient(
                        server.base_url, tenant=client.tenant
                    ).advance(session),
                    daemon=True,
                )
                slow.start()
                # once the gated step runs, its request holds the tenant
                # lock and counts as the one in-flight slot
                assert started.wait(timeout=10), "step never started"
                assert tenant.admission_status()["in_flight"] == 1

                with pytest.raises(ServiceError) as caught:
                    client.advance(session)
                assert caught.value.status == 429
                assert caught.value.error_type == "TenantBusy"
                # the bounce happened at admission: nothing was queued
                assert tenant.admission_status()["queued"] == 0
            finally:
                tenant.max_queued = server.state.max_queued
                release.set()
                slow.join(timeout=30)
                live._runners["choose_sources"] = original
        finally:
            client.delete_tenant()

    def test_stats_exposes_pool_and_queue_settings(self, server):
        stats = ServiceClient(server.base_url).stats()
        assert stats["max_workers"] == server.state.max_workers
        assert stats["max_queued"] == server.state.max_queued
        assert stats["data_dir"] is None
        assert stats["recovery"]["recovered"] is False
