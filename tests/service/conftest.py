"""Shared fixtures for the service tests: one in-process server per module."""

from pathlib import Path

import pytest

from repro.service import ServiceClient, ServiceServer

GOLDEN_DIR = Path(__file__).parent.parent / "fixtures" / "golden"


@pytest.fixture(scope="module")
def server():
    with ServiceServer() as running:
        yield running


@pytest.fixture
def client(server):
    """A fresh tenant per test, torn down afterwards."""
    client = ServiceClient(server.base_url)
    client.create_tenant()
    yield client
    try:
        client.delete_tenant()
    except Exception:
        pass


@pytest.fixture(scope="session")
def golden_csv():
    """The golden CRM/shop fixtures as raw CSV text, keyed by alias."""
    return {
        "crm": (GOLDEN_DIR / "crm_customers.csv").read_text(),
        "shop": (GOLDEN_DIR / "shop_clients.csv").read_text(),
    }


def upload_golden(client: ServiceClient, golden_csv) -> list:
    for alias, text in golden_csv.items():
        client.upload_csv(alias, text)
    return list(golden_csv)
