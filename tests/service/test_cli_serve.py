"""`hummer serve` subprocess smoke test: boot on an ephemeral port, drive a
fusion end to end through the HTTP client, shut down cleanly."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient

from tests.service.conftest import GOLDEN_DIR

SRC_DIR = str(Path(__file__).parent.parent.parent / "src")


@pytest.fixture
def served_port():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        assert "listening on http://" in line, f"unexpected banner: {line!r}"
        yield int(line.rsplit(":", 1)[1])
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


def test_serve_subprocess_end_to_end(served_port):
    client = ServiceClient(f"http://127.0.0.1:{served_port}")
    deadline = time.monotonic() + 10
    while True:
        try:
            assert client.health()["status"] == "ok"
            break
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)

    client.create_tenant("smoke")
    client.upload_csv("crm", (GOLDEN_DIR / "crm_customers.csv").read_text())
    client.upload_csv("shop", (GOLDEN_DIR / "shop_clients.csv").read_text())
    session = client.create_session(["crm", "shop"])["session"]
    status = client.run_to_completion(session)
    assert status["is_done"]

    result = client.result(session)
    assert result["row_count"] == 8  # 11 input tuples, 3 duplicate pairs

    events = list(client.stream_events(session))
    stage_steps = [e["step"] for e in events if e["event"] == "stage"]
    assert len(stage_steps) == 7
    assert events[-1]["event"] == "end"
