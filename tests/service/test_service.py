"""Endpoint-level tests for the HTTP fusion service (ISSUE 7 tentpole).

Each test drives the real server over a real socket through
:class:`ServiceClient`; nothing is mocked.
"""

import time

import pytest

from repro.service import ServiceClient
from repro.service.client import ServiceError

from tests.service.conftest import upload_golden


def settle_tenant(client, timeout=30.0):
    """Wait until the tenant's orphaned (timed-out) step has settled."""
    deadline = time.monotonic() + timeout
    while client.tenant_status()["admission"]["orphaned"]:
        if time.monotonic() > deadline:
            raise AssertionError("orphaned step never settled")
        time.sleep(0.05)


class TestLifecycle:
    def test_health(self, server):
        client = ServiceClient(server.base_url)
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["version"]

    def test_tenant_create_list_delete(self, server):
        client = ServiceClient(server.base_url)
        tenant = client.create_tenant()
        assert tenant in client.tenants()
        client.delete_tenant()
        assert tenant not in client.tenants()

    def test_named_tenant_conflict(self, server):
        client = ServiceClient(server.base_url)
        client.create_tenant("alpha-team")
        try:
            with pytest.raises(ServiceError) as caught:
                ServiceClient(server.base_url).create_tenant("alpha-team")
            assert caught.value.status == 409
        finally:
            client.delete_tenant()

    def test_unknown_tenant_is_404(self, server):
        client = ServiceClient(server.base_url, tenant="ghost")
        with pytest.raises(ServiceError) as caught:
            client.sources()
        assert caught.value.status == 404
        assert caught.value.error_type == "UnknownTenant"


class TestSources:
    def test_csv_and_json_uploads(self, client):
        report = client.upload_csv("a", "name,age\nAnna,30\nBen,25\n")
        assert report == {"alias": "a", "rows": 2, "columns": ["name", "age"]}
        client.upload_rows("b", [{"name": "Anna", "age": 31}])
        assert client.sources() == ["a", "b"]

    def test_duplicate_alias_conflict_and_replace(self, client):
        client.upload_rows("a", [{"x": 1}])
        with pytest.raises(ServiceError) as caught:
            client.upload_rows("a", [{"x": 2}])
        assert caught.value.status == 409
        client.upload_rows("a", [{"x": 2}], replace=True)

    def test_missing_fields_are_400(self, client):
        with pytest.raises(ServiceError) as caught:
            client._request(
                "POST", client._tenant_path("/sources"), {"format": "csv"}
            )
        assert caught.value.status == 400
        assert caught.value.error_type == "MissingField"

    def test_unknown_format_is_400(self, client):
        with pytest.raises(ServiceError) as caught:
            client._request(
                "POST",
                client._tenant_path("/sources"),
                {"alias": "a", "format": "parquet", "data": "x"},
            )
        assert caught.value.status == 400

    def test_delete_source(self, client):
        client.upload_rows("a", [{"x": 1}])
        client._request("DELETE", client._tenant_path("/sources/a"))
        assert client.sources() == []


class TestSessions:
    def test_stepped_session_to_result(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]

        status = client.advance(session)
        assert status["completed_steps"] == ["choose_sources"]
        status = client.advance(session, to="duplicate_detection")
        assert status["current_step"] == "conflict_resolution"
        with pytest.raises(ServiceError) as caught:
            client.result(session)
        assert caught.value.status == 409
        assert caught.value.error_type == "SessionNotDone"

        status = client.run_to_completion(session)
        assert status["is_done"]
        result = client.result(session)
        assert result["row_count"] > 0
        assert "objectID" in result["columns"]
        assert result["summary"]["sources"] == 2

    def test_result_as_csv(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        client.run_to_completion(session)
        text = client.result_csv(session)
        header, *rows = text.strip().splitlines()
        assert header.startswith("objectID,")
        assert len(rows) == client.result(session)["row_count"]

    def test_step_reports_carry_dedup_counters(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        client.run_to_completion(session)
        payload = client.session_status(session)["step_reports"][
            "duplicate_detection"
        ]["payload"]
        assert payload["pairs_scored"] > 0
        assert payload["score_batches"] >= 1

    def test_decisions_recluster(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        client.advance(session, to="duplicate_detection")
        before = client.session_status(session)["step_reports"][
            "duplicate_detection"
        ]["payload"]["clusters"]
        # reject a cross-source pair that scored as a sure duplicate
        snapshot = client.snapshot(session)
        sure = snapshot["classified_segments"]["sure_duplicates"]
        assert sure, "golden fixtures contain at least one sure duplicate"
        left, right = sure[0]
        report = client.apply_decisions(session, [[left, right, False]])
        assert report["decisions"] == 1
        assert report["clusters"] >= before
        client.run_to_completion(session)
        assert client.result(session)["row_count"] >= before

    def test_decisions_before_detection_conflict(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        with pytest.raises(ServiceError) as caught:
            client.apply_decisions(session, [[0, 1, True]])
        assert caught.value.status == 409

    def test_bad_advance_target_is_400(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        with pytest.raises(ServiceError) as caught:
            client.advance(session, to="teleport")
        assert caught.value.status == 400

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServiceError) as caught:
            client.session_status("s999")
        assert caught.value.status == 404
        assert caught.value.error_type == "UnknownSession"

    def test_resolutions_reach_fusion(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(
            aliases, resolutions={"name": "coalesce", "age": "max"}
        )["session"]
        client.run_to_completion(session)
        result = client.result(session)
        name_at = result["columns"].index("name")
        age_at = result["columns"].index("age")
        rows = [row for row in result["rows"] if row[name_at] == "Anna Schmidt"]
        assert len(rows) == 1  # the crm/shop Annas merged into one record
        assert rows[0][age_at] == 35  # max of 34 (crm) and 35 (shop)


class TestClusterDiagnostics:
    def test_tenant_status_has_no_diagnostics_before_dedup(self, client):
        assert client.tenant_status()["clusters"] is None

    def test_tenant_status_and_stats_surface_cluster_shape(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        client.run_to_completion(session)

        diagnostics = client.tenant_status()["clusters"]
        assert diagnostics["session"] == session
        assert diagnostics["clusters"] >= 1
        assert diagnostics["largest_cluster"] >= 2  # golden data has duplicates
        assert diagnostics["chains_split"] == 0  # transitive baseline never splits
        assert diagnostics["clustering"] == "transitive"

        per_tenant = client.stats()["tenants"][client.tenant]
        assert per_tenant["clusters"] == diagnostics

    def test_newest_session_wins(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        first = client.create_session(aliases)["session"]
        client.run_to_completion(first)
        second = client.create_session(aliases)["session"]
        client.run_to_completion(second)
        assert client.tenant_status()["clusters"]["session"] == second


class TestQuery:
    def test_fuse_by_query(self, client):
        client.upload_rows("a", [{"Name": "Anna", "Age": 22}])
        client.upload_rows("b", [{"Name": "Anna", "Age": 23}])
        result = client.query(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM a, b FUSE BY (Name)"
        )
        assert result["row_count"] == 1
        assert result["rows"][0][1] == 23

    def test_query_error_is_400(self, client):
        client.upload_rows("a", [{"x": 1}])
        with pytest.raises(ServiceError) as caught:
            client.query("SELECT FROM nothing garbage")
        assert caught.value.status == 400


class TestEventStream:
    def test_stream_replays_and_terminates(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        client.run_to_completion(session)
        events = list(client.stream_events(session))
        assert events[-1]["event"] == "end"
        stage_steps = [e["step"] for e in events if e["event"] == "stage"]
        assert stage_steps == [
            "choose_sources", "prepare", "schema_matching",
            "attribute_selection", "duplicate_detection",
            "conflict_resolution", "fusion",
        ]
        progress_phases = {e["phase"] for e in events if e["event"] == "progress"}
        assert "pairs_scored" in progress_phases
        assert "seeds_scored" in progress_phases


class TestTimeouts:
    def test_slow_step_times_out_with_504(self, server, golden_csv):
        # a dedicated tenant whose requests run against a tiny ceiling
        client = ServiceClient(server.base_url)
        client.create_tenant()
        try:
            for alias, text in golden_csv.items():
                client.upload_csv(alias, text)
            session = client.create_session(list(golden_csv))["session"]
            old_timeout = server.state.step_timeout
            server.state.step_timeout = 0.000001
            try:
                with pytest.raises(ServiceError) as caught:
                    client.run_to_completion(session)
                assert caught.value.status == 504
                assert caught.value.error_type == "Timeout"
            finally:
                server.state.step_timeout = old_timeout
        finally:
            # the timed-out step keeps running in the background and the
            # tenant answers 409 until it settles — wait before cleanup
            settle_tenant(client)
            client.delete_tenant()
