"""Regression tests for the four service-layer bugs fixed in ISSUE 8.

Each test fails against the pre-fix service:

1. ``GET /tenants/{t}/sessions/{s}/foo/bar`` returned 200 session status
   (extra path segments collapsed to "no action") instead of 404.
2. After a step timeout (504) the worker thread kept mutating the session
   while the tenant lock was already released — the next request could
   interleave with the still-running step.
3. ``POST .../decisions`` applied items one by one; a malformed item
   mid-list left earlier items confirmed and mapped to a 500.
4. ``DELETE /tenants/{t}`` left open ``/events`` streams waiting forever
   on sessions that could no longer advance.
"""

import threading
import time

import pytest

from repro.service import ServiceClient
from repro.service.client import ServiceError

from tests.service.conftest import upload_golden
from tests.service.test_service import settle_tenant


class TestSessionPathRouting:
    def test_extra_path_segments_are_404(self, server, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        # sanity: the plain status route still works
        assert client.session_status(session)["session"] == session
        with pytest.raises(ServiceError) as caught:
            client._request(
                "GET", client._tenant_path(f"/sessions/{session}/foo/bar")
            )
        assert caught.value.status == 404
        assert caught.value.error_type == "UnknownRoute"

    def test_unknown_action_is_404(self, server, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        with pytest.raises(ServiceError) as caught:
            client._request(
                "GET", client._tenant_path(f"/sessions/{session}/bogus")
            )
        assert caught.value.status == 404


class TestOrphanedSteps:
    def test_timed_out_step_keeps_tenant_busy_until_settled(
        self, server, client, golden_csv
    ):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]

        tenant = server.state.tenants[client.tenant]
        live = tenant.sessions[session].session
        original = live._runners["choose_sources"]

        def slow_step():
            time.sleep(0.5)
            return original()

        live._runners["choose_sources"] = slow_step
        old_timeout = server.state.step_timeout
        server.state.step_timeout = 0.05
        try:
            with pytest.raises(ServiceError) as timed_out:
                client.advance(session)
            assert timed_out.value.status == 504

            # the step is still running on a worker thread: the tenant
            # must refuse mutating requests instead of interleaving
            with pytest.raises(ServiceError) as busy:
                client.advance(session)
            assert busy.value.status == 409
            assert busy.value.error_type == "TenantBusy"
            assert client.tenant_status()["admission"]["orphaned"]
        finally:
            server.state.step_timeout = old_timeout
            live._runners["choose_sources"] = original

        settle_tenant(client)
        # the orphaned step completed exactly once in the background;
        # the tenant accepts work again and the session is consistent
        status = client.session_status(session)
        assert status["completed_steps"] == ["choose_sources"]
        client.advance(session)
        assert client.session_status(session)["completed_steps"] == [
            "choose_sources", "prepare",
        ]


class TestAtomicDecisions:
    def drive_to_detection(self, client, golden_csv):
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]
        client.advance(session, to="duplicate_detection")
        return session

    def test_malformed_item_rejects_whole_batch(self, server, client, golden_csv):
        session = self.drive_to_detection(client, golden_csv)
        with pytest.raises(ServiceError) as caught:
            client.apply_decisions(
                session, [[0, 1, True], ["not", "a", "pair?", "no"]], apply=False
            )
        assert caught.value.status == 400
        assert caught.value.error_type == "InvalidDecisions"
        # atomicity: the well-formed first item must NOT have been applied
        live = server.state.tenants[client.tenant].sessions[session].session
        assert live.detection.classified.decisions == {}

    def test_non_integer_ids_reject_whole_batch(self, server, client, golden_csv):
        session = self.drive_to_detection(client, golden_csv)
        with pytest.raises(ServiceError) as caught:
            client.apply_decisions(
                session, [[2, 3, True], ["x", "y", True]], apply=False
            )
        assert caught.value.status == 400
        assert caught.value.error_type == "InvalidDecisions"
        live = server.state.tenants[client.tenant].sessions[session].session
        assert live.detection.classified.decisions == {}


class TestTenantDeleteEndsStreams:
    def test_open_event_stream_terminates_on_tenant_delete(
        self, server, golden_csv
    ):
        client = ServiceClient(server.base_url)
        client.create_tenant()
        aliases = upload_golden(client, golden_csv)
        session = client.create_session(aliases)["session"]

        events = []
        streamer = threading.Thread(
            target=lambda: events.extend(client.stream_events(session)),
            daemon=True,
        )
        streamer.start()
        time.sleep(0.2)  # let the stream attach and drain the empty buffer
        client.delete_tenant()
        streamer.join(timeout=10)

        assert not streamer.is_alive(), "stream never terminated after delete"
        assert events, "stream ended without an end event"
        assert events[-1]["event"] == "end"
        assert events[-1]["reason"] == "tenant_deleted"
        assert events[-1]["is_done"] is False
