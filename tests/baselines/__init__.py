"""Test package."""
