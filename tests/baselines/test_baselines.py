"""Tests for the comparison baselines (name matcher, naive union, exact dedup, GROUP BY)."""

import pytest

from repro.baselines import (
    ExactDuplicateDetector,
    NameBasedMatcher,
    groupby_fusion,
    naive_union,
)
from repro.engine.relation import Relation
from repro.matching.correspondences import Correspondence, CorrespondenceSet
from repro.matching.transform import SOURCE_ID_COLUMN


class TestNameBasedMatcher:
    def test_exact_label_match(self):
        assert NameBasedMatcher().label_similarity("price", "Price") == 1.0

    def test_synonym_match(self):
        assert NameBasedMatcher().label_similarity("zip", "postcode") == pytest.approx(0.95)

    def test_substring_containment(self):
        assert NameBasedMatcher().label_similarity("cd_title", "title") >= 0.7

    def test_underscores_are_word_separators(self):
        matcher = NameBasedMatcher()
        assert matcher.label_similarity("student_name", "student name") == 1.0

    def test_match_produces_one_to_one_correspondences(self, ee_students, cs_students):
        correspondences = NameBasedMatcher().match(ee_students, cs_students)
        lefts = [c.left_attribute for c in correspondences]
        assert len(lefts) == len(set(lefts))
        pairs = {c.as_pair() for c in correspondences}
        assert ("Email", "Mail") in pairs

    def test_fails_on_opaque_labels_where_instances_would_succeed(self):
        left = Relation.from_dicts(
            [{"artist": "Miles Davis", "title": "Kind of Blue"}], name="a"
        )
        right = Relation.from_dicts(
            [{"col_1": "Miles Davis", "col_2": "Kind of Blue"}], name="b"
        )
        assert len(NameBasedMatcher().match(left, right)) == 0

    def test_custom_synonyms(self):
        matcher = NameBasedMatcher(synonyms=[("lehrer", "teacher")])
        assert matcher.label_similarity("teacher", "lehrer") == pytest.approx(0.95)


class TestNaiveUnion:
    def test_without_correspondences_keeps_all_columns(self, ee_students, cs_students):
        result = naive_union([ee_students, cs_students])
        assert len(result) == 7
        assert "StudentName" in result.schema
        assert "Name" in result.schema

    def test_with_correspondences_aligns_schemas(self, ee_students, cs_students):
        correspondences = CorrespondenceSet(
            [Correspondence("EE_Students", "Name", "CS_Students", "StudentName", 1.0)]
        )
        result = naive_union([ee_students, cs_students], correspondences)
        assert "StudentName" not in result.schema
        assert SOURCE_ID_COLUMN in result.schema
        # no fusion: duplicates remain
        assert result.column("Name").count("Anna Schmidt") == 2


class TestExactDuplicateDetector:
    def test_groups_exact_key_matches(self):
        relation = Relation.from_dicts(
            [
                {"name": "Anna Schmidt", "age": 1},
                {"name": "anna  schmidt", "age": 2},
                {"name": "Ben Mueller", "age": 3},
            ],
            name="r",
        )
        detector = ExactDuplicateDetector(["name"])
        assignment = detector.assign_clusters(relation)
        assert assignment[0] == assignment[1]
        assert assignment[2] != assignment[0]

    def test_misses_typo_duplicates(self):
        relation = Relation.from_dicts(
            [{"name": "Anna Schmidt"}, {"name": "Anna Schmitd"}], name="r"
        )
        assignment = ExactDuplicateDetector(["name"]).assign_clusters(relation)
        assert assignment[0] != assignment[1]

    def test_null_keys_stay_singletons(self):
        relation = Relation.from_dicts(
            [{"name": None, "x": 1}, {"name": None, "x": 2}], name="r"
        )
        assignment = ExactDuplicateDetector(["name"]).assign_clusters(relation)
        assert assignment[0] != assignment[1]

    def test_detect_appends_object_id(self, ee_students):
        result = ExactDuplicateDetector(["Name"]).detect(ee_students)
        assert "objectID" in result.schema

    def test_requires_key_columns(self):
        with pytest.raises(ValueError):
            ExactDuplicateDetector([])

    def test_without_normalisation_case_matters(self):
        relation = Relation.from_dicts([{"name": "Anna"}, {"name": "ANNA"}], name="r")
        strict = ExactDuplicateDetector(["name"], normalize=False).assign_clusters(relation)
        assert strict[0] != strict[1]


class TestGroupByFusion:
    def test_collapses_by_key_with_default_aggregate(self):
        relation = Relation.from_dicts(
            [
                {"title": "Abbey Road", "price": 12.99, "year": 1969},
                {"title": "Abbey Road", "price": 10.99, "year": 1969},
                {"title": "Kind of Blue", "price": 9.99, "year": 1959},
            ],
            name="cds",
        )
        result = groupby_fusion(relation, ["title"], aggregate="min")
        assert len(result) == 2
        abbey = [row for row in result if row["title"] == "Abbey Road"][0]
        assert abbey["price"] == 10.99

    def test_per_column_override(self):
        relation = Relation.from_dicts(
            [
                {"title": "X", "price": 10.0, "stock": 3},
                {"title": "X", "price": 12.0, "stock": 5},
            ],
            name="cds",
        )
        result = groupby_fusion(
            relation, ["title"], aggregate="min", per_column={"stock": "max"}
        )
        row = result.to_dicts()[0]
        assert row["price"] == 10.0
        assert row["stock"] == 5

    def test_dirty_key_leaves_duplicates(self):
        relation = Relation.from_dicts(
            [{"title": "Abbey Road"}, {"title": "Abby Road"}], name="cds"
        )
        assert len(groupby_fusion(relation, ["title"])) == 2
