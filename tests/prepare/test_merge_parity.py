"""Merged per-source artifacts must equal the cold combined-relation structures.

These are the load-bearing guarantees of the prepared-source layer: the
merged token index is *member-identical* (same tokens, same ascending row
lists) to tokenising the outer-unioned relation from scratch, and the merged
planner profile carries exactly the statistics cold profiling computes —
so preparing can change runtimes but never results.
"""

import pytest

from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.dedup.blocking.adaptive import profile_relation
from repro.dedup.blocking.token import TokenBlocking
from repro.dedup.descriptions import select_interesting_attributes
from repro.engine.catalog import Catalog
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources
from repro.prepare import SourcePreparer


@pytest.fixture(scope="module")
def prepared_setup():
    """Catalog + prepared artifacts + matched and combined student sources."""
    dataset = students_scenario(
        entity_count=80, corruption=CorruptionConfig.low(), seed=41
    )
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    aliases = list(dataset.sources)
    prepared = SourcePreparer(catalog).prepare(aliases)
    sources = catalog.fetch_many(aliases)
    matching = MultiMatcher(DumasMatcher()).match(sources)
    combined = transform_sources(sources, matching.correspondences)
    view = prepared.view(combined, matching.correspondences, matching.preferred)
    attributes = list(select_interesting_attributes(combined).attributes)
    return prepared, view, combined, attributes


class TestTokenIndexMerge:
    def test_merged_index_equals_cold_build(self, prepared_setup):
        _, view, combined, attributes = prepared_setup
        merged = view.token_index(combined, attributes)
        cold = TokenBlocking().build_index(combined, attributes)
        assert merged is not None
        assert merged.keys() == cold.keys()
        for token, members in cold.items():
            assert merged[token] == members  # same rows, same ascending order

    def test_merged_index_yields_identical_candidate_pairs(self, prepared_setup):
        _, view, combined, attributes = prepared_setup
        cold_strategy = TokenBlocking()
        cold_pairs = list(cold_strategy.pairs(combined, attributes))
        warm_strategy = TokenBlocking()
        warm_strategy.index_provider = view.token_index
        assert set(warm_strategy.pairs(combined, attributes)) == set(cold_pairs)

    def test_foreign_relation_is_declined(self, prepared_setup):
        _, view, combined, attributes = prepared_setup
        clone = combined.copy()
        assert view.token_index(clone, attributes) is None

    def test_source_id_attribute_is_declined(self, prepared_setup):
        _, view, combined, attributes = prepared_setup
        assert view.token_index(combined, list(attributes) + ["sourceID"]) is None

    def test_parameter_mismatch_is_declined(self, prepared_setup):
        _, view, combined, attributes = prepared_setup
        qgram_strategy = TokenBlocking(qgram=3)
        assert (
            view.merged_profile(combined, attributes, qgram_strategy, 4) is None
        )


class TestProfileMerge:
    def test_merged_profile_equals_cold_profile(self, prepared_setup):
        _, view, combined, attributes = prepared_setup
        token_strategy = TokenBlocking()
        merged = view.merged_profile(combined, attributes, token_strategy, 4)
        cold = profile_relation(
            combined, attributes, token_strategy=token_strategy, max_attributes=4
        )
        assert merged is not None
        assert merged.tuple_count == cold.tuple_count
        assert merged.total_pairs == cold.total_pairs
        assert merged.token_count == cold.token_count
        assert merged.dropped_block_count == cold.dropped_block_count
        assert merged.mean_block_size == cold.mean_block_size
        assert len(merged.attributes) == len(cold.attributes)
        for merged_attr, cold_attr in zip(merged.attributes, cold.attributes):
            assert merged_attr.attribute == cold_attr.attribute
            # exact float equality: same operands, same operations
            assert merged_attr.null_rate == cold_attr.null_rate
            assert merged_attr.distinct_ratio == cold_attr.distinct_ratio
            assert merged_attr.corruption_estimate == cold_attr.corruption_estimate
        assert merged.corruption_estimate == cold.corruption_estimate

    def test_merged_profile_respects_attribute_cap(self, prepared_setup):
        _, view, combined, attributes = prepared_setup
        merged = view.merged_profile(combined, attributes, TokenBlocking(), 2)
        assert merged is not None
        assert len(merged.attributes) == min(2, len(attributes))


class TestSeedStatisticsLookup:
    def test_bundle_statistics_match_cold_computation(self, prepared_setup):
        from repro.matching.duplicate_seed import compute_seed_statistics

        prepared, _, _, _ = prepared_setup
        for bundle in prepared.bundles:
            cold = compute_seed_statistics(bundle.relation, 500)
            assert bundle.seeds.documents == cold.documents
            assert bundle.seeds.document_frequency == cold.document_frequency
            assert bundle.seeds.indices == cold.indices

    def test_lookup_is_by_object_identity(self, prepared_setup):
        prepared, _, _, _ = prepared_setup
        relation = prepared.bundles[0].relation
        assert prepared.seed_statistics(relation, 500) is prepared.bundles[0].seeds
        assert prepared.seed_statistics(relation.copy(), 500) is None
        assert prepared.seed_statistics(relation, 123) is None  # wrong sample limit
