"""ArtifactStore: digest validation, counters, persistence, invalidation."""

from repro.engine.relation import Relation
from repro.prepare.store import ArtifactStore


def relation_of(rows, name="rel"):
    return Relation.from_dicts(rows, name=name)


class TestGetOrBuild:
    def test_builds_once_then_reuses(self):
        store = ArtifactStore()
        relation = relation_of([{"a": 1}])
        builds = []

        def builder():
            builds.append(1)
            return {"index": 1}

        first = store.get_or_build("src", "token_index", (), relation, builder)
        second = store.get_or_build("src", "token_index", (), relation, builder)
        assert first is second
        assert builds == [1]
        assert store.counters.total_rebuilt == 1
        assert store.counters.total_reused == 1

    def test_changed_content_rebuilds(self):
        store = ArtifactStore()
        store.get_or_build("src", "token_index", (), relation_of([{"a": 1}]), lambda: "v1")
        rebuilt = store.get_or_build(
            "src", "token_index", (), relation_of([{"a": 2}]), lambda: "v2"
        )
        assert rebuilt == "v2"
        assert store.counters.total_rebuilt == 2
        assert store.counters.total_reused == 0

    def test_params_key_entries_are_independent(self):
        store = ArtifactStore()
        relation = relation_of([{"a": 1}])
        store.get_or_build("src", "token_index", (None, 3), relation, lambda: "words")
        store.get_or_build("src", "token_index", (3, 3), relation, lambda: "qgrams")
        assert store.peek("src", "token_index", (None, 3)) == "words"
        assert store.peek("src", "token_index", (3, 3)) == "qgrams"
        assert len(store) == 2

    def test_alias_is_case_insensitive(self):
        store = ArtifactStore()
        relation = relation_of([{"a": 1}])
        store.get_or_build("Src", "token_index", (), relation, lambda: "x")
        store.get_or_build("SRC", "token_index", (), relation, lambda: "y")
        assert store.counters.total_reused == 1

    def test_counters_diff(self):
        store = ArtifactStore()
        relation = relation_of([{"a": 1}])
        store.get_or_build("src", "k", (), relation, lambda: 1)
        snapshot = store.counters.snapshot()
        store.get_or_build("src", "k", (), relation, lambda: 1)
        delta = store.counters.diff(snapshot)
        assert delta.total_reused == 1
        assert delta.total_rebuilt == 0


class TestInvalidation:
    def test_invalidate_single_alias(self):
        store = ArtifactStore()
        relation = relation_of([{"a": 1}])
        store.get_or_build("one", "k", (), relation, lambda: 1)
        store.get_or_build("two", "k", (), relation, lambda: 2)
        store.invalidate("one")
        assert store.peek("one", "k", ()) is None
        assert store.peek("two", "k", ()) == 2

    def test_invalidate_all(self):
        store = ArtifactStore()
        relation = relation_of([{"a": 1}])
        store.get_or_build("one", "k", (), relation, lambda: 1)
        store.invalidate()
        assert len(store) == 0


class TestPersistence:
    def test_disk_roundtrip_across_store_instances(self, tmp_path):
        relation = relation_of([{"a": 1}, {"a": 2}])
        first = ArtifactStore(str(tmp_path))
        first.get_or_build("src", "k", ("p",), relation, lambda: {"data": [1, 2]})
        assert list(tmp_path.glob("*.pkl"))

        second = ArtifactStore(str(tmp_path))
        loaded = second.get_or_build(
            "src", "k", ("p",), relation, lambda: (_ for _ in ()).throw(AssertionError)
        )
        assert loaded == {"data": [1, 2]}
        assert second.counters.total_reused == 1
        assert second.counters.total_rebuilt == 0

    def test_disk_entry_with_stale_digest_is_rebuilt(self, tmp_path):
        first = ArtifactStore(str(tmp_path))
        first.get_or_build("src", "k", (), relation_of([{"a": 1}]), lambda: "old")
        second = ArtifactStore(str(tmp_path))
        rebuilt = second.get_or_build("src", "k", (), relation_of([{"a": 2}]), lambda: "new")
        assert rebuilt == "new"
        assert second.counters.total_rebuilt == 1

    def test_corrupt_file_is_treated_as_miss(self, tmp_path):
        relation = relation_of([{"a": 1}])
        first = ArtifactStore(str(tmp_path))
        first.get_or_build("src", "k", (), relation, lambda: "good")
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        second = ArtifactStore(str(tmp_path))
        assert second.get_or_build("src", "k", (), relation, lambda: "rebuilt") == "rebuilt"

    def test_invalidate_removes_persisted_files(self, tmp_path):
        relation = relation_of([{"a": 1}])
        store = ArtifactStore(str(tmp_path))
        store.get_or_build("src", "k", (), relation, lambda: "x")
        store.invalidate("src")
        assert not list(tmp_path.glob("*.pkl"))

    def test_truncated_pickle_is_a_miss_and_gets_overwritten(self, tmp_path):
        # the shape a kill mid-write leaves behind: a prefix of valid pickle
        relation = relation_of([{"a": 1}])
        first = ArtifactStore(str(tmp_path))
        first.get_or_build("src", "k", (), relation, lambda: {"payload": list(range(64))})
        (victim,) = tmp_path.glob("*.pkl")
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])

        second = ArtifactStore(str(tmp_path))
        rebuilt = second.get_or_build("src", "k", (), relation, lambda: "rebuilt")
        assert rebuilt == "rebuilt"
        assert second.counters.total_rebuilt == 1
        # the rebuild overwrote the truncated file with a loadable one
        third = ArtifactStore(str(tmp_path))
        assert (
            third.get_or_build("src", "k", (), relation, lambda: "never") == "rebuilt"
        )

    def test_invalidate_alias_unlinks_only_that_aliases_files(self, tmp_path):
        relation = relation_of([{"a": 1}])
        store = ArtifactStore(str(tmp_path))
        store.get_or_build("users", "k", (), relation, lambda: "u1")
        store.get_or_build("users", "other_kind", ("p",), relation, lambda: "u2")
        store.get_or_build("orders", "k", (), relation, lambda: "o1")
        assert len(list(tmp_path.glob("*.pkl"))) == 3

        store.invalidate("users")
        # in-memory: the alias is gone, the other survives
        assert store.peek("users", "k", ()) is None
        assert store.peek("orders", "k", ()) == "o1"
        # on disk: only the alias's prefixed files were unlinked
        remaining = [path.name for path in tmp_path.glob("*.pkl")]
        assert len(remaining) == 1
        assert remaining[0].startswith("orders")

    def test_unwritable_artifact_dir_never_fails_a_query(self, tmp_path):
        import os

        import pytest

        if os.geteuid() == 0:
            pytest.skip("root ignores directory permission bits")
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o500)  # no write permission
        try:
            relation = relation_of([{"a": 1}])
            store = ArtifactStore(str(blocked))
            # the write is best-effort: the build result is still served
            assert store.get_or_build("src", "k", (), relation, lambda: "x") == "x"
            assert store.peek("src", "k", ()) == "x"
            assert not list(blocked.glob("*.pkl"))
        finally:
            blocked.chmod(0o700)

    def test_unwritable_artifact_dir_is_ignored_via_monkeypatched_dump(
        self, tmp_path, monkeypatch
    ):
        # root-safe variant: force the dump itself to fail like a full disk
        import pickle

        relation = relation_of([{"a": 1}])
        store = ArtifactStore(str(tmp_path))

        def exploding_dump(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(pickle, "dump", exploding_dump)
        assert store.get_or_build("src", "k", (), relation, lambda: "x") == "x"
        assert store.peek("src", "k", ()) == "x"


class TestContentDigest:
    def test_digest_is_stable_for_equal_content(self):
        assert (
            relation_of([{"a": 1}]).content_digest()
            == relation_of([{"a": 1}]).content_digest()
        )

    def test_digest_separates_types_and_values(self):
        assert (
            relation_of([{"a": 1}]).content_digest()
            != relation_of([{"a": "1"}]).content_digest()
        )
        assert (
            relation_of([{"a": 1}]).content_digest()
            != relation_of([{"a": 2}]).content_digest()
        )

    def test_fresh_process_invalidate_removes_other_processes_files(self, tmp_path):
        # a store that never loaded the entries (fresh process) must still
        # delete the persisted files of an invalidated alias
        relation = relation_of([{"a": 1}])
        first = ArtifactStore(str(tmp_path))
        first.get_or_build("users", "k", (), relation, lambda: "x")
        first.get_or_build("other", "k", (), relation, lambda: "y")

        fresh = ArtifactStore(str(tmp_path))
        fresh.invalidate("users")
        remaining = [path.name for path in tmp_path.glob("*.pkl")]
        assert len(remaining) == 1
        assert remaining[0].startswith("other")
