"""Prepared pipelines: warm reuse, invalidation, and output parity end to end."""

import pytest

from repro.config import DedupConfig, FusionConfig, PrepareConfig
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.exceptions import ConfigError
from repro.hummer import HumMer


@pytest.fixture(scope="module")
def dataset():
    return students_scenario(entity_count=60, corruption=CorruptionConfig.low(), seed=41)


def build_hummer(dataset, prepare=None, blocking=None, artifact_dir=None):
    config = FusionConfig(
        dedup=DedupConfig(blocking=blocking),
        prepare=PrepareConfig(mode=prepare, artifact_dir=artifact_dir),
    )
    hummer = HumMer(config=config)
    for alias, relation in dataset.sources.items():
        hummer.register(alias, relation)
    return hummer


def fusion_fingerprint(result):
    """Everything observable about a fusion run's output."""
    return (
        result.relation.schema.names,
        result.relation.rows,
        sorted(result.detection.duplicate_pairs),
        result.detection.cluster_assignment,
        [str(c) for c in result.correspondences],
    )


class TestWarmRuns:
    def test_second_fuse_rebuilds_zero_artifacts(self, dataset):
        hummer = build_hummer(dataset, prepare="lazy")
        aliases = list(dataset.sources)
        first = hummer.fuse(aliases)
        second = hummer.fuse(aliases)
        assert first.summary()["artifacts_rebuilt"] == 4 * len(aliases)
        assert second.summary()["artifacts_rebuilt"] == 0
        assert second.summary()["artifacts_reused"] == 4 * len(aliases)

    def test_summary_reports_match_artifact_reuse(self, dataset):
        """ISSUE 6: the summary breaks out the matching-specific artifacts."""
        hummer = build_hummer(dataset, prepare="lazy")
        aliases = list(dataset.sources)
        cold = hummer.fuse(aliases)
        warm = hummer.fuse(aliases)
        # seeding statistics + field corpus, one of each per source
        assert cold.summary()["match_artifacts_rebuilt"] == 2 * len(aliases)
        assert cold.summary()["match_artifacts_reused"] == 0
        assert warm.summary()["match_artifacts_rebuilt"] == 0
        assert warm.summary()["match_artifacts_reused"] == 2 * len(aliases)

    def test_warm_output_is_bit_identical_to_cold(self, dataset):
        hummer = build_hummer(dataset, prepare="lazy")
        aliases = list(dataset.sources)
        cold = hummer.fuse(aliases)
        warm = hummer.fuse(aliases)
        assert fusion_fingerprint(cold) == fusion_fingerprint(warm)
        # scored similarities too, not just accepted pairs
        assert [
            (s.left_index, s.right_index, s.similarity) for s in cold.detection.scores
        ] == [(s.left_index, s.right_index, s.similarity) for s in warm.detection.scores]

    @pytest.mark.parametrize("blocking", ["token", "adaptive"])
    def test_prepared_run_matches_unprepared_run(self, dataset, blocking):
        aliases = list(dataset.sources)
        unprepared = build_hummer(dataset, blocking=blocking).fuse(aliases)
        prepared = build_hummer(dataset, blocking=blocking, prepare="eager").fuse(aliases)
        assert fusion_fingerprint(unprepared) == fusion_fingerprint(prepared)

    def test_eager_registration_prebuilds_artifacts(self, dataset):
        hummer = build_hummer(dataset, prepare="eager")
        aliases = list(dataset.sources)
        # registration already built everything: the first fuse is warm
        result = hummer.fuse(aliases)
        assert result.summary()["artifacts_rebuilt"] == 0
        assert result.summary()["artifacts_reused"] == 4 * len(aliases)

    def test_enable_prepare_then_prepare_call_enables_reuse(self, dataset):
        hummer = build_hummer(dataset)  # no mode at construction
        hummer.enable_prepare("lazy")
        report = hummer.prepare()
        assert report["rebuilt"] == 4 * len(dataset.sources)
        result = hummer.fuse(list(dataset.sources))
        assert result.summary()["artifacts_rebuilt"] == 0

    def test_prepare_without_mode_is_rejected(self, dataset):
        hummer = build_hummer(dataset)
        with pytest.raises(ConfigError, match="enable_prepare"):
            hummer.prepare()

    def test_unprepared_instance_reports_no_artifacts(self, dataset):
        result = build_hummer(dataset).fuse(list(dataset.sources))
        assert result.prepared is None
        assert "artifacts_rebuilt" not in result.summary()


class TestInvalidation:
    def test_replacing_a_source_rebuilds_its_artifacts_only(self, dataset):
        hummer = build_hummer(dataset, prepare="lazy")
        aliases = list(dataset.sources)
        hummer.fuse(aliases)
        replaced = aliases[0]
        hummer.register(replaced, dataset.sources[replaced], replace=True)
        result = hummer.fuse(aliases)
        assert result.summary()["artifacts_rebuilt"] == 4
        assert result.summary()["artifacts_reused"] == 4 * (len(aliases) - 1)

    def test_replaced_data_is_never_served_stale(self, dataset):
        """New rows must flow into candidates and IDF, not the old artifacts."""
        aliases = list(dataset.sources)
        hummer = build_hummer(dataset, prepare="lazy")
        hummer.fuse(aliases)

        # replace the first source with visibly different content
        replaced = aliases[0]
        original = dataset.sources[replaced]
        mutated_rows = [dict(row) for row in original.to_dicts()]
        for row in mutated_rows:
            for key, value in row.items():
                if isinstance(value, str):
                    row[key] = f"changed {value}"
        hummer.register(replaced, mutated_rows, replace=True)
        warm_after_replace = hummer.fuse(aliases)

        # a fresh, unprepared instance over the same new data is the truth
        reference = HumMer()
        reference.register(replaced, mutated_rows)
        for alias in aliases[1:]:
            reference.register(alias, dataset.sources[alias])
        cold_reference = reference.fuse(aliases)

        assert fusion_fingerprint(warm_after_replace) == fusion_fingerprint(cold_reference)

    def test_invalidate_alias_forces_rebuild(self, dataset):
        hummer = build_hummer(dataset, prepare="lazy")
        aliases = list(dataset.sources)
        hummer.fuse(aliases)
        hummer.catalog.invalidate(aliases[0])
        result = hummer.fuse(aliases)
        assert result.summary()["artifacts_rebuilt"] == 4

    def test_unregister_drops_artifacts(self, dataset):
        hummer = build_hummer(dataset, prepare="lazy")
        aliases = list(dataset.sources)
        hummer.fuse(aliases)
        before = len(hummer.catalog.artifacts)
        hummer.unregister(aliases[0])
        assert len(hummer.catalog.artifacts) == before - 4


class TestPersistence:
    def test_restarted_instance_starts_warm_from_artifact_dir(self, dataset, tmp_path):
        aliases = list(dataset.sources)
        first = build_hummer(dataset, prepare="lazy", artifact_dir=str(tmp_path))
        cold = first.fuse(aliases)
        assert cold.summary()["artifacts_rebuilt"] == 4 * len(aliases)

        # a new process would construct a fresh HumMer over the same directory
        second = build_hummer(dataset, prepare="lazy", artifact_dir=str(tmp_path))
        warm = second.fuse(aliases)
        assert warm.summary()["artifacts_rebuilt"] == 0
        assert fusion_fingerprint(cold) == fusion_fingerprint(warm)


class TestValidation:
    def test_invalid_prepare_mode_rejected(self):
        with pytest.raises(ValueError):
            HumMer(config=FusionConfig(prepare=PrepareConfig(mode="sometimes")))

    def test_invalid_register_prepare_mode_rejected(self, dataset):
        hummer = HumMer()
        with pytest.raises(ValueError):
            hummer.register("x", [{"a": 1}], prepare="always")

    def test_register_prepare_without_instance_mode_rejected(self, dataset):
        """The historical implicit instance-wide promotion is gone."""
        hummer = HumMer()
        with pytest.raises(ConfigError, match="enable_prepare"):
            hummer.register("x", [{"a": 1}], prepare="eager")
        assert hummer.prepare_mode is None


class TestQueryPath:
    """HumMer.query() fusion statements go through the prepared path too."""

    def test_warm_query_rebuilds_zero_artifacts(self, dataset):
        hummer = build_hummer(dataset, prepare="lazy")
        aliases = list(dataset.sources)
        statement = f"SELECT * FUSE FROM {', '.join(aliases)}"
        cold = hummer.query(statement)
        counters = hummer.catalog.artifacts.counters
        assert counters.total_rebuilt == 4 * len(aliases)
        snapshot = counters.snapshot()
        warm = hummer.query(statement)
        delta = counters.diff(snapshot)
        assert delta.total_rebuilt == 0
        assert delta.total_reused == 4 * len(aliases)
        assert warm.rows == cold.rows

    def test_filtered_query_matches_unprepared_result(self, dataset):
        aliases = list(dataset.sources)
        first_column = dataset.sources[aliases[0]].column_names[0]
        statement = (
            f"SELECT * FUSE FROM {', '.join(aliases)} "
            f"WHERE {first_column} IS NOT NULL"
        )
        prepared_hummer = build_hummer(dataset, prepare="lazy")
        unprepared_hummer = build_hummer(dataset)
        # WHERE changes the combined rows, so the merge view declines and
        # detection runs cold — results must be identical either way
        assert prepared_hummer.query(statement).rows == unprepared_hummer.query(statement).rows
