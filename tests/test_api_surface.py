"""Public-API snapshot tests (ISSUE 5 satellite).

Asserts the exported names of ``repro``, ``repro.config`` and
``repro.core.session`` plus the parameter lists of the load-bearing
callables, so an accidental surface break (renamed kwarg, dropped export,
reordered required parameter) fails fast in CI rather than surfacing in a
downstream consumer.  The surface is config-only: ISSUE 7 retired the
one-release deprecation shims of ISSUE 5, and this suite pins that the
legacy kwarg spellings are *gone* (``TypeError``), not silently accepted.

When a surface change is *intentional*, update the snapshots here in the
same commit and call the change out in the PR.
"""

import inspect

import pytest

import repro
import repro.config
import repro.core.session
import repro.dedup.graphcluster
from repro.config import DedupConfig, FusionConfig, PrepareConfig
from repro.core.pipeline import FusionPipeline
from repro.core.session import FusionSession
from repro.dedup.detector import DuplicateDetector
from repro.exceptions import ConfigError
from repro.hummer import HumMer

# --------------------------------------------------------------------------
# exported names
# --------------------------------------------------------------------------

REPRO_EXPORTS = sorted(
    [
        "HumMer",
        "FusionConfig",
        "MatchingConfig",
        "DedupConfig",
        "PrepareConfig",
        "ResolutionConfig",
        "FusionSession",
        "StageEvent",
        "ProgressEvent",
        "Catalog",
        "Column",
        "DataType",
        "Relation",
        "Schema",
        "FusionPipeline",
        "FusionResult",
        "FusionSpec",
        "PipelineResult",
        "ResolutionContext",
        "ResolutionFunction",
        "ResolutionSpec",
        "default_registry",
        "fuse",
        "DumasMatcher",
        "transform_sources",
        "DuplicateDetector",
        "parse_query",
        "__version__",
    ]
)

CONFIG_EXPORTS = sorted(
    [
        "PREPARE_MODES",
        "MatchingConfig",
        "DedupConfig",
        "PrepareConfig",
        "ResolutionConfig",
        "FusionConfig",
        "load_config_data",
    ]
)

SESSION_EXPORTS = sorted(
    ["SESSION_STEPS", "SNAPSHOT_VERSION", "StageEvent", "ProgressEvent", "FusionSession"]
)

GRAPHCLUSTER_EXPORTS = sorted(
    [
        "ClusteringStrategy",
        "ClusteringSpec",
        "ClusteringReport",
        "ClusteringResult",
        "ScoredEdge",
        "TransitiveClustering",
        "GraphClustering",
        "BicliqueClustering",
        "CLUSTERING_STRATEGIES",
        "resolve_clustering",
    ]
)


def parameters(callable_object):
    """Ordered parameter names of *callable_object* (self included)."""
    return list(inspect.signature(callable_object).parameters)


# Parameter-name snapshots of the API's load-bearing callables.  Names and
# order are the contract (keyword call sites and positional call sites both
# break when these drift); defaults and annotations are free to evolve.
SIGNATURES = {
    "HumMer.__init__": ["self", "matcher", "detector", "registry", "config"],
    "HumMer.register": ["self", "alias", "source", "description", "replace", "prepare"],
    "HumMer.fuse": ["self", "aliases", "resolutions", "metadata"],
    "HumMer.session": ["self", "aliases", "resolutions", "metadata"],
    "HumMer.enable_prepare": ["self", "mode"],
    "HumMer.restore_session": ["self", "snapshot"],
    "FusionPipeline.__init__": [
        "self", "catalog", "matcher", "detector", "registry",
        "use_name_fallback", "prepare", "config",
    ],
    "FusionPipeline.run": ["self", "aliases", "spec", "metadata"],
    "FusionPipeline.session": [
        "self", "aliases", "spec", "metadata", "skip_detection",
        "skip_conflicts", "transform_filter",
    ],
    "FusionSession.__init__": [
        "self", "pipeline", "aliases", "spec", "metadata",
        "skip_detection", "skip_conflicts", "transform_filter",
    ],
    "FusionSession.advance": ["self"],
    "FusionSession.advance_to": ["self", "step"],
    "FusionSession.run": ["self"],
    "FusionSession.subscribe": ["self", "listener"],
    "FusionSession.subscribe_progress": ["self", "listener"],
    "FusionSession.apply_duplicate_decisions": ["self"],
    "FusionSession.to_dict": ["self"],
    "FusionSession.from_dict": ["pipeline", "data"],
    "FusionConfig.from_dict": ["data"],
    "FusionConfig.from_json": ["text"],
    "FusionConfig.from_file": ["path"],
    "FusionConfig.from_cli_args": ["args", "base"],
    "FusionConfig.merged": ["self", "overrides"],
    "FusionConfig.to_dict": ["self"],
    "FusionConfig.to_json": ["self", "indent"],
    "DuplicateDetector.__init__": [
        "self", "threshold", "uncertainty_band", "use_filter",
        "cross_source_only", "selection", "accept_unsure", "keep_evidence",
        "blocking", "clustering", "executor",
    ],
    "DuplicateDetector.with_overrides": ["self", "overrides"],
}

OWNERS = {
    "HumMer": HumMer,
    "FusionPipeline": FusionPipeline,
    "FusionSession": FusionSession,
    "FusionConfig": FusionConfig,
    "DuplicateDetector": DuplicateDetector,
}


class TestExportedNames:
    def test_repro_all(self):
        assert sorted(repro.__all__) == REPRO_EXPORTS

    def test_repro_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_config_all(self):
        assert sorted(repro.config.__all__) == CONFIG_EXPORTS

    def test_session_all(self):
        assert sorted(repro.core.session.__all__) == SESSION_EXPORTS

    def test_graphcluster_all(self):
        assert sorted(repro.dedup.graphcluster.__all__) == GRAPHCLUSTER_EXPORTS

    def test_graphcluster_exports_resolve(self):
        for name in repro.dedup.graphcluster.__all__:
            assert hasattr(repro.dedup.graphcluster, name), name

    def test_session_steps_are_stable(self):
        assert repro.core.session.SESSION_STEPS == (
            "choose_sources",
            "prepare",
            "schema_matching",
            "attribute_selection",
            "duplicate_detection",
            "conflict_resolution",
            "fusion",
        )


class TestSignatures:
    @pytest.mark.parametrize("qualified_name", sorted(SIGNATURES))
    def test_parameter_names(self, qualified_name):
        owner_name, _, attribute = qualified_name.partition(".")
        target = getattr(OWNERS[owner_name], attribute)
        assert parameters(target) == SIGNATURES[qualified_name], (
            f"{qualified_name} drifted; if intentional, update the snapshot"
        )


class TestRetiredShims:
    """The pre-config kwarg spellings of ISSUE 5 are gone, not tolerated.

    A shim that quietly comes back (e.g. via a rebased branch restoring
    ``**kwargs`` absorption) would re-open the dual surface this redesign
    closed, so each legacy spelling is pinned to ``TypeError``.
    """

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duplicate_threshold": 0.8},
            {"blocking": "snm"},
            {"executor": "multiprocess"},
            {"prepare": "lazy"},
            {"artifact_dir": "/tmp/nowhere"},
        ],
        ids=lambda kwargs: next(iter(kwargs)),
    )
    def test_hummer_legacy_kwargs_rejected(self, kwargs):
        with pytest.raises(TypeError):
            HumMer(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"blocking": "snm"},
            {"executor": "serial"},
            {"adjust_matching": lambda m: None},
            {"adjust_selection": lambda s: None},
            {"adjust_duplicates": lambda d: None},
        ],
        ids=lambda kwargs: next(iter(kwargs)),
    )
    def test_pipeline_legacy_kwargs_rejected(self, catalog, kwargs):
        with pytest.raises(TypeError):
            FusionPipeline(catalog, **kwargs)

    def test_register_prepare_no_longer_promotes(self, catalog):
        """``register(prepare=...)`` without an instance mode is an error."""
        hummer = HumMer()
        with pytest.raises(ConfigError, match="enable_prepare"):
            hummer.register(
                "EE_Students", catalog.fetch("EE_Students"), prepare="lazy"
            )
        assert hummer.prepare_mode is None

    def test_prepare_call_no_longer_promotes(self, catalog):
        hummer = HumMer()
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        with pytest.raises(ConfigError, match="enable_prepare"):
            hummer.prepare()
        assert hummer.prepare_mode is None

    def test_config_spelling_still_works(self, catalog):
        config = FusionConfig(
            dedup=DedupConfig(blocking="snm", threshold=0.7),
            prepare=PrepareConfig(mode="lazy"),
        )
        hummer = HumMer(config=config)
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        hummer.register("CS_Students", catalog.fetch("CS_Students"))
        result = hummer.fuse(["EE_Students", "CS_Students"])
        assert result.detection.cluster_count == 5
