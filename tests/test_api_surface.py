"""Public-API snapshot tests (ISSUE 5 satellite).

Asserts the exported names of ``repro``, ``repro.config`` and
``repro.core.session`` plus the parameter lists of the load-bearing
callables, so an accidental surface break (renamed kwarg, dropped export,
reordered required parameter) fails fast in CI rather than surfacing in a
downstream consumer.  Asserts too that the one-release deprecation shims
actually warn — a shim that silently stops warning (or stops working) is
itself a surface break.

When a surface change is *intentional*, update the snapshots here in the
same commit and call the change out in the PR.
"""

import inspect
import warnings

import pytest

import repro
import repro.config
import repro.core.session
from repro.config import DedupConfig, FusionConfig
from repro.core.pipeline import FusionPipeline
from repro.core.session import FusionSession
from repro.dedup.detector import DuplicateDetector
from repro.hummer import HumMer

# --------------------------------------------------------------------------
# exported names
# --------------------------------------------------------------------------

REPRO_EXPORTS = sorted(
    [
        "HumMer",
        "FusionConfig",
        "MatchingConfig",
        "DedupConfig",
        "PrepareConfig",
        "ResolutionConfig",
        "FusionSession",
        "StageEvent",
        "ProgressEvent",
        "Catalog",
        "Column",
        "DataType",
        "Relation",
        "Schema",
        "FusionPipeline",
        "FusionResult",
        "FusionSpec",
        "PipelineResult",
        "ResolutionContext",
        "ResolutionFunction",
        "ResolutionSpec",
        "default_registry",
        "fuse",
        "DumasMatcher",
        "transform_sources",
        "DuplicateDetector",
        "parse_query",
        "__version__",
    ]
)

CONFIG_EXPORTS = sorted(
    [
        "PREPARE_MODES",
        "MatchingConfig",
        "DedupConfig",
        "PrepareConfig",
        "ResolutionConfig",
        "FusionConfig",
        "load_config_data",
    ]
)

SESSION_EXPORTS = sorted(
    ["SESSION_STEPS", "StageEvent", "ProgressEvent", "FusionSession"]
)


def parameters(callable_object):
    """Ordered parameter names of *callable_object* (self included)."""
    return list(inspect.signature(callable_object).parameters)


# Parameter-name snapshots of the API's load-bearing callables.  Names and
# order are the contract (keyword call sites and positional call sites both
# break when these drift); defaults and annotations are free to evolve.
SIGNATURES = {
    "HumMer.__init__": [
        "self", "duplicate_threshold", "matcher", "detector", "registry",
        "blocking", "executor", "prepare", "artifact_dir", "config",
    ],
    "HumMer.register": ["self", "alias", "source", "description", "replace", "prepare"],
    "HumMer.fuse": ["self", "aliases", "resolutions", "metadata"],
    "HumMer.session": ["self", "aliases", "resolutions", "metadata"],
    "HumMer.enable_prepare": ["self", "mode"],
    "FusionPipeline.__init__": [
        "self", "catalog", "matcher", "detector", "registry",
        "use_name_fallback", "blocking", "executor", "prepare",
        "adjust_matching", "adjust_selection", "adjust_duplicates", "config",
    ],
    "FusionPipeline.run": ["self", "aliases", "spec", "metadata"],
    "FusionPipeline.session": [
        "self", "aliases", "spec", "metadata", "skip_detection",
        "skip_conflicts", "transform_filter",
    ],
    "FusionSession.__init__": [
        "self", "pipeline", "aliases", "spec", "metadata",
        "skip_detection", "skip_conflicts", "transform_filter",
    ],
    "FusionSession.advance": ["self"],
    "FusionSession.advance_to": ["self", "step"],
    "FusionSession.run": ["self"],
    "FusionSession.subscribe": ["self", "listener"],
    "FusionSession.subscribe_progress": ["self", "listener"],
    "FusionSession.apply_duplicate_decisions": ["self"],
    "FusionConfig.from_dict": ["data"],
    "FusionConfig.from_json": ["text"],
    "FusionConfig.from_file": ["path"],
    "FusionConfig.from_cli_args": ["args", "base"],
    "FusionConfig.merged": ["self", "overrides"],
    "FusionConfig.to_dict": ["self"],
    "FusionConfig.to_json": ["self", "indent"],
    "DuplicateDetector.__init__": [
        "self", "threshold", "uncertainty_band", "use_filter",
        "cross_source_only", "selection", "accept_unsure", "keep_evidence",
        "blocking", "executor",
    ],
    "DuplicateDetector.with_overrides": ["self", "overrides"],
}

OWNERS = {
    "HumMer": HumMer,
    "FusionPipeline": FusionPipeline,
    "FusionSession": FusionSession,
    "FusionConfig": FusionConfig,
    "DuplicateDetector": DuplicateDetector,
}


class TestExportedNames:
    def test_repro_all(self):
        assert sorted(repro.__all__) == REPRO_EXPORTS

    def test_repro_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_config_all(self):
        assert sorted(repro.config.__all__) == CONFIG_EXPORTS

    def test_session_all(self):
        assert sorted(repro.core.session.__all__) == SESSION_EXPORTS

    def test_session_steps_are_stable(self):
        assert repro.core.session.SESSION_STEPS == (
            "choose_sources",
            "prepare",
            "schema_matching",
            "attribute_selection",
            "duplicate_detection",
            "conflict_resolution",
            "fusion",
        )


class TestSignatures:
    @pytest.mark.parametrize("qualified_name", sorted(SIGNATURES))
    def test_parameter_names(self, qualified_name):
        owner_name, _, attribute = qualified_name.partition(".")
        target = getattr(OWNERS[owner_name], attribute)
        assert parameters(target) == SIGNATURES[qualified_name], (
            f"{qualified_name} drifted; if intentional, update the snapshot"
        )


class TestDeprecationShims:
    """Every pre-config kwarg spelling still works — and warns."""

    def _fresh(self, catalog):
        hummer = HumMer()
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        return hummer

    def test_hummer_duplicate_threshold(self):
        with pytest.warns(DeprecationWarning, match="duplicate_threshold"):
            hummer = HumMer(duplicate_threshold=0.8)
        assert hummer.detector.threshold == 0.8

    def test_hummer_blocking_name(self):
        with pytest.warns(DeprecationWarning, match="blocking"):
            hummer = HumMer(blocking="snm")
        assert hummer.detector.blocking.name == "snm"
        assert hummer.config.dedup.blocking == "snm"

    def test_hummer_blocking_instance(self):
        from repro.dedup.blocking import TokenBlocking

        strategy = TokenBlocking(max_block_size=10)
        with pytest.warns(DeprecationWarning, match="blocking"):
            hummer = HumMer(blocking=strategy)
        assert hummer.detector.blocking is strategy

    def test_hummer_executor(self):
        with pytest.warns(DeprecationWarning, match="executor"):
            hummer = HumMer(executor="multiprocess")
        assert hummer.detector.executor.name == "multiprocess"

    def test_hummer_prepare_and_artifact_dir(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="prepare"):
            hummer = HumMer(prepare="lazy")
        assert hummer.prepare_mode == "lazy"
        with pytest.warns(DeprecationWarning, match="artifact_dir"):
            hummer = HumMer(artifact_dir=str(tmp_path))
        assert hummer.config.prepare.artifact_dir == str(tmp_path)

    def test_pipeline_adjust_hooks(self, catalog):
        with pytest.warns(DeprecationWarning, match="adjust_selection"):
            pipeline = FusionPipeline(catalog, adjust_selection=lambda s: None)
        assert pipeline.adjust_selection is not None

    def test_pipeline_blocking_and_executor(self, catalog):
        with pytest.warns(DeprecationWarning, match="blocking"):
            FusionPipeline(catalog, blocking="snm")
        with pytest.warns(DeprecationWarning, match="executor"):
            FusionPipeline(catalog, executor="serial")

    def test_hummer_pipeline_hook_override(self, catalog):
        hummer = self._fresh(catalog)
        with pytest.warns(DeprecationWarning, match="adjust_matching"):
            hummer.pipeline(adjust_matching=lambda m: None)

    def test_implicit_register_prepare_promotion(self, catalog):
        hummer = self._fresh(catalog)
        with pytest.warns(DeprecationWarning, match="implicitly enables"):
            hummer.register(
                "CS_Students", catalog.fetch("CS_Students"), prepare="lazy"
            )
        assert hummer.prepare_mode == "lazy"

    def test_implicit_prepare_call_promotion(self, catalog):
        hummer = self._fresh(catalog)
        with pytest.warns(DeprecationWarning, match="implicitly switches"):
            hummer.prepare()
        assert hummer.prepare_mode == "lazy"

    def test_explicit_enable_prepare_does_not_warn(self, catalog):
        hummer = self._fresh(catalog)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            hummer.enable_prepare("lazy")
            hummer.register(
                "CS_Students", catalog.fetch("CS_Students"), prepare="lazy"
            )
        assert hummer.prepare_mode == "lazy"

    def test_config_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            HumMer(config=FusionConfig(dedup=DedupConfig(blocking="snm", workers=2)))

    def test_deprecated_kwargs_still_produce_working_instances(self, catalog):
        with pytest.warns(DeprecationWarning):
            hummer = HumMer(blocking="snm", executor="serial", duplicate_threshold=0.7)
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        hummer.register("CS_Students", catalog.fetch("CS_Students"))
        result = hummer.fuse(["EE_Students", "CS_Students"])
        assert result.detection.cluster_count == 5
