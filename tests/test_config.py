"""Tests for the declarative config tree (``repro.config``).

Covers the ISSUE 5 satellite: lossless round-tripping
(``FusionConfig.from_dict(cfg.to_dict()) == cfg``), CLI-flag ↔ config-file
parity on ``fuse``/``demo`` (see ``tests/test_cli.py``), and the
construction-time validation that replaced the scattered ``ValueError``\\ s.
"""

import json

import pytest

from repro.config import (
    DedupConfig,
    FusionConfig,
    MatchingConfig,
    PrepareConfig,
    ResolutionConfig,
)
from repro.dedup.blocking import SortedNeighborhoodBlocking, UnionBlocking
from repro.dedup.executor import MultiprocessExecutor, SerialExecutor
from repro.dedup.graphcluster import BicliqueClustering, GraphClustering
from repro.exceptions import ConfigError, HummerError


def full_config() -> FusionConfig:
    """A tree with every section away from its defaults."""
    return FusionConfig(
        matching=MatchingConfig(
            max_seeds=7,
            min_seed_similarity=0.3,
            correspondence_threshold=0.4,
            use_name_fallback=False,
        ),
        dedup=DedupConfig(
            threshold=0.8,
            uncertainty_band=0.05,
            cross_source_only=True,
            keep_evidence=True,
            blocking="snm",
            blocking_options={"window": 6},
            clustering="graph",
            clustering_options={"min_cohesion": 0.5},
            workers=2,
            chunk_size=64,
        ),
        prepare=PrepareConfig(mode="lazy", artifact_dir="/tmp/artifacts"),
        resolution=ResolutionConfig(
            resolutions={"Age": "max", "Label": ("choose", ("shop",))},
            key_columns=("Name",),
        ),
    )


class TestRoundTrip:
    def test_default_tree_round_trips(self):
        config = FusionConfig()
        assert FusionConfig.from_dict(config.to_dict()) == config

    def test_full_tree_round_trips(self):
        config = full_config()
        assert FusionConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = full_config()
        assert FusionConfig.from_json(config.to_json()) == config

    def test_to_dict_is_json_serialisable(self):
        json.dumps(full_config().to_dict())

    def test_from_file(self, tmp_path):
        path = tmp_path / "fusion.json"
        path.write_text(full_config().to_json())
        assert FusionConfig.from_file(path) == full_config()

    def test_sections_may_be_omitted(self):
        config = FusionConfig.from_dict({"dedup": {"threshold": 0.9}})
        assert config.dedup.threshold == 0.9
        assert config.matching == MatchingConfig()


class TestMerged:
    def test_merged_changes_only_mentioned_fields(self):
        config = full_config()
        derived = config.merged({"dedup": {"threshold": 0.6}})
        assert derived.dedup.threshold == 0.6
        assert derived.dedup.blocking == "snm"
        assert derived.matching == config.matching

    def test_merged_does_not_mutate_the_original(self):
        config = full_config()
        config.merged({"prepare": {"mode": "eager"}})
        assert config.prepare.mode == "lazy"

    def test_merged_validates(self):
        with pytest.raises(ConfigError):
            full_config().merged({"dedup": {"threshold": 1.5}})

    def test_merged_rejects_unknown_section(self):
        with pytest.raises(ConfigError, match="unknown config section"):
            full_config().merged({"dedupe": {}})


class TestValidation:
    def test_config_error_is_a_value_error_and_hummer_error(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, HummerError)

    def test_bad_blocking_name(self):
        with pytest.raises(ConfigError, match="unknown blocking strategy"):
            DedupConfig(blocking="sorted")

    def test_bad_blocking_option(self):
        with pytest.raises(ConfigError):
            DedupConfig(blocking="snm", blocking_options={"windowsill": 4})

    def test_blocking_options_need_a_strategy(self):
        with pytest.raises(ConfigError, match="blocking_options"):
            DedupConfig(blocking_options={"window": 4})

    def test_bad_clustering_name(self):
        with pytest.raises(ConfigError, match="unknown clustering strategy"):
            DedupConfig(clustering="louvain")

    def test_bad_clustering_option(self):
        with pytest.raises(ConfigError):
            DedupConfig(clustering="graph", clustering_options={"cohesion": 0.5})

    def test_clustering_options_need_a_strategy(self):
        with pytest.raises(ConfigError, match="clustering_options"):
            DedupConfig(clustering_options={"min_cohesion": 0.5})

    def test_clustering_instance_rejected_in_the_tree(self):
        with pytest.raises(ConfigError, match="strategy name"):
            DedupConfig(clustering=GraphClustering())

    def test_bad_executor_name(self):
        with pytest.raises(ConfigError, match="unknown scoring executor"):
            DedupConfig(executor="threads")

    def test_negative_workers(self):
        with pytest.raises(ConfigError, match="workers must be at least 1"):
            DedupConfig(workers=-2)

    def test_chunk_size_needs_parallel_workers(self):
        with pytest.raises(ConfigError, match="chunk_size"):
            DedupConfig(chunk_size=32)
        with pytest.raises(ConfigError, match="chunk_size"):
            DedupConfig(workers=1, chunk_size=32)

    def test_workers_exclusive_with_executor_name(self):
        with pytest.raises(ConfigError, match="workers cannot be combined"):
            DedupConfig(executor="serial", workers=4)

    def test_threshold_range(self):
        with pytest.raises(ConfigError, match=r"threshold must lie in \[0, 1\]"):
            DedupConfig(threshold=1.2)

    def test_unknown_prepare_mode(self):
        with pytest.raises(ConfigError, match="unknown prepare mode"):
            PrepareConfig(mode="sometimes")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown DedupConfig field"):
            FusionConfig.from_dict({"dedup": {"treshold": 0.8}})

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError, match="unknown config section"):
            FusionConfig.from_dict({"blocking": "snm"})

    def test_matching_ranges(self):
        with pytest.raises(ConfigError):
            MatchingConfig(max_seeds=0)
        with pytest.raises(ConfigError):
            MatchingConfig(min_seed_similarity=-0.1)

    def test_instances_are_rejected_in_the_tree(self):
        with pytest.raises(ConfigError, match="strategy name"):
            DedupConfig(blocking=SortedNeighborhoodBlocking())

    def test_bad_resolution_shape(self):
        with pytest.raises(ConfigError, match="resolution for column"):
            ResolutionConfig(resolutions={"Age": 3})


class TestBuilders:
    def test_build_blocking(self):
        strategy = DedupConfig(blocking="snm", blocking_options={"window": 6}).build_blocking()
        assert isinstance(strategy, SortedNeighborhoodBlocking)
        assert strategy.window == 6

    def test_build_union_blocking(self):
        strategy = DedupConfig(blocking="union:snm+token").build_blocking()
        assert isinstance(strategy, UnionBlocking)

    def test_build_clustering(self):
        strategy = DedupConfig(
            clustering="biclique", clustering_options={"max_component_size": 32}
        ).build_clustering()
        assert isinstance(strategy, BicliqueClustering)
        assert strategy.max_component_size == 32

    def test_build_executor_from_workers(self):
        assert isinstance(DedupConfig().build_executor(), SerialExecutor)
        executor = DedupConfig(workers=3, chunk_size=16).build_executor()
        assert isinstance(executor, MultiprocessExecutor)
        assert executor.workers == 3
        assert executor.chunk_size == 16

    def test_build_executor_from_name(self):
        assert isinstance(
            DedupConfig(executor="multiprocess").build_executor(),
            MultiprocessExecutor,
        )

    def test_build_detector_carries_every_field(self):
        config = full_config().dedup
        detector = config.build_detector()
        assert detector.threshold == 0.8
        assert detector.uncertainty_band == 0.05
        assert detector.cross_source_only is True
        assert detector.keep_evidence is True
        assert isinstance(detector.blocking, SortedNeighborhoodBlocking)
        assert isinstance(detector.clustering, GraphClustering)
        assert detector.clustering.min_cohesion == 0.5
        assert isinstance(detector.executor, MultiprocessExecutor)

    def test_build_matcher(self):
        matcher = full_config().matching.build_matcher()
        assert matcher.max_seeds == 7
        assert matcher.seeder.min_similarity == 0.3

    def test_resolution_build_spec(self):
        spec = full_config().resolution.build_spec()
        assert spec.key_columns == ["Name"]
        functions = {r.column: r.function for r in spec.resolutions}
        assert functions["Age"] == "max"
        assert functions["Label"] == ("choose", ("shop",))

    def test_empty_resolution_builds_no_spec(self):
        assert ResolutionConfig().build_spec() is None


class TestFromCliArgs:
    def _args(self, **kwargs):
        import argparse

        return argparse.Namespace(**kwargs)

    def test_unset_flags_leave_the_base_alone(self):
        base = full_config()
        config = FusionConfig.from_cli_args(self._args(), base=base)
        assert config == base

    def test_flags_override_the_base(self):
        base = full_config()
        args = self._args(
            threshold=0.65,
            blocking="token",
            token_max_block=20,
            snm_window=None,
            workers=None,
            chunk_size=None,
            prepare=False,
            artifact_dir=None,
        )
        config = FusionConfig.from_cli_args(args, base=base)
        assert config.dedup.threshold == 0.65
        assert config.dedup.blocking == "token"
        assert config.dedup.blocking_options == {"max_block_size": 20}
        assert config.prepare == base.prepare

    def test_clustering_flag_overrides_the_base(self):
        base = full_config()
        config = FusionConfig.from_cli_args(self._args(clustering="biclique"), base=base)
        assert config.dedup.clustering == "biclique"
        # a strategy change invalidates the base's options wholesale
        assert config.dedup.clustering_options == {}

    def test_clustering_flag_same_strategy_keeps_options(self):
        base = full_config()
        config = FusionConfig.from_cli_args(self._args(clustering="graph"), base=base)
        assert config.dedup.clustering == "graph"
        assert config.dedup.clustering_options == {"min_cohesion": 0.5}

    def test_workers_flag_replaces_config_file_executor(self):
        base = FusionConfig(dedup=DedupConfig(executor="multiprocess"))
        config = FusionConfig.from_cli_args(self._args(workers=2), base=base)
        assert config.dedup.executor is None
        assert config.dedup.workers == 2

    def test_option_flags_require_their_strategy(self):
        with pytest.raises(ConfigError, match="--snm-window"):
            FusionConfig.from_cli_args(self._args(blocking="token", snm_window=4))
        with pytest.raises(ConfigError, match="--token-max-block"):
            FusionConfig.from_cli_args(self._args(blocking="snm", token_max_block=4))
        with pytest.raises(ConfigError, match="--chunk-size"):
            FusionConfig.from_cli_args(self._args(chunk_size=4))

    def test_artifact_dir_implies_lazy_prepare(self):
        config = FusionConfig.from_cli_args(self._args(artifact_dir="/tmp/x"))
        assert config.prepare.mode == "lazy"
        assert config.prepare.artifact_dir == "/tmp/x"

    def test_option_flags_compose_with_a_base_strategy(self):
        """`--snm-window 6` works when the config *file* set blocking snm."""
        base = FusionConfig(dedup=DedupConfig(blocking="snm"))
        config = FusionConfig.from_cli_args(self._args(snm_window=6), base=base)
        assert config.dedup.blocking == "snm"
        assert config.dedup.blocking_options == {"window": 6}

    def test_option_flags_overlay_base_options_for_the_same_strategy(self):
        base = FusionConfig(
            dedup=DedupConfig(blocking="snm", blocking_options={"window": 4})
        )
        same = FusionConfig.from_cli_args(self._args(blocking="snm", snm_window=8), base=base)
        assert same.dedup.blocking_options == {"window": 8}
        # a strategy *change* drops the stale options instead of passing
        # snm's window to token blocking
        changed = FusionConfig.from_cli_args(self._args(blocking="token"), base=base)
        assert changed.dedup.blocking == "token"
        assert changed.dedup.blocking_options == {}

    def test_chunk_size_flag_composes_with_base_workers(self):
        base = FusionConfig(dedup=DedupConfig(workers=4))
        config = FusionConfig.from_cli_args(self._args(chunk_size=500), base=base)
        assert config.dedup.workers == 4
        assert config.dedup.chunk_size == 500

    def test_workers_flag_keeps_the_base_chunk_size(self):
        base = FusionConfig(dedup=DedupConfig(workers=4, chunk_size=500))
        config = FusionConfig.from_cli_args(self._args(workers=8), base=base)
        assert config.dedup.workers == 8
        assert config.dedup.chunk_size == 500

    def test_serial_workers_flag_drops_the_base_chunk_size(self):
        base = FusionConfig(dedup=DedupConfig(workers=4, chunk_size=500))
        config = FusionConfig.from_cli_args(self._args(workers=1), base=base)
        assert config.dedup.workers == 1
        assert config.dedup.chunk_size is None
