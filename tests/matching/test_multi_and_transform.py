"""Tests for multi-relation matching and the data-transformation step."""

import pytest

from repro.baselines.name_matcher import NameBasedMatcher
from repro.engine.relation import Relation
from repro.matching.correspondences import Correspondence, CorrespondenceSet
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import (
    SOURCE_ID_COLUMN,
    add_source_id,
    apply_correspondences,
    transform_sources,
)


class TestMultiMatcher:
    def test_two_relations(self, ee_students, cs_students):
        result = MultiMatcher().match([ee_students, cs_students])
        assert result.preferred == "EE_Students"
        assert len(result.correspondences) >= 2

    def test_three_relations(self, small_cds_dataset):
        sources = small_cds_dataset.source_list
        result = MultiMatcher().match(sources)
        # every non-preferred relation contributed correspondences
        assert set(result.per_relation) == {s.name for s in sources[1:]}

    def test_single_relation(self, ee_students):
        result = MultiMatcher().match([ee_students])
        assert len(result.correspondences) == 0

    def test_requires_input(self):
        with pytest.raises(ValueError):
            MultiMatcher().match([])

    def test_fallback_used_when_instances_do_not_overlap(self, ee_students):
        disjoint = Relation.from_dicts(
            [{"Name": "Zora Quux", "Age": 99, "Major": "Alchemy"}], name="Other"
        )
        without_fallback = MultiMatcher(DumasMatcher())
        assert without_fallback.match([ee_students, disjoint]).failed_relations == ["Other"]
        with_fallback = MultiMatcher(DumasMatcher(), fallback=NameBasedMatcher())
        result = with_fallback.match([ee_students, disjoint])
        assert result.failed_relations == []
        assert len(result.correspondences) >= 2

    def test_rename_mapping_for_relation(self, ee_students, cs_students):
        result = MultiMatcher().match([ee_students, cs_students])
        mapping = result.rename_mapping("CS_Students")
        assert mapping.get("StudentName") == "Name"


class TestTransform:
    def test_add_source_id(self, ee_students):
        tagged = add_source_id(ee_students)
        assert tagged.column(SOURCE_ID_COLUMN) == ["EE_Students"] * len(ee_students)

    def test_add_source_id_idempotent(self, ee_students):
        tagged = add_source_id(add_source_id(ee_students))
        assert tagged.column_names.count(SOURCE_ID_COLUMN) == 1

    def test_apply_correspondences_renames_non_preferred(self, cs_students):
        correspondences = CorrespondenceSet(
            [Correspondence("EE_Students", "Name", "CS_Students", "StudentName", 0.9)]
        )
        renamed = apply_correspondences(cs_students, correspondences, "EE_Students")
        assert "Name" in renamed.schema
        assert "StudentName" not in renamed.schema

    def test_apply_correspondences_keeps_preferred_untouched(self, ee_students):
        correspondences = CorrespondenceSet(
            [Correspondence("EE_Students", "Name", "CS_Students", "StudentName", 0.9)]
        )
        assert apply_correspondences(ee_students, correspondences, "EE_Students") is ee_students

    def test_apply_correspondences_avoids_collisions(self):
        relation = Relation.from_dicts([{"title": "a", "name": "b"}], name="R")
        correspondences = CorrespondenceSet(
            [Correspondence("P", "name", "R", "title", 0.9)]
        )
        renamed = apply_correspondences(relation, correspondences, "P")
        # renaming title->name would collide with the existing name column
        assert set(renamed.column_names) == {"title", "name"}

    def test_transform_sources_produces_outer_union_with_source_ids(
        self, ee_students, cs_students
    ):
        correspondences = CorrespondenceSet(
            [
                Correspondence("EE_Students", "Name", "CS_Students", "StudentName", 1.0),
                Correspondence("EE_Students", "Age", "CS_Students", "Years", 0.9),
                Correspondence("EE_Students", "Major", "CS_Students", "Field", 0.9),
                Correspondence("EE_Students", "Email", "CS_Students", "Mail", 0.9),
            ]
        )
        combined = transform_sources([ee_students, cs_students], correspondences)
        assert len(combined) == len(ee_students) + len(cs_students)
        assert set(combined.column_names) == {
            "Name", "Age", "Major", "Email", SOURCE_ID_COLUMN,
        }
        assert set(combined.column(SOURCE_ID_COLUMN)) == {"EE_Students", "CS_Students"}

    def test_transform_sources_without_correspondences_pads_with_nulls(
        self, ee_students, cs_students
    ):
        combined = transform_sources([ee_students, cs_students], CorrespondenceSet())
        # un-aligned: both schemata side by side
        assert "StudentName" in combined.schema
        assert combined.cell(0, "StudentName") is None

    def test_transform_requires_input(self):
        with pytest.raises(ValueError):
            transform_sources([], CorrespondenceSet())
