"""Prepared-vs-fresh DUMAS matching parity (ISSUE 6 tentpole).

The prepared path replaces the per-pair field-corpus refit with a merge of
per-source :class:`FieldCorpusArtifact` counts.  The merge is designed to be
*bit-identical* — counts add and per-term IDF is a pure function of them —
so these tests assert exact equality, never ``approx``: the moment the warm
path drifts by one ulp from the cold path, preparing changes results, and
that is a bug.
"""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.matching.dumas import DumasMatcher
from repro.prepare import FIELD_KIND, SourcePreparer, build_field_corpus
from repro.similarity.soft_tfidf import SoftTfIdfSimilarity
from repro.similarity.tfidf import TfIdfVectorizer


def matching_fingerprint(result):
    """Everything observable about a MatchingResult, exact floats included."""
    return (
        [
            (c.left_attribute, c.right_attribute, c.score, c.origin)
            for c in result.correspondences
        ],
        [(s.left_index, s.right_index, s.similarity) for s in result.seeds],
        result.matrix.left_attributes,
        result.matrix.right_attributes,
        result.matrix.scores.tolist(),
    )


def field_corpus_of(*relations):
    """The cold path's corpus: every non-null cell string, in row order."""
    from repro.engine.types import is_null

    corpus = []
    for relation in relations:
        for values in relation.rows:
            corpus.extend(str(value) for value in values if not is_null(value))
    return corpus


class TestPreparedMatchingParity:
    def test_prepared_match_is_bit_identical_on_golden_tables(self, catalog):
        # bundle_for keys on object identity, so match the relations the
        # preparer saw: the catalog's memoised fetch results
        left = catalog.fetch("EE_Students")
        right = catalog.fetch("CS_Students")
        fresh = DumasMatcher().match(left, right)

        prepared = SourcePreparer(catalog).prepare(["EE_Students", "CS_Students"])
        assert prepared.field_corpus(left, right) is not None
        matcher = DumasMatcher()
        with prepared.matching(matcher), prepared.seeding(matcher.seeder):
            warm = matcher.match(left, right)

        assert matching_fingerprint(warm) == matching_fingerprint(fresh)

    def test_prepared_match_is_bit_identical_on_generated_dataset(
        self, small_students_dataset
    ):
        catalog = Catalog()
        for alias, relation in small_students_dataset.sources.items():
            catalog.register(alias, relation)
        aliases = list(small_students_dataset.sources)
        left = catalog.fetch(aliases[0])
        right = catalog.fetch(aliases[1])

        fresh = DumasMatcher().match(left, right)
        prepared = SourcePreparer(catalog).prepare(aliases)
        assert prepared.field_corpus(left, right) is not None
        matcher = DumasMatcher()
        with prepared.matching(matcher), prepared.seeding(matcher.seeder):
            warm = matcher.match(left, right)

        assert matching_fingerprint(warm) == matching_fingerprint(fresh)

    def test_warm_prepare_rebuilds_zero_field_corpora(self, catalog):
        aliases = ["EE_Students", "CS_Students"]
        preparer = SourcePreparer(catalog)
        cold = preparer.prepare(aliases)
        assert cold.counters.as_dict()["rebuilt_by_kind"][FIELD_KIND] == len(aliases)

        warm = preparer.prepare(aliases)
        counters = warm.counters.as_dict()
        assert counters["rebuilt_by_kind"].get(FIELD_KIND, 0) == 0
        assert counters["reused_by_kind"][FIELD_KIND] == len(aliases)

    def test_warm_match_uses_artifacts_not_cells(self, catalog, monkeypatch):
        """The warm path must never re-tokenise cell values into a corpus."""
        left = catalog.fetch("EE_Students")
        right = catalog.fetch("CS_Students")
        prepared = SourcePreparer(catalog).prepare(["EE_Students", "CS_Students"])
        matcher = DumasMatcher()

        import repro.matching.dumas as dumas_module

        def forbidden(*args, **kwargs):
            raise AssertionError("warm match rebuilt the field corpus cold")

        # the cold fallback constructs SoftTfIdfSimilarity(corpus=...); the
        # warm path constructs it bare and calls fit_counts
        original = dumas_module.SoftTfIdfSimilarity

        class Guarded(original):
            def __init__(self, corpus=None, **kwargs):
                if corpus is not None:
                    forbidden()
                super().__init__(corpus=corpus, **kwargs)

        monkeypatch.setattr(dumas_module, "SoftTfIdfSimilarity", Guarded)
        with prepared.matching(matcher), prepared.seeding(matcher.seeder):
            result = matcher.match(left, right)
        assert result.correspondences

    def test_provider_is_restored_after_matching_context(self, catalog, ee_students):
        prepared = SourcePreparer(catalog).prepare(["EE_Students", "CS_Students"])
        matcher = DumasMatcher()
        assert matcher.field_corpus_provider is None
        with prepared.matching(matcher):
            assert matcher.field_corpus_provider is not None
        assert matcher.field_corpus_provider is None

    def test_provider_restored_even_when_match_raises(self, catalog):
        prepared = SourcePreparer(catalog).prepare(["EE_Students", "CS_Students"])
        matcher = DumasMatcher()
        with pytest.raises(RuntimeError):
            with prepared.matching(matcher):
                raise RuntimeError("boom")
        assert matcher.field_corpus_provider is None

    def test_non_dumas_matcher_is_left_untouched(self, catalog):
        prepared = SourcePreparer(catalog).prepare(["EE_Students", "CS_Students"])

        class CustomMatcher:
            pass

        custom = CustomMatcher()
        with prepared.matching(custom):
            assert not hasattr(custom, "field_corpus_provider")

    def test_foreign_relation_falls_back_to_cold(self, catalog):
        left = catalog.fetch("EE_Students")
        prepared = SourcePreparer(catalog).prepare(["EE_Students", "CS_Students"])
        foreign = Relation.from_dicts([{"a": "x"}], name="foreign")
        assert prepared.field_corpus(left, foreign) is None
        assert prepared.field_corpus(foreign, left) is None

        # the installed provider declines too, so the matcher builds cold
        matcher = DumasMatcher()
        with prepared.matching(matcher):
            assert matcher.field_corpus_provider(left, foreign) is None


class TestFieldCorpusMerge:
    def test_merged_counts_equal_fresh_fit(self, ee_students, cs_students):
        """fit_counts(merged per-source artifacts) == fit(concatenated corpus)."""
        left = build_field_corpus(ee_students)
        right = build_field_corpus(cs_students)
        merged_frequency = dict(left.document_frequency)
        for term, frequency in right.document_frequency.items():
            merged_frequency[term] = merged_frequency.get(term, 0) + frequency

        from_counts = TfIdfVectorizer().fit_counts(
            merged_frequency, left.document_count + right.document_count
        )
        from_corpus = TfIdfVectorizer().fit(field_corpus_of(ee_students, cs_students))

        assert from_counts.document_count == from_corpus.document_count
        assert from_counts.vocabulary == from_corpus.vocabulary
        for term in from_corpus.vocabulary:
            assert from_counts.idf(term) == from_corpus.idf(term)

    def test_artifact_counts_cells_not_rows(self, ee_students):
        artifact = build_field_corpus(ee_students)
        # 4 rows x 4 columns, no nulls: one document per non-null cell
        assert artifact.document_count == 16

    def test_merged_soft_tfidf_scores_are_bit_identical(self, ee_students, cs_students):
        left = build_field_corpus(ee_students)
        right = build_field_corpus(cs_students)
        merged_frequency = dict(left.document_frequency)
        for term, frequency in right.document_frequency.items():
            merged_frequency[term] = merged_frequency.get(term, 0) + frequency

        warm = SoftTfIdfSimilarity().fit_counts(
            merged_frequency, left.document_count + right.document_count
        )
        cold = SoftTfIdfSimilarity(corpus=field_corpus_of(ee_students, cs_students))
        for a, b in [
            ("Anna Schmidt", "Anna Schmidt"),
            ("Anna Schmidt", "Anna Schmitd"),
            ("Electrical Engineering", "Computer Science"),
            ("ben.mueller@hu-berlin.de", "ben.mueller@hu-berlin.de"),
            ("", "Anna"),
        ]:
            assert warm.compare(a, b) == cold.compare(a, b)


class TestSoftTfIdfUnfittedPath:
    """ISSUE 6 satellite: unfitted compare must not mutate the shared instance."""

    def test_compare_does_not_mutate_shared_vectorizer(self):
        measure = SoftTfIdfSimilarity()
        first = measure.compare("anna schmidt", "anna schmitd")
        # a comparison over a disjoint vocabulary must not disturb later scores
        measure.compare("totally different words here", "zzz qqq ppp")
        assert measure.compare("anna schmidt", "anna schmitd") == first
        assert measure.vectorizer.document_count == 0
        assert not measure._fitted

    def test_unfitted_compare_order_independence(self):
        pairs = [("alpha beta", "alpha bta"), ("gamma", "gamma delta")]
        forward = SoftTfIdfSimilarity()
        forward_scores = [forward.compare(a, b) for a, b in pairs]
        backward = SoftTfIdfSimilarity()
        backward_scores = [backward.compare(a, b) for a, b in reversed(pairs)]
        assert forward_scores == list(reversed(backward_scores))

    def test_empty_strings(self):
        measure = SoftTfIdfSimilarity()
        assert measure.compare("", "") == 1.0
        assert measure.compare("", "anna") == 0.0


class TestSecondaryCache:
    def test_cache_is_transparent(self, ee_students, cs_students):
        corpus = field_corpus_of(ee_students, cs_students)
        cached = SoftTfIdfSimilarity(corpus=corpus)
        uncached = SoftTfIdfSimilarity(corpus=corpus, secondary_cache_size=0)
        for a, b in [
            ("Anna Schmidt", "Anna Schmitd"),
            ("Ben Mueller", "Ben Muller"),
            ("Carla Weber", "Elena Wolf"),
        ]:
            assert cached.compare(a, b) == uncached.compare(a, b)
            # repeat: served from cache, still the same score
            assert cached.compare(a, b) == uncached.compare(a, b)

    def test_cache_respects_bound(self):
        measure = SoftTfIdfSimilarity(secondary_cache_size=4)
        measure.compare("alpha beta gamma delta", "aleph bet gimel dalet")
        measure.compare("one two three four five", "uno dos tres quatro")
        assert len(measure._secondary_cache) <= 4

    def test_cache_avoids_repeat_secondary_calls(self):
        calls = []

        def counting_secondary(left, right):
            calls.append((left, right))
            from repro.similarity.jaro import jaro_winkler_similarity

            return jaro_winkler_similarity(left, right)

        measure = SoftTfIdfSimilarity(secondary=counting_secondary)
        measure.compare("anna schmidt", "anna schmitd")
        first_round = len(calls)
        assert first_round > 0
        measure.compare("anna schmidt", "anna schmitd")
        assert len(calls) == first_round

    def test_disabled_cache_stays_empty(self):
        measure = SoftTfIdfSimilarity(secondary_cache_size=0)
        measure.compare("alpha beta", "aleph bet")
        assert measure._secondary_cache == {}
