"""Tests for the Hungarian maximum-weight matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.assignment import hungarian_max_weight, maximum_weight_matching


class TestHungarian:
    def test_identity_matrix_matches_diagonal(self):
        pairs = hungarian_max_weight(np.eye(3))
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 2)]

    def test_simple_known_optimum(self):
        weights = np.array([[0.9, 0.1], [0.2, 0.8]])
        pairs = set(hungarian_max_weight(weights))
        assert pairs == {(0, 0), (1, 1)}

    def test_anti_diagonal_optimum(self):
        weights = np.array([[0.1, 0.9], [0.9, 0.1]])
        pairs = set(hungarian_max_weight(weights))
        assert pairs == {(0, 1), (1, 0)}

    def test_rectangular_more_columns(self):
        weights = np.array([[0.1, 0.9, 0.3], [0.8, 0.2, 0.4]])
        pairs = dict(hungarian_max_weight(weights))
        assert pairs[0] == 1
        assert pairs[1] == 0

    def test_rectangular_more_rows(self):
        weights = np.array([[0.9], [0.8], [0.1]])
        pairs = hungarian_max_weight(weights)
        assert len(pairs) == 1
        assert pairs[0] == (0, 0)

    def test_empty_matrix(self):
        assert hungarian_max_weight(np.zeros((0, 0))) == []

    def test_greedy_is_suboptimal_but_hungarian_is_not(self):
        # greedy would pick (0,0)=0.9 then be forced to (1,1)=0.0 for total 0.9;
        # the optimum is (0,1)+(1,0) = 0.8+0.8 = 1.6.
        weights = np.array([[0.9, 0.8], [0.8, 0.0]])
        pairs = set(hungarian_max_weight(weights))
        assert pairs == {(0, 1), (1, 0)}

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.randoms(),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_on_small_instances(self, rows, cols, rng):
        weights = np.array([[rng.random() for _ in range(cols)] for _ in range(rows)])
        pairs = hungarian_max_weight(weights)
        total = sum(weights[i, j] for i, j in pairs)
        best = _brute_force_best(weights)
        assert total == pytest.approx(best, abs=1e-9)


def _brute_force_best(weights: np.ndarray) -> float:
    import itertools

    rows, cols = weights.shape
    size = min(rows, cols)
    best = 0.0
    row_sets = itertools.permutations(range(rows), size)
    for row_choice in row_sets:
        for col_choice in itertools.permutations(range(cols), size):
            total = sum(weights[i, j] for i, j in zip(row_choice, col_choice))
            best = max(best, total)
    return best


class TestMaximumWeightMatching:
    def test_prunes_below_min_weight(self):
        weights = np.array([[0.9, 0.0], [0.0, 0.2]])
        triples = maximum_weight_matching(weights, min_weight=0.5)
        assert triples == [(0, 0, 0.9)]

    def test_sorted_by_weight(self):
        weights = np.array([[0.4, 0.0], [0.0, 0.9]])
        triples = maximum_weight_matching(weights)
        assert triples[0][2] >= triples[1][2]

    def test_one_to_one_constraint(self):
        weights = np.array([[0.9, 0.8, 0.7], [0.85, 0.6, 0.5]])
        triples = maximum_weight_matching(weights)
        rows = [i for i, _, _ in triples]
        cols = [j for _, j, _ in triples]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))
