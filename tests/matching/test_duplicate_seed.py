"""DuplicateSeeder: ordering guarantees, sampling, thresholds, degenerate inputs."""

import pytest

from repro.engine.relation import Relation
from repro.matching.duplicate_seed import (
    DuplicateSeeder,
    compute_seed_statistics,
    sample_indices,
)


def relation_of(names, name="rel"):
    return Relation.from_dicts([{"name": value} for value in names], name=name)


class TestSeedOrdering:
    def test_seeds_sorted_by_similarity_then_indices(self):
        # Three identical values on each side produce a 3x3 block of
        # equal-similarity pairs; the documented order is
        # (similarity desc, left_index asc, right_index asc).
        left = relation_of(["anna schmidt", "anna schmidt", "anna schmidt"])
        right = relation_of(["anna schmidt", "anna schmidt", "anna schmidt"])
        seeds = DuplicateSeeder(max_seeds=9, min_similarity=0.0).find_seeds(left, right)
        assert [(seed.left_index, seed.right_index) for seed in seeds] == [
            (i, j) for i in range(3) for j in range(3)
        ]
        assert len({seed.similarity for seed in seeds}) == 1

    def test_boundary_ties_prefer_smaller_indices(self):
        # More equal-similarity candidates than max_seeds: the kept subset
        # must be the smallest (left, right) pairs, not whichever entries the
        # heap happened to retain.
        left = relation_of(["bob miller"] * 4)
        right = relation_of(["bob miller"] * 4)
        seeds = DuplicateSeeder(max_seeds=5, min_similarity=0.0).find_seeds(left, right)
        assert [(seed.left_index, seed.right_index) for seed in seeds] == [
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 0),
        ]

    def test_ordering_is_stable_across_runs(self):
        left = relation_of(["carla", "carla", "dora", "dora"])
        right = relation_of(["carla", "dora", "carla"])
        seeder = DuplicateSeeder(max_seeds=4, min_similarity=0.0)
        first = seeder.find_seeds(left, right)
        second = seeder.find_seeds(left, right)
        assert first == second


class TestSampling:
    @pytest.mark.parametrize(
        "size,limit,expected",
        [
            # at the limit and one under: no sampling at all
            (10, 10, list(range(10))),
            (9, 10, list(range(9))),
            # one over: stride stays 1 (11 // 10), capped to the first 10
            (11, 10, list(range(10))),
            # well over: every n-th row
            (20, 10, list(range(0, 20, 2))),
            (0, 10, []),
            (5, None, list(range(5))),
        ],
    )
    def test_sample_indices_stride(self, size, limit, expected):
        assert sample_indices(size, limit) == expected

    def test_seeder_samples_large_relations(self):
        values = [f"person {i:03d} name{i:03d}" for i in range(40)]
        left = relation_of(values)
        right = relation_of(values[:5])
        seeder = DuplicateSeeder(max_seeds=5, min_similarity=0.0, max_tuples_per_relation=10)
        seeds = seeder.find_seeds(left, right)
        sampled = set(sample_indices(40, 10))
        assert seeds
        assert all(seed.left_index in sampled for seed in seeds)

    def test_statistics_record_sampling_parameters(self):
        relation = relation_of([f"row {i}" for i in range(25)])
        statistics = compute_seed_statistics(relation, 10)
        assert statistics.row_count == 25
        assert statistics.sample_limit == 10
        assert statistics.indices == sample_indices(25, 10)
        assert statistics.document_count == len(statistics.indices)


class TestThresholdsAndDegenerateInputs:
    def test_min_similarity_filters_even_below_max_seeds(self):
        left = relation_of(["anna schmidt berlin", "completely different tokens"])
        right = relation_of(["anna schmidt berlin", "unrelated words here"])
        strict = DuplicateSeeder(max_seeds=10, min_similarity=0.95)
        seeds = strict.find_seeds(left, right)
        assert [(s.left_index, s.right_index) for s in seeds] == [(0, 0)]
        assert all(seed.similarity >= 0.95 for seed in seeds)

    def test_empty_relation_yields_no_seeds(self):
        empty = Relation.from_dicts([], name="empty")
        other = relation_of(["anna"])
        seeder = DuplicateSeeder(min_similarity=0.0)
        assert seeder.find_seeds(empty, other) == []
        assert seeder.find_seeds(other, empty) == []
        assert seeder.find_seeds(empty, empty) == []

    def test_all_null_relation_yields_no_seeds(self):
        nulls = Relation.from_dicts([{"name": None}, {"name": None}], name="nulls")
        other = relation_of(["anna", "bob"])
        seeder = DuplicateSeeder(min_similarity=0.0)
        assert seeder.find_seeds(nulls, other) == []
        assert seeder.find_seeds(nulls, nulls) == []


class TestPreparedStatistics:
    def test_provider_statistics_reproduce_cold_seeds(self):
        left = relation_of(["anna schmidt", "bob miller", "carla meyer"], name="left")
        right = relation_of(["anna schmidt", "derek chu"], name="right")
        seeder = DuplicateSeeder(max_seeds=5, min_similarity=0.0)
        cold = seeder.find_seeds(left, right)

        prebuilt = {
            id(left): compute_seed_statistics(left, seeder.max_tuples_per_relation),
            id(right): compute_seed_statistics(right, seeder.max_tuples_per_relation),
        }
        calls = []

        def provider(relation, limit):
            calls.append(limit)
            return prebuilt[id(relation)]

        seeder.statistics_provider = provider
        assert seeder.find_seeds(left, right) == cold
        assert calls == [seeder.max_tuples_per_relation] * 2

    def test_mismatched_provider_statistics_are_ignored(self):
        left = relation_of(["anna schmidt", "bob miller"], name="left")
        right = relation_of(["anna schmidt"], name="right")
        seeder = DuplicateSeeder(max_seeds=5, min_similarity=0.0)
        cold = seeder.find_seeds(left, right)
        # statistics sampled under a different limit must not be trusted
        seeder.statistics_provider = lambda relation, limit: compute_seed_statistics(
            relation, 1
        )
        assert seeder.find_seeds(left, right) == cold
