"""Tests for the DUMAS matcher and its building blocks (seeds, matrices)."""

import numpy as np
import pytest

from repro.engine.relation import Relation
from repro.exceptions import InsufficientDuplicatesError
from repro.matching.dumas import DumasMatcher
from repro.matching.duplicate_seed import DuplicateSeeder, SeedPair, tuple_to_string
from repro.matching.field_matrix import (
    FieldSimilarityMatrix,
    average_matrices,
    build_field_matrix,
)


class TestTupleToString:
    def test_joins_non_null_values(self):
        assert tuple_to_string(("Anna", 22, None)) == "Anna 22"

    def test_excluded_positions(self):
        assert tuple_to_string(("Anna", 22, "x"), exclude_positions=[2]) == "Anna 22"


class TestDuplicateSeeder:
    def test_finds_shared_tuples(self, ee_students, cs_students):
        seeds = DuplicateSeeder(max_seeds=5).find_seeds(ee_students, cs_students)
        assert seeds
        seeded_names = {
            ee_students.cell(seed.left_index, "Name") for seed in seeds[:2]
        }
        assert seeded_names <= {"Anna Schmidt", "Ben Mueller"}

    def test_returns_sorted_by_similarity(self, ee_students, cs_students):
        seeds = DuplicateSeeder(max_seeds=5).find_seeds(ee_students, cs_students)
        similarities = [seed.similarity for seed in seeds]
        assert similarities == sorted(similarities, reverse=True)

    def test_respects_max_seeds(self, ee_students, cs_students):
        assert len(DuplicateSeeder(max_seeds=1).find_seeds(ee_students, cs_students)) == 1

    def test_min_similarity_filters_everything_when_disjoint(self):
        left = Relation.from_dicts([{"a": "alpha beta"}], name="l")
        right = Relation.from_dicts([{"x": "gamma delta"}], name="r")
        assert DuplicateSeeder().find_seeds(left, right) == []

    def test_max_seeds_validation(self):
        with pytest.raises(ValueError):
            DuplicateSeeder(max_seeds=0)

    def test_sampling_caps_large_relations(self):
        rows = [{"a": f"value {i}", "b": i} for i in range(50)]
        left = Relation.from_dicts(rows, name="l")
        right = Relation.from_dicts(rows, name="r")
        seeder = DuplicateSeeder(max_seeds=3, max_tuples_per_relation=10)
        seeds = seeder.find_seeds(left, right)
        assert len(seeds) <= 3


class TestFieldMatrix:
    def test_build_matrix_scores_matching_fields_high(self, ee_students, cs_students):
        seed = SeedPair(left_index=0, right_index=0, similarity=0.9)
        matrix = build_field_matrix(ee_students, cs_students, seed)
        assert matrix.get("Name", "StudentName") > 0.8
        assert matrix.get("Name", "Years") == 0.0

    def test_matrix_shape_validation(self):
        with pytest.raises(ValueError):
            FieldSimilarityMatrix(["a"], ["b"], np.zeros((2, 2)))

    def test_set_and_get(self):
        matrix = FieldSimilarityMatrix(["a"], ["b"])
        matrix.set("a", "b", 0.7)
        assert matrix.get("a", "b") == 0.7

    def test_average_matrices(self):
        first = FieldSimilarityMatrix(["a"], ["b"], np.array([[0.2]]))
        second = FieldSimilarityMatrix(["a"], ["b"], np.array([[0.8]]))
        assert average_matrices([first, second]).get("a", "b") == pytest.approx(0.5)

    def test_average_requires_same_attributes(self):
        first = FieldSimilarityMatrix(["a"], ["b"])
        second = FieldSimilarityMatrix(["x"], ["b"])
        with pytest.raises(ValueError):
            average_matrices([first, second])

    def test_average_requires_input(self):
        with pytest.raises(ValueError):
            average_matrices([])


class TestDumasMatcher:
    def test_matches_students_example(self, ee_students, cs_students):
        result = DumasMatcher(max_seeds=3).match(ee_students, cs_students)
        pairs = {c.as_pair() for c in result.correspondences}
        assert ("Name", "StudentName") in pairs
        assert ("Age", "Years") in pairs

    def test_scores_are_in_unit_interval(self, ee_students, cs_students):
        result = DumasMatcher().match(ee_students, cs_students)
        assert all(0.0 <= c.score <= 1.0 for c in result.correspondences)

    def test_result_exposes_seeds_and_matrix(self, ee_students, cs_students):
        result = DumasMatcher().match(ee_students, cs_students)
        assert result.seeds
        assert result.matrix is not None

    def test_no_shared_tuples_raises(self):
        left = Relation.from_dicts([{"a": "alpha beta gamma"}], name="l")
        right = Relation.from_dicts([{"x": "delta epsilon zeta"}], name="r")
        with pytest.raises(InsufficientDuplicatesError):
            DumasMatcher().match(left, right)

    def test_threshold_prunes_weak_correspondences(self, ee_students, cs_students):
        strict = DumasMatcher(correspondence_threshold=0.99).match(ee_students, cs_students)
        lenient = DumasMatcher(correspondence_threshold=0.1).match(ee_students, cs_students)
        assert len(strict.correspondences) <= len(lenient.correspondences)

    def test_correspondences_are_one_to_one(self, small_students_dataset):
        sources = small_students_dataset.source_list
        result = DumasMatcher().match(sources[0], sources[1])
        lefts = [c.left_attribute for c in result.correspondences]
        rights = [c.right_attribute for c in result.correspondences]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    def test_high_accuracy_on_generated_students(self, small_students_dataset):
        from repro.evaluation import evaluate_correspondences

        sources = small_students_dataset.source_list
        result = DumasMatcher().match(sources[0], sources[1])
        truth = small_students_dataset.truth.true_correspondences(
            sources[0].name, sources[1].name
        )
        metrics = evaluate_correspondences(result.correspondences, truth)
        assert metrics.f1 >= 0.8
