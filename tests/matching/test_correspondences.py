"""Tests for the correspondence model."""

from repro.matching.correspondences import Correspondence, CorrespondenceSet


def make(left_attr, right_attr, score=0.9, right_rel="CS"):
    return Correspondence("EE", left_attr, right_rel, right_attr, score=score)


class TestCorrespondence:
    def test_as_pair_and_str(self):
        correspondence = make("Name", "StudentName")
        assert correspondence.as_pair() == ("Name", "StudentName")
        assert "EE.Name" in str(correspondence)

    def test_reversed(self):
        reversed_c = make("Name", "StudentName").reversed()
        assert reversed_c.left_attribute == "StudentName"
        assert reversed_c.right_relation == "EE"
        assert reversed_c.score == 0.9


class TestCorrespondenceSet:
    def test_add_and_len(self):
        collection = CorrespondenceSet()
        collection.add(make("Name", "StudentName"))
        assert len(collection) == 1

    def test_remove_is_case_insensitive(self):
        collection = CorrespondenceSet([make("Name", "StudentName")])
        assert collection.remove("name", "studentname")
        assert len(collection) == 0
        assert not collection.remove("name", "studentname")

    def test_filtered_by_threshold(self):
        collection = CorrespondenceSet([make("a", "b", 0.9), make("c", "d", 0.2)])
        assert len(collection.filtered(0.5)) == 1

    def test_for_relation(self):
        collection = CorrespondenceSet(
            [make("a", "b", right_rel="CS"), make("a", "x", right_rel="Other")]
        )
        assert len(collection.for_relation("cs")) == 1

    def test_rename_mapping_skips_identity(self):
        collection = CorrespondenceSet(
            [make("Name", "StudentName"), make("Age", "age")]
        )
        mapping = collection.rename_mapping("CS")
        assert mapping == {"StudentName": "Name"}

    def test_best_for(self):
        collection = CorrespondenceSet([make("a", "b", 0.5), make("a", "c", 0.9)])
        best = collection.best_for("A")
        assert best.right_attribute == "c"
        assert collection.best_for("zzz") is None

    def test_merge_deduplicates_exact(self):
        one = make("a", "b")
        collection = CorrespondenceSet([one]).merge(CorrespondenceSet([one, make("c", "d")]))
        assert len(collection) == 2

    def test_pairs(self):
        collection = CorrespondenceSet([make("a", "b")])
        assert collection.pairs() == [("a", "b")]

    def test_contains_and_items(self):
        one = make("a", "b")
        collection = CorrespondenceSet([one])
        assert one in collection
        assert collection.items == [one]
