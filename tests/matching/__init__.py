"""Test package."""
