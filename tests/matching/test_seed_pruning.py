"""Pruned seed scoring is exact (ISSUE 6 tentpole).

``DuplicateSeeder`` with ``prune=True`` skips cosines whose per-term
max-weight upper bound is provably below the current top-k floor.  The
optimisation must be invisible: property tests assert that the pruned path
returns *exactly* the full scan's seeds — same pairs, same order, same
bit-identical similarities — on arbitrary generated relations, including the
adversarial cases (ties at the boundary, similarities equal to
``min_similarity``, near-duplicate rows).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.matching.duplicate_seed import DuplicateSeeder, SeedScoringStatistics

#: Overlapping word pool: shared tokens make candidates plentiful and tie-prone.
WORDS = [
    "anna", "annna", "schmidt", "schmitd", "ben", "mueller",
    "berlin", "hamburg", "weber", "carla", "wolf", "elena",
]

CELL = st.one_of(
    st.none(),
    st.sampled_from(WORDS),
    st.tuples(st.sampled_from(WORDS), st.sampled_from(WORDS)).map(" ".join),
    st.text(alphabet="abz ", max_size=8),
    st.integers(min_value=0, max_value=9),
)


@st.composite
def relations(draw, max_size=15):
    size = draw(st.integers(min_value=0, max_value=max_size))
    rows = [
        {"name": draw(CELL), "city": draw(CELL), "age": draw(CELL)}
        for _ in range(size)
    ]
    return Relation.from_dicts(rows, schema=Schema(["name", "city", "age"]), name="generated")


PARITY_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def seed_tuples(seeds):
    """Exact-equality view of a seed list (floats compared bit for bit)."""
    return [(s.left_index, s.right_index, s.similarity) for s in seeds]


class TestPruningParity:
    @PARITY_SETTINGS
    @given(
        left=relations(),
        right=relations(),
        max_seeds=st.integers(min_value=1, max_value=8),
        min_similarity=st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.9]),
    )
    def test_pruned_seeds_equal_full_scan(self, left, right, max_seeds, min_similarity):
        pruned = DuplicateSeeder(
            max_seeds=max_seeds, min_similarity=min_similarity, prune=True
        ).find_seeds(left, right)
        full = DuplicateSeeder(
            max_seeds=max_seeds, min_similarity=min_similarity, prune=False
        ).find_seeds(left, right)
        assert seed_tuples(pruned) == seed_tuples(full)

    def test_parity_on_identical_relations_with_ties(self):
        """Many identical rows: every similarity ties at 1.0 at the boundary."""
        rows = [{"a": "anna schmidt", "b": "berlin"}] * 6 + [
            {"a": "ben mueller", "b": "hamburg"}
        ] * 6
        left = Relation.from_dicts(rows, name="l")
        right = Relation.from_dicts(list(reversed(rows)), name="r")
        for max_seeds in (1, 3, 6, 12, 20):
            pruned = DuplicateSeeder(max_seeds=max_seeds, prune=True).find_seeds(left, right)
            full = DuplicateSeeder(max_seeds=max_seeds, prune=False).find_seeds(left, right)
            assert seed_tuples(pruned) == seed_tuples(full)

    def test_parity_on_generated_students(self):
        dataset = students_scenario(
            entity_count=60, corruption=CorruptionConfig.low(), seed=13
        )
        sources = dataset.source_list
        pruned = DuplicateSeeder(prune=True).find_seeds(sources[0], sources[1])
        full = DuplicateSeeder(prune=False).find_seeds(sources[0], sources[1])
        assert seed_tuples(pruned) == seed_tuples(full)

    def test_parity_with_sampling(self):
        rows = [{"a": f"anna {i % 7}", "b": f"berlin {i % 5}"} for i in range(60)]
        left = Relation.from_dicts(rows, name="l")
        right = Relation.from_dicts(rows, name="r")
        pruned = DuplicateSeeder(
            max_tuples_per_relation=20, prune=True
        ).find_seeds(left, right)
        full = DuplicateSeeder(
            max_tuples_per_relation=20, prune=False
        ).find_seeds(left, right)
        assert seed_tuples(pruned) == seed_tuples(full)


class TestScoringStatistics:
    def test_counters_candidates_match_full_scan(self):
        """candidate_count counts posting-sharing pairs on both paths."""
        dataset = students_scenario(
            entity_count=40, corruption=CorruptionConfig.low(), seed=3
        )
        sources = dataset.source_list
        pruned = DuplicateSeeder(prune=True)
        pruned.find_seeds(sources[0], sources[1])
        full = DuplicateSeeder(prune=False)
        full.find_seeds(sources[0], sources[1])
        assert pruned.last_scoring.candidate_count == full.last_scoring.candidate_count
        assert full.last_scoring.scored_count == full.last_scoring.candidate_count
        assert pruned.last_scoring.scored_count <= pruned.last_scoring.candidate_count

    def test_pruning_skips_most_candidates_at_scale(self):
        """Acceptance: a measured fraction (< 50%) of candidates is scored."""
        dataset = students_scenario(
            entity_count=100, corruption=CorruptionConfig.low(), seed=7
        )
        sources = dataset.source_list
        seeder = DuplicateSeeder(prune=True)
        seeder.find_seeds(sources[0], sources[1])
        statistics = seeder.last_scoring
        assert statistics.candidate_count > 0
        assert statistics.scored_fraction < 0.5

    def test_statistics_dict_shape(self):
        statistics = SeedScoringStatistics(candidate_count=10, scored_count=4)
        assert statistics.as_dict() == {
            "seed_candidates": 10,
            "seed_cosines": 4,
            "seed_pruned": 6,
            "seed_scored_fraction": 0.4,
        }

    def test_empty_scoring_fraction_is_one(self):
        assert SeedScoringStatistics().scored_fraction == 1.0

    def test_scoring_listener_receives_counters(self, ee_students, cs_students):
        received = []
        seeder = DuplicateSeeder()
        seeder.scoring_listener = received.append
        seeder.find_seeds(ee_students, cs_students)
        assert len(received) == 1
        assert received[0] is seeder.last_scoring


class TestSeederProgress:
    def test_progress_reaches_total(self, ee_students, cs_students):
        events = []
        seeder = DuplicateSeeder()
        seeder.progress_callback = lambda phase, done, total: events.append(
            (phase, done, total)
        )
        seeder.find_seeds(ee_students, cs_students)
        assert events
        assert all(phase == "seeds_scored" for phase, _, _ in events)
        dones = [done for _, done, _ in events]
        assert dones == list(range(1, len(ee_students) + 1))
        assert all(total == len(ee_students) for _, _, total in events)

    def test_no_callback_is_fine(self, ee_students, cs_students):
        assert DuplicateSeeder().find_seeds(ee_students, cs_students)
