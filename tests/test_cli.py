"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.engine.io.csv_source import write_csv


@pytest.fixture
def csv_sources(tmp_path, ee_students, cs_students):
    ee_path = tmp_path / "ee.csv"
    cs_path = tmp_path / "cs.csv"
    write_csv(ee_students, ee_path)
    write_csv(cs_students, cs_path)
    return ee_path, cs_path


class TestParser:
    def test_query_command_parses(self):
        args = build_parser().parse_args(
            ["query", "SELECT * FROM t", "--source", "t=/tmp/t.csv"]
        )
        assert args.command == "query"
        assert args.source == [("t", "/tmp/t.csv")]

    def test_source_argument_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "SELECT 1", "--source", "not_a_pair"])

    def test_demo_scenarios_are_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "unknown_scenario"])


class TestQueryCommand:
    def test_runs_fusion_query_from_csv(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            [
                "query",
                "SELECT Name, RESOLVE(Age, max) FUSE FROM ee, cs FUSE BY (Name)",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Anna Schmidt" in output

    def test_writes_output_csv(self, csv_sources, tmp_path, capsys):
        ee_path, cs_path = csv_sources
        out_path = tmp_path / "result.csv"
        exit_code = main(
            [
                "query",
                "SELECT Name FROM ee ORDER BY Name",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
                "--output", str(out_path),
            ]
        )
        assert exit_code == 0
        assert out_path.exists()
        assert "Anna Schmidt" in out_path.read_text()

    def test_error_is_reported_not_raised(self, capsys):
        exit_code = main(["query", "SELECT * FROM missing_table"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error" in captured.err.lower()


class TestFuseCommand:
    def test_fuse_prints_summary(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "pipeline summary" in output
        assert "output_tuples" in output


    def test_fuse_with_adaptive_blocking_prints_plan(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            [
                "fuse",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
                "--blocking", "adaptive",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "blocking_plan: allpairs" in output
        assert "blocking plan: allpairs" in output
        assert "small_threshold" in output  # the planner's reason trail

    def test_fuse_with_union_blocking_spelling(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            [
                "fuse",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
                "--blocking", "union:snm+token",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "blocking plan: union over snm+token" in output

    def test_unknown_blocking_is_reported_not_raised(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--blocking", "sorted"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "unknown blocking strategy" in captured.err


class TestDemoCommand:
    def test_students_demo_runs(self, capsys):
        exit_code = main(["demo", "students", "--entities", "15", "--limit", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "correspondences found" in output
        assert "distinct objects" in output

    def test_students_demo_with_adaptive_blocking(self, capsys):
        exit_code = main(
            ["demo", "students", "--entities", "12", "--limit", "3",
             "--blocking", "adaptive"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "blocking plan: allpairs" in output
