"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.config import FusionConfig
from repro.engine.io.csv_source import write_csv


def stable_lines(output: str) -> list:
    """CLI output minus the wall-clock lines (everything else is deterministic)."""
    return [
        line
        for line in output.splitlines()
        if "seconds" not in line and "prepare phase" not in line
    ]


@pytest.fixture
def csv_sources(tmp_path, ee_students, cs_students):
    ee_path = tmp_path / "ee.csv"
    cs_path = tmp_path / "cs.csv"
    write_csv(ee_students, ee_path)
    write_csv(cs_students, cs_path)
    return ee_path, cs_path


class TestParser:
    def test_query_command_parses(self):
        args = build_parser().parse_args(
            ["query", "SELECT * FROM t", "--source", "t=/tmp/t.csv"]
        )
        assert args.command == "query"
        assert args.source == [("t", "/tmp/t.csv")]

    def test_source_argument_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "SELECT 1", "--source", "not_a_pair"])

    def test_demo_scenarios_are_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "unknown_scenario"])


class TestQueryCommand:
    def test_runs_fusion_query_from_csv(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            [
                "query",
                "SELECT Name, RESOLVE(Age, max) FUSE FROM ee, cs FUSE BY (Name)",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Anna Schmidt" in output

    def test_writes_output_csv(self, csv_sources, tmp_path, capsys):
        ee_path, cs_path = csv_sources
        out_path = tmp_path / "result.csv"
        exit_code = main(
            [
                "query",
                "SELECT Name FROM ee ORDER BY Name",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
                "--output", str(out_path),
            ]
        )
        assert exit_code == 0
        assert out_path.exists()
        assert "Anna Schmidt" in out_path.read_text()

    def test_error_is_reported_not_raised(self, capsys):
        exit_code = main(["query", "SELECT * FROM missing_table"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error" in captured.err.lower()


class TestFuseCommand:
    def test_fuse_prints_summary(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "pipeline summary" in output
        assert "output_tuples" in output


    def test_fuse_with_adaptive_blocking_prints_plan(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            [
                "fuse",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
                "--blocking", "adaptive",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "blocking_plan: allpairs" in output
        assert "blocking plan: allpairs" in output
        assert "small_threshold" in output  # the planner's reason trail

    def test_fuse_with_union_blocking_spelling(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            [
                "fuse",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
                "--blocking", "union:snm+token",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "blocking plan: union over snm+token" in output

    def test_unknown_blocking_is_reported_not_raised(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--blocking", "sorted"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "unknown blocking strategy" in captured.err

    def test_fuse_prints_transitive_clustering_report_by_default(
        self, csv_sources, capsys
    ):
        ee_path, cs_path = csv_sources
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "clustering (transitive):" in output
        assert "chains split" not in output  # baseline never splits

    def test_fuse_with_clustering_strategy_prints_split_counters(
        self, csv_sources, capsys
    ):
        ee_path, cs_path = csv_sources
        exit_code = main(
            [
                "fuse",
                "--source", f"ee={ee_path}",
                "--source", f"cs={cs_path}",
                "--clustering", "biclique",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "clustering (biclique):" in output
        assert "chains split" in output

    def test_unknown_clustering_is_reported_not_raised(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--clustering", "louvain"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "unknown clustering strategy" in captured.err


class TestConfigFile:
    """CLI-flag ↔ config-file parity (ISSUE 5 satellite)."""

    def test_fuse_flags_and_config_file_are_equivalent(
        self, csv_sources, tmp_path, capsys
    ):
        ee_path, cs_path = csv_sources
        sources = ["--source", f"ee={ee_path}", "--source", f"cs={cs_path}"]

        assert main(
            ["fuse", *sources, "--threshold", "0.8",
             "--blocking", "snm", "--snm-window", "6"]
        ) == 0
        from_flags = capsys.readouterr().out

        config_path = tmp_path / "fusion.json"
        config_path.write_text(json.dumps({
            "dedup": {
                "threshold": 0.8,
                "blocking": "snm",
                "blocking_options": {"window": 6},
            }
        }))
        assert main(["fuse", *sources, "--config", str(config_path)]) == 0
        from_file = capsys.readouterr().out

        assert stable_lines(from_flags) == stable_lines(from_file)

    def test_demo_flags_and_config_file_are_equivalent(self, tmp_path, capsys):
        base = ["demo", "students", "--entities", "12", "--limit", "3"]

        assert main([*base, "--blocking", "adaptive"]) == 0
        from_flags = capsys.readouterr().out

        config_path = tmp_path / "fusion.json"
        config_path.write_text(json.dumps({"dedup": {"blocking": "adaptive"}}))
        assert main([*base, "--config", str(config_path)]) == 0
        from_file = capsys.readouterr().out

        assert stable_lines(from_flags) == stable_lines(from_file)

    def test_flags_override_the_config_file(self, csv_sources, tmp_path, capsys):
        ee_path, cs_path = csv_sources
        config_path = tmp_path / "fusion.json"
        config_path.write_text(json.dumps({"dedup": {"blocking": "snm"}}))
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--config", str(config_path), "--blocking", "adaptive"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "blocking plan" in output  # adaptive (the flag) won

    def test_config_file_round_trips_through_to_json(self, csv_sources, tmp_path, capsys):
        ee_path, cs_path = csv_sources
        config_path = tmp_path / "fusion.json"
        config_path.write_text(
            FusionConfig.from_dict({"dedup": {"threshold": 0.8}}).to_json()
        )
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--config", str(config_path)]
        )
        assert exit_code == 0
        assert "pipeline summary" in capsys.readouterr().out

    def test_invalid_config_file_is_reported_not_raised(
        self, csv_sources, tmp_path, capsys
    ):
        ee_path, cs_path = csv_sources
        config_path = tmp_path / "fusion.json"
        config_path.write_text(json.dumps({"dedup": {"blocking": "sorted"}}))
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--config", str(config_path)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "unknown blocking strategy" in captured.err

    def test_config_file_without_threshold_keeps_the_fuse_default(self, tmp_path):
        from repro.cli import FUSE_DEFAULT_THRESHOLD, _build_config, build_parser

        config_path = tmp_path / "fusion.json"
        config_path.write_text(json.dumps({"prepare": {"mode": "lazy"}}))
        args = build_parser().parse_args(
            ["fuse", "--source", "a=a.csv", "--config", str(config_path)]
        )
        config = _build_config(args, default_threshold=FUSE_DEFAULT_THRESHOLD)
        assert config.dedup.threshold == FUSE_DEFAULT_THRESHOLD

    def test_config_file_threshold_wins_over_the_fuse_default(self, tmp_path):
        from repro.cli import FUSE_DEFAULT_THRESHOLD, _build_config, build_parser

        config_path = tmp_path / "fusion.json"
        config_path.write_text(json.dumps({"dedup": {"threshold": 0.6}}))
        args = build_parser().parse_args(
            ["fuse", "--source", "a=a.csv", "--config", str(config_path)]
        )
        config = _build_config(args, default_threshold=FUSE_DEFAULT_THRESHOLD)
        assert config.dedup.threshold == 0.6

    def test_dependent_flag_composes_with_config_file(self, csv_sources, tmp_path, capsys):
        """`--snm-window` is valid when the *file* sets blocking snm."""
        ee_path, cs_path = csv_sources
        config_path = tmp_path / "fusion.json"
        config_path.write_text(json.dumps({"dedup": {"blocking": "snm"}}))
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--config", str(config_path), "--snm-window", "6"]
        )
        assert exit_code == 0
        assert "pipeline summary" in capsys.readouterr().out

    def test_missing_config_file_is_reported(self, csv_sources, capsys):
        ee_path, cs_path = csv_sources
        exit_code = main(
            ["fuse", "--source", f"ee={ee_path}", "--source", f"cs={cs_path}",
             "--config", "/nonexistent/fusion.json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "cannot read config file" in captured.err


class TestDemoCommand:
    def test_students_demo_runs(self, capsys):
        exit_code = main(["demo", "students", "--entities", "15", "--limit", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "correspondences found" in output
        assert "distinct objects" in output

    def test_students_demo_with_adaptive_blocking(self, capsys):
        exit_code = main(
            ["demo", "students", "--entities", "12", "--limit", "3",
             "--blocking", "adaptive"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "blocking plan: allpairs" in output
