"""Golden end-to-end regression test for the full HumMer pipeline.

Runs fusion over two small committed CSV sources (heterogeneous schemas,
typo'd duplicates, one age conflict) and compares everything the candidate
stage influences — fused rows, duplicate pairs, cluster count and the
``FilterStatistics`` counters — against a checked-in golden file.  A
refactor of blocking, filtering, scoring or clustering that silently
changes fusion results fails here even if every unit test still passes.

To regenerate after an *intentional* behaviour change::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_golden_pipeline.py

then review the golden diff like any other code change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.engine.io.csv_source import CsvSource
from repro.hummer import HumMer

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "golden"
GOLDEN_PATH = FIXTURE_DIR / "expected_fusion.json"


def _jsonable(value):
    """Cell value → JSON-stable form (floats rounded against FP drift)."""
    if isinstance(value, float):
        return round(value, 9)
    return value


def run_golden_pipeline():
    hummer = HumMer()
    hummer.register("crm", CsvSource(FIXTURE_DIR / "crm_customers.csv", name="crm"))
    hummer.register("shop", CsvSource(FIXTURE_DIR / "shop_clients.csv", name="shop"))
    result = hummer.fuse(["crm", "shop"])
    return {
        "correspondences": sorted(str(c) for c in result.correspondences),
        "columns": list(result.relation.column_names),
        "rows": [[_jsonable(value) for value in row] for row in result.relation.rows],
        "duplicate_pairs": [list(pair) for pair in result.detection.duplicate_pairs],
        "cluster_count": result.detection.cluster_count,
        "filter_statistics": result.detection.filter_statistics.as_dict(),
    }


def test_golden_end_to_end_fusion():
    actual = run_golden_pipeline()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.write_text(json.dumps(actual, indent=1) + "\n")
        pytest.skip("golden file regenerated; review and commit the diff")
    expected = json.loads(GOLDEN_PATH.read_text())
    assert actual == expected, (
        "end-to-end fusion output drifted from the golden file; if the change "
        "is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


def test_golden_fixture_finds_the_planted_duplicates():
    """Independent of the golden bytes: the three planted duplicate pairs
    (exact copy, name typo, name typo + conflicting age) must be found."""
    actual = run_golden_pipeline()
    assert actual["cluster_count"] == 8  # 11 input tuples, 3 duplicate pairs
    assert len(actual["duplicate_pairs"]) == 3
