"""Tests for the HumMer facade (public API) and the package top level."""

import pytest

import repro
from repro import HumMer
from repro.core.resolution import ResolutionFunction
from repro.engine.relation import Relation
from repro.exceptions import CatalogError


class TestPackageTopLevel:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ["HumMer", "Relation", "Schema", "FusionPipeline", "DuplicateDetector"]:
            assert hasattr(repro, name)


class TestSourceManagement:
    def test_register_and_list(self, ee_students):
        hummer = HumMer()
        hummer.register("EE_Students", ee_students)
        hummer.register("people", [{"name": "X"}])
        assert hummer.sources() == ["EE_Students", "people"]
        assert len(hummer.relation("people")) == 1

    def test_register_duplicate_rejected(self, ee_students):
        hummer = HumMer()
        hummer.register("t", ee_students)
        with pytest.raises(CatalogError):
            hummer.register("t", ee_students)
        hummer.register("t", ee_students, replace=True)

    def test_unregister(self, ee_students):
        hummer = HumMer()
        hummer.register("t", ee_students)
        hummer.unregister("t")
        assert hummer.sources() == []


class TestQueries:
    def test_paper_query(self, hummer):
        result = hummer.query(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
        )
        assert len(result) == 5

    def test_plain_sql_query(self, hummer):
        result = hummer.query("SELECT Name FROM EE_Students WHERE Age >= 25 ORDER BY Name")
        assert result.column("Name") == ["Ben Mueller", "David Fischer"]

    def test_explain(self, hummer):
        plan = hummer.explain("SELECT * FUSE FROM EE_Students, CS_Students")
        assert plan.is_fusion


class TestFuse:
    def test_automatic_fusion(self, hummer):
        result = hummer.fuse(["EE_Students", "CS_Students"])
        assert len(result.relation) == 5
        assert result.detection.cluster_count == 5
        assert len(result.correspondences) >= 2

    def test_fusion_with_resolutions(self, hummer):
        result = hummer.fuse(
            ["EE_Students", "CS_Students"],
            resolutions={"Name": "coalesce", "Age": "max"},
        )
        by_name = {row["Name"]: row["Age"] for row in result.relation}
        assert by_name["Anna Schmidt"] == 23

    def test_fusion_with_metadata_for_most_recent(self):
        hummer = HumMer()
        hummer.register(
            "reports_a",
            [
                {"person": "Anna Schmidt", "status": "missing", "updated": "2005-01-02"},
                {"person": "Ben Mueller", "status": "safe", "updated": "2005-01-05"},
            ],
        )
        hummer.register(
            "reports_b",
            [
                {"person": "Anna Schmidt", "status": "safe", "updated": "2005-02-20"},
            ],
        )
        result = hummer.query(
            "SELECT person, RESOLVE(status, most_recent('updated')) "
            "FUSE FROM reports_a, reports_b FUSE BY (person)"
        )
        by_person = {row["person"]: row["status"] for row in result}
        assert by_person["Anna Schmidt"] == "safe"

    def test_session_exposes_selection_mid_run(self, hummer):
        session = hummer.session(["EE_Students", "CS_Students"])
        session.advance_to(session.ATTRIBUTE_SELECTION)
        assert len(session.selection) > 0
        session.run()


class TestExtensibility:
    def test_custom_resolution_function_usable_from_query(self, hummer):
        class CheapestPlusShipping(ResolutionFunction):
            """Example of a user-defined resolution function."""

            name = "youngest_age"

            def resolve(self, context):
                values = [v for v in context.non_null_values if isinstance(v, (int, float))]
                return min(values) if values else None

        hummer.register_resolution_function(CheapestPlusShipping())
        assert "youngest_age" in hummer.resolution_functions()
        result = hummer.query(
            "SELECT Name, RESOLVE(Age, youngest_age) "
            "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
        )
        by_name = {row["Name"]: row["Age"] for row in result}
        assert by_name["Anna Schmidt"] == 22
