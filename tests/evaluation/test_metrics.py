"""Tests for the evaluation metrics."""

import pytest

from repro.engine.relation import Relation
from repro.evaluation import (
    FusionQuality,
    PrecisionRecall,
    Timer,
    evaluate_clusters,
    evaluate_correspondences,
    evaluate_duplicate_pairs,
    evaluate_fusion,
    pairs_from_clusters,
    time_call,
)
from repro.matching.correspondences import Correspondence, CorrespondenceSet


class TestPrecisionRecall:
    def test_perfect(self):
        metrics = PrecisionRecall.from_sets({1, 2}, {1, 2})
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_partial(self):
        metrics = PrecisionRecall.from_sets({1, 2, 3}, {1, 4})
        assert metrics.true_positives == 1
        assert metrics.precision == pytest.approx(1 / 3)
        assert metrics.recall == pytest.approx(1 / 2)
        assert metrics.f1 == pytest.approx(0.4)

    def test_empty_edge_cases(self):
        assert PrecisionRecall.from_sets(set(), set()).precision == 1.0
        assert PrecisionRecall.from_sets(set(), set()).recall == 1.0
        assert PrecisionRecall.from_sets(set(), {1}).f1 == 0.0

    def test_as_dict(self):
        metrics = PrecisionRecall.from_sets({1}, {1})
        assert metrics.as_dict()["tp"] == 1


class TestCorrespondenceMetrics:
    def test_case_insensitive_comparison(self):
        predicted = CorrespondenceSet(
            [Correspondence("a", "Name", "b", "StudentName", 0.9)]
        )
        metrics = evaluate_correspondences(predicted, [("name", "studentname")])
        assert metrics.f1 == 1.0

    def test_false_positive_and_negative(self):
        predicted = CorrespondenceSet(
            [Correspondence("a", "Name", "b", "Wrong", 0.9)]
        )
        metrics = evaluate_correspondences(predicted, [("Name", "StudentName")])
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 1


class TestDedupMetrics:
    def test_pairs_from_clusters(self):
        assert pairs_from_clusters([0, 0, 1, 0]) == {(0, 1), (0, 3), (1, 3)}
        assert pairs_from_clusters([0, 1, 2]) == set()

    def test_evaluate_duplicate_pairs_normalises_order(self):
        metrics = evaluate_duplicate_pairs([(2, 1)], [(1, 2)])
        assert metrics.f1 == 1.0

    def test_evaluate_clusters_penalises_overmerge(self):
        truth = {(0, 1)}
        perfect = evaluate_clusters([0, 0, 1, 2], truth)
        overmerged = evaluate_clusters([0, 0, 0, 0], truth)
        assert perfect.f1 == 1.0
        assert overmerged.precision < 1.0
        assert overmerged.recall == 1.0

    def test_evaluate_clusters_penalises_undermerge(self):
        truth = {(0, 1), (1, 2), (0, 2)}
        metrics = evaluate_clusters([0, 0, 1], truth)
        assert metrics.recall == pytest.approx(1 / 3)

    def test_empty_assignment(self):
        assert pairs_from_clusters([]) == set()
        metrics = evaluate_clusters([], set())
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_all_singletons_predicts_no_pairs(self):
        assignment = list(range(6))
        assert pairs_from_clusters(assignment) == set()
        metrics = evaluate_clusters(assignment, {(0, 1)})
        assert metrics.precision == 1.0  # nothing predicted, nothing wrong
        assert metrics.recall == 0.0

    def test_one_giant_cluster_implies_all_pairs(self):
        assignment = [0] * 5
        assert len(pairs_from_clusters(assignment)) == 10  # C(5, 2)
        metrics = evaluate_clusters(assignment, {(0, 1), (2, 3)})
        assert metrics.recall == 1.0
        assert metrics.precision == pytest.approx(2 / 10)

    def test_non_dense_cluster_ids_are_accepted(self):
        # ids need not be 0..k-1 — only equality of labels matters
        sparse = pairs_from_clusters([17, 42, 17, 99])
        assert sparse == {(0, 2)}
        dense = evaluate_clusters([0, 1, 0, 2], {(0, 2)})
        assert evaluate_clusters([17, 42, 17, 99], {(0, 2)}).f1 == dense.f1 == 1.0


class TestFusionQuality:
    def make_result(self):
        return Relation.from_dicts(
            [
                {"title": "Abbey Road", "artist": "The Beatles", "price": 12.99},
                {"title": "Kind of Blue", "artist": None, "price": 9.99},
            ],
            name="fused",
        )

    def make_truth(self):
        return {
            "cd_1": {"title": "Abbey Road", "artist": "The Beatles", "price": 12.99},
            "cd_2": {"title": "Kind of Blue", "artist": "Miles Davis", "price": 9.99},
        }

    def test_quality_dimensions(self):
        quality = evaluate_fusion(
            self.make_result(), self.make_truth(), entity_key_column="title",
            entity_key_attribute="title", attributes=["artist", "price"],
        )
        assert quality.entity_count == 2
        assert quality.conciseness == 1.0
        assert quality.completeness == pytest.approx(3 / 4)
        assert quality.correctness == 1.0

    def test_wrong_value_reduces_correctness(self):
        result = Relation.from_dicts(
            [{"title": "Abbey Road", "artist": "The Rolling Stones", "price": 12.99}],
            name="fused",
        )
        quality = evaluate_fusion(
            result, self.make_truth(), "title", "title", attributes=["artist", "price"]
        )
        assert quality.correctness == pytest.approx(0.5)

    def test_redundant_result_reduces_conciseness(self):
        result = Relation.from_dicts(
            [
                {"title": "Abbey Road", "artist": "The Beatles"},
                {"title": "Abbey Road", "artist": "The Beatles"},
            ],
            name="fused",
        )
        quality = evaluate_fusion(
            result, self.make_truth(), "title", "title", attributes=["artist"]
        )
        assert quality.conciseness == pytest.approx(0.5)

    def test_numeric_tolerance(self):
        result = Relation.from_dicts(
            [{"title": "Abbey Road", "price": 13.0}], name="fused"
        )
        quality = evaluate_fusion(
            result, self.make_truth(), "title", "title", attributes=["price"]
        )
        assert quality.correctness == 1.0

    def test_as_dict(self):
        quality = FusionQuality(1.0, 1.0, 1.0, 2, 2)
        assert quality.as_dict()["tuples"] == 2


class TestTiming:
    def test_timer_records_and_averages(self):
        timer = Timer()
        timer.record("phase", 1.0)
        timer.record("phase", 3.0)
        assert timer.mean("phase") == 2.0
        assert timer.total("phase") == 4.0
        assert timer.as_dict() == {"phase": 2.0}
        assert timer.mean("missing") == 0.0

    def test_timer_measure_returns_result(self):
        timer = Timer()
        assert timer.measure("add", lambda: 1 + 1) == 2
        assert timer.measurements["add"][0] >= 0.0

    def test_time_call(self):
        result, seconds = time_call(lambda: sum(range(100)))
        assert result == 4950
        assert seconds >= 0.0
