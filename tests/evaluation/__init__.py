"""Test package."""
