"""Tests for the character- and token-level string similarity measures."""

import pytest

from repro.similarity import (
    JaccardSimilarity,
    JaroWinklerSimilarity,
    LevenshteinSimilarity,
    MongeElkanSimilarity,
    NgramSimilarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    ngram_similarity,
    normalize_text,
    qgrams,
    tokenize,
)


class TestTokenize:
    def test_normalize_lowercases_and_strips_accents(self):
        assert normalize_text("  Müller   GmbH ") == "muller gmbh"

    def test_normalize_none(self):
        assert normalize_text(None) == ""

    def test_tokenize_alphanumeric(self):
        assert tokenize("Abbey Road (1969)!") == ["abbey", "road", "1969"]

    def test_qgrams_padding(self):
        grams = qgrams("ab", size=3)
        assert "##a" in grams
        assert "b##" in grams

    def test_qgrams_empty(self):
        assert qgrams("") == []

    def test_qgrams_unpadded_short_string(self):
        assert qgrams("ab", size=3, pad=False) == ["ab"]


class TestLevenshtein:
    def test_distance_identical(self):
        assert levenshtein_distance("kitten", "kitten") == 0

    def test_distance_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_distance_empty_strings(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("", "") == 0

    def test_distance_symmetry(self):
        assert levenshtein_distance("flaw", "lawn") == levenshtein_distance("lawn", "flaw")

    def test_similarity_range_and_identity(self):
        assert levenshtein_similarity("HumMer", "hummer") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert 0.0 < levenshtein_similarity("hummer", "hammer") < 1.0

    def test_similarity_both_empty(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_object_wrapper(self):
        assert LevenshteinSimilarity()("same", "same") == 1.0
        # without normalisation, case matters
        assert LevenshteinSimilarity(normalize=False)("ABC", "abc") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_no_match(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("dixon", "dicksonx")
        boosted = jaro_winkler_similarity("dixon", "dicksonx")
        assert boosted > plain

    def test_winkler_classic_value(self):
        assert jaro_winkler_similarity("dixon", "dicksonx") == pytest.approx(0.813, abs=1e-3)

    def test_winkler_bounded_by_one(self):
        assert jaro_winkler_similarity("aaaa", "aaaa") == 1.0

    def test_object_wrapper_normalises(self):
        assert JaroWinklerSimilarity()("MARTHA", "martha") == 1.0


class TestTokenMeasures:
    def test_ngram_identical_and_disjoint(self):
        assert ngram_similarity("database", "database") == 1.0
        assert ngram_similarity("abc", "xyz") == 0.0

    def test_ngram_partial(self):
        assert 0.0 < ngram_similarity("database", "databases") < 1.0

    def test_ngram_empty(self):
        assert ngram_similarity("", "") == 1.0
        assert ngram_similarity("abc", "") == 0.0

    def test_ngram_object(self):
        assert NgramSimilarity(size=2)("ab", "ab") == 1.0

    def test_jaccard(self):
        assert jaccard_similarity("the beatles", "beatles the") == 1.0
        assert jaccard_similarity("miles davis", "john coltrane") == 0.0
        assert jaccard_similarity("", "") == 1.0
        assert jaccard_similarity("a b", "") == 0.0
        assert JaccardSimilarity()("a b c", "a b d") == pytest.approx(0.5)

    def test_dice(self):
        assert dice_similarity("a b", "a c") == pytest.approx(0.5)
        assert dice_similarity("", "") == 1.0

    def test_monge_elkan_tolerates_word_order_and_typos(self):
        straight = levenshtein_similarity("john smith", "smith john")
        hybrid = monge_elkan_similarity("john smith", "smith john")
        assert hybrid > straight
        assert hybrid > 0.9

    def test_monge_elkan_empty(self):
        assert monge_elkan_similarity("", "") == 1.0
        assert monge_elkan_similarity("abc", "") == 0.0

    def test_monge_elkan_asymmetric_option(self):
        directed = monge_elkan_similarity("john", "john smith", symmetric=False)
        assert directed == pytest.approx(1.0)

    def test_monge_elkan_object_with_custom_secondary(self):
        measure = MongeElkanSimilarity(secondary=LevenshteinSimilarity())
        assert measure("abc def", "abc def") == 1.0


class TestSymmetryAndBounds:
    @pytest.mark.parametrize(
        "function",
        [
            levenshtein_similarity,
            jaro_winkler_similarity,
            ngram_similarity,
            jaccard_similarity,
            monge_elkan_similarity,
        ],
    )
    @pytest.mark.parametrize(
        "left,right",
        [
            ("Humboldt Merger", "HumMer"),
            ("data fusion", "datafusion"),
            ("Trondheim", "Tronheim"),
            ("a", "b"),
        ],
    )
    def test_symmetric_and_bounded(self, function, left, right):
        forward = function(left, right)
        backward = function(right, left)
        assert forward == pytest.approx(backward, abs=1e-9)
        assert 0.0 <= forward <= 1.0
