"""Tests for TF-IDF, SoftTFIDF and the numeric/value similarities."""

import datetime

import pytest

from repro.similarity import (
    SoftTfIdfSimilarity,
    TfIdfSimilarity,
    TfIdfVectorizer,
    cosine_similarity,
    date_similarity,
    numeric_similarity,
    value_similarity,
)


CORPUS = [
    "the beatles abbey road",
    "the beatles white album",
    "miles davis kind of blue",
    "john coltrane blue train",
    "miles davis sketches of spain",
]


class TestCosine:
    def test_identical_vectors(self):
        vector = {"a": 0.6, "b": 0.8}
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_vectors(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0


class TestTfIdfVectorizer:
    def test_fit_exposes_vocabulary(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        assert "beatles" in vectorizer.vocabulary
        assert vectorizer.document_count == 5

    def test_transform_is_normalised(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        vector = vectorizer.transform("miles davis kind of blue")
        norm = sum(weight ** 2 for weight in vector.values())
        assert norm == pytest.approx(1.0)

    def test_rare_terms_weigh_more_than_common_ones(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        assert vectorizer.idf("abbey") > vectorizer.idf("the")

    def test_similarity_identical_document(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        assert vectorizer.similarity(CORPUS[0], CORPUS[0]) == pytest.approx(1.0)

    def test_similarity_ranks_related_documents_higher(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        related = vectorizer.similarity("miles davis kind of blue", "miles davis sketches of spain")
        unrelated = vectorizer.similarity("miles davis kind of blue", "the beatles abbey road")
        assert related > unrelated

    def test_empty_document(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        assert vectorizer.transform("") == {}
        assert vectorizer.similarity("", CORPUS[0]) == 0.0

    def test_fit_transform(self):
        vectors = TfIdfVectorizer().fit_transform(CORPUS)
        assert len(vectors) == len(CORPUS)

    def test_unseen_terms_get_default_idf(self):
        vectorizer = TfIdfVectorizer().fit(CORPUS)
        assert vectorizer.idf("zeppelin") > 0

    def test_facade_without_corpus(self):
        assert TfIdfSimilarity()("abbey road", "abbey road") == pytest.approx(1.0)


class TestSoftTfIdf:
    def test_identical_strings(self):
        measure = SoftTfIdfSimilarity(corpus=CORPUS)
        assert measure("kind of blue", "kind of blue") == pytest.approx(1.0, abs=1e-6)

    def test_typo_tolerance_beats_plain_tfidf(self):
        soft = SoftTfIdfSimilarity(corpus=CORPUS)
        plain = TfIdfSimilarity(corpus=CORPUS)
        left, right = "miles davis", "miles daviss"
        assert soft(left, right) > plain(left, right)

    def test_symmetry(self):
        measure = SoftTfIdfSimilarity(corpus=CORPUS)
        assert measure("abbey road", "abbey rd road") == pytest.approx(
            measure("abbey rd road", "abbey road")
        )

    def test_unrelated_strings_score_low(self):
        measure = SoftTfIdfSimilarity(corpus=CORPUS)
        assert measure("abbey road", "kind of blue") < 0.3

    def test_empty_strings(self):
        measure = SoftTfIdfSimilarity(corpus=CORPUS)
        assert measure("", "") == 1.0
        assert measure("abbey road", "") == 0.0

    def test_threshold_controls_fuzzy_credit(self):
        lenient = SoftTfIdfSimilarity(corpus=CORPUS, threshold=0.7)
        strict = SoftTfIdfSimilarity(corpus=CORPUS, threshold=0.99)
        assert lenient("beatles", "beatels") >= strict("beatles", "beatels")

    def test_lazy_fit_without_corpus(self):
        assert SoftTfIdfSimilarity()("abc", "abc") == pytest.approx(1.0, abs=1e-6)


class TestNumericAndValueSimilarity:
    def test_numeric_identical(self):
        assert numeric_similarity(5, 5.0) == 1.0

    def test_numeric_relative(self):
        assert numeric_similarity(10, 9) == pytest.approx(0.9)
        assert numeric_similarity(10, 0) == 0.0

    def test_numeric_scale_decay(self):
        close = numeric_similarity(100, 101, scale=10)
        far = numeric_similarity(100, 150, scale=10)
        assert close > 0.9
        assert far < 0.01

    def test_numeric_with_nulls(self):
        assert numeric_similarity(None, 5) == 0.0

    def test_date_similarity(self):
        day = datetime.date(2005, 1, 1)
        assert date_similarity(day, day) == 1.0
        assert date_similarity(day, datetime.date(2005, 1, 11)) == pytest.approx(1 - 10 / 365)
        assert date_similarity(day, "2004-12-31") > 0.99
        assert date_similarity(day, "garbage") == 0.0

    def test_value_similarity_nulls(self):
        assert value_similarity(None, None) == 1.0
        assert value_similarity(None, "x") == 0.0

    def test_value_similarity_numbers(self):
        assert value_similarity(10, 10) == 1.0
        assert value_similarity(10, 11) == pytest.approx(1 - 1 / 11)

    def test_value_similarity_strings_case_insensitive(self):
        assert value_similarity("Abbey Road", "abbey road") == 1.0

    def test_value_similarity_multiword_uses_hybrid(self):
        assert value_similarity("john smith", "smith john") > 0.9

    def test_value_similarity_booleans(self):
        assert value_similarity(True, True) == 1.0
        assert value_similarity(True, False) == 0.0

    def test_value_similarity_dates(self):
        assert value_similarity(datetime.date(2005, 1, 1), datetime.date(2005, 1, 1)) == 1.0
