"""Property-based tests (hypothesis) for the similarity substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    ngram_similarity,
)
from repro.similarity.tfidf import TfIdfVectorizer

text = st.text(alphabet=string.ascii_letters + string.digits + " ", max_size=30)


class TestLevenshteinProperties:
    @given(text, text)
    @settings(max_examples=80)
    def test_distance_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(text)
    @settings(max_examples=50)
    def test_distance_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(text, text)
    @settings(max_examples=80)
    def test_distance_bounded_by_longer_string(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(text, text, text)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(text, text)
    @settings(max_examples=80)
    def test_similarity_in_unit_interval(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestBoundedSymmetricMeasures:
    @given(text, text)
    @settings(max_examples=60)
    def test_jaro_winkler_bounds_and_symmetry(self, a, b):
        forward = jaro_winkler_similarity(a, b)
        assert 0.0 <= forward <= 1.0 + 1e-9
        assert abs(forward - jaro_winkler_similarity(b, a)) < 1e-9

    @given(text, text)
    @settings(max_examples=60)
    def test_ngram_bounds_and_symmetry(self, a, b):
        forward = ngram_similarity(a, b)
        assert 0.0 <= forward <= 1.0
        assert abs(forward - ngram_similarity(b, a)) < 1e-9

    @given(text, text)
    @settings(max_examples=60)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        forward = jaccard_similarity(a, b)
        assert 0.0 <= forward <= 1.0
        assert abs(forward - jaccard_similarity(b, a)) < 1e-9

    @given(text)
    @settings(max_examples=40)
    def test_self_similarity_is_one(self, a):
        assert jaccard_similarity(a, a) == 1.0
        assert ngram_similarity(a, a) == 1.0
        assert monge_elkan_similarity(a, a) == 1.0


class TestTfIdfProperties:
    @given(st.lists(text, min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_vectors_are_unit_length_or_empty(self, corpus):
        vectorizer = TfIdfVectorizer().fit(corpus)
        for document in corpus:
            vector = vectorizer.transform(document)
            if vector:
                norm = sum(weight ** 2 for weight in vector.values())
                assert abs(norm - 1.0) < 1e-9

    @given(st.lists(text, min_size=2, max_size=8))
    @settings(max_examples=40)
    def test_self_similarity_is_maximal(self, corpus):
        vectorizer = TfIdfVectorizer().fit(corpus)
        for document in corpus:
            if vectorizer.transform(document):
                assert vectorizer.similarity(document, document) > 0.999
