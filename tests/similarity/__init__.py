"""Test package."""
