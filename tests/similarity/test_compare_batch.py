"""Parity tests for the batched similarity kernels (ISSUE 9).

``SimilarityMeasure.compare_batch`` may reorder *work* — dedupe repeated
pairs, pre-tokenise or pre-vectorise each distinct value once — but never
the per-pair arithmetic: every kernel must return **bit-identical** floats
to the per-pair ``compare`` loop, in input order.
"""

import pytest

from repro.similarity import (
    JaccardSimilarity,
    JaroWinklerSimilarity,
    LevenshteinSimilarity,
    SoftTfIdfSimilarity,
    TfIdfSimilarity,
)

CORPUS = [
    "freie universitaet berlin",
    "humboldt universitaet zu berlin",
    "technische universitaet berlin",
    "universitaet potsdam",
    "",
]

# Heavy on repeats and empties — exactly what the dedupe / memoisation
# fast paths reorder internally.
LEFT = [
    "freie universitaet berlin",
    "freie universitaet berlin",
    "",
    "humboldt universitaet",
    "freie universitaet berlin",
    "potsdam",
    "",
]
RIGHT = [
    "freie universitat berlin",
    "freie universitat berlin",
    "",
    "humboldt universitaet",
    "tu berlin",
    "potsdam",
    "berlin",
]


def fitted_measures():
    return [
        LevenshteinSimilarity(),
        LevenshteinSimilarity(normalize=False),
        JaroWinklerSimilarity(),
        JaccardSimilarity(),
        TfIdfSimilarity(corpus=CORPUS),
        SoftTfIdfSimilarity(corpus=CORPUS),
    ]


def unfitted_measures():
    return [TfIdfSimilarity(), SoftTfIdfSimilarity()]


@pytest.mark.parametrize(
    "measure", fitted_measures(), ids=lambda measure: type(measure).__name__
)
class TestBatchParity:
    def test_bit_identical_to_per_pair_loop(self, measure):
        batched = measure.compare_batch(LEFT, RIGHT)
        looped = [measure.compare(left, right) for left, right in zip(LEFT, RIGHT)]
        assert batched == looped  # exact equality, not approx

    def test_empty_batch(self, measure):
        assert measure.compare_batch([], []) == []

    def test_length_mismatch_rejected(self, measure):
        with pytest.raises(ValueError):
            measure.compare_batch(["a"], ["b", "c"])

    def test_identical_pair_scores_once_but_everywhere(self, measure):
        # the same pair repeated must come back repeated, not collapsed
        scores = measure.compare_batch(["x", "x", "x"], ["y", "y", "y"])
        assert len(scores) == 3
        assert scores[0] == scores[1] == scores[2] == measure.compare("x", "y")


@pytest.mark.parametrize(
    "measure", unfitted_measures(), ids=lambda measure: type(measure).__name__
)
class TestUnfittedBatchParity:
    """Unfitted TF-IDF measures fall back to pairwise statistics — the batch
    path must match that fallback exactly too."""

    def test_bit_identical_to_per_pair_loop(self, measure):
        batched = measure.compare_batch(LEFT, RIGHT)
        looped = [measure.compare(left, right) for left, right in zip(LEFT, RIGHT)]
        assert batched == looped


class TestDefaultImplementation:
    def test_base_class_default_loops_compare(self):
        from repro.similarity.base import SimilarityMeasure

        calls = []

        class Recording(SimilarityMeasure):
            def compare(self, left, right):
                calls.append((left, right))
                return 0.5

        scores = Recording().compare_batch(["a", "b"], ["c", "d"])
        assert scores == [0.5, 0.5]
        assert calls == [("a", "c"), ("b", "d")]
