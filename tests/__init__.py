"""Test package."""
