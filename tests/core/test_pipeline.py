"""Tests for the six-step fusion pipeline (Fig. 2)."""

import pytest

from repro.core.fusion import FusionSpec, ResolutionSpec
from repro.core.pipeline import FusionPipeline
from repro.dedup.detector import OBJECT_ID_COLUMN, DuplicateDetector
from repro.exceptions import HummerError
from repro.matching.transform import SOURCE_ID_COLUMN


def make_pipeline(catalog, **overrides):
    """Pipeline over the EE/CS demo tables (default settings)."""
    overrides.setdefault("detector", DuplicateDetector())
    return FusionPipeline(catalog, **overrides)


class TestPipelineSteps:
    def test_choose_sources(self, catalog):
        pipeline = FusionPipeline(catalog)
        sources = pipeline.step_choose_sources(["EE_Students", "CS_Students"])
        assert [s.name for s in sources] == ["EE_Students", "CS_Students"]

    def test_choose_sources_requires_aliases(self, catalog):
        with pytest.raises(HummerError):
            FusionPipeline(catalog).step_choose_sources([])

    def test_schema_matching_step(self, catalog):
        pipeline = FusionPipeline(catalog)
        sources = pipeline.step_choose_sources(["EE_Students", "CS_Students"])
        matching = pipeline.step_schema_matching(sources)
        assert matching is not None
        assert len(matching.correspondences) >= 2

    def test_schema_matching_skipped_for_single_source(self, catalog):
        pipeline = FusionPipeline(catalog)
        sources = pipeline.step_choose_sources(["EE_Students"])
        assert pipeline.step_schema_matching(sources) is None

    def test_transform_step_adds_source_id(self, catalog):
        pipeline = FusionPipeline(catalog)
        sources = pipeline.step_choose_sources(["EE_Students", "CS_Students"])
        matching = pipeline.step_schema_matching(sources)
        combined = pipeline.step_transform(sources, matching)
        assert SOURCE_ID_COLUMN in combined.schema
        assert len(combined) == 7

    def test_detection_step_adds_object_id(self, catalog):
        pipeline = make_pipeline(catalog)
        sources = pipeline.step_choose_sources(["EE_Students", "CS_Students"])
        combined = pipeline.step_transform(sources, pipeline.step_schema_matching(sources))
        selection = pipeline.step_attribute_selection(combined)
        detection = pipeline.step_duplicate_detection(combined, selection)
        assert OBJECT_ID_COLUMN in detection.relation.schema
        # Anna and Ben appear in both faculties: 7 tuples, 5 real persons
        assert detection.cluster_count == 5


class TestPipelineRun:
    def test_full_run_produces_clean_result(self, catalog):
        result = make_pipeline(catalog).run(["EE_Students", "CS_Students"])
        assert len(result.relation) == 5
        assert result.fusion.output_tuple_count == 5
        names = set(result.relation.column("Name"))
        assert "Anna Schmidt" in names
        assert "Elena Wolf" in names

    def test_run_with_explicit_resolution(self, catalog):
        spec = FusionSpec(resolutions=[
            ResolutionSpec("Name"), ResolutionSpec("Age", "max"),
        ])
        result = make_pipeline(catalog).run(["EE_Students", "CS_Students"], spec=spec)
        anna = [row for row in result.relation if row["Name"] == "Anna Schmidt"][0]
        assert anna["Age"] == 23  # max of 22 (EE) and 23 (CS)

    def test_run_single_source_is_identity_modulo_bookkeeping(self, catalog):
        result = FusionPipeline(catalog).run(["EE_Students"])
        assert len(result.relation) == 4
        assert result.matching is None

    def test_timings_are_recorded(self, catalog):
        result = FusionPipeline(catalog).run(["EE_Students", "CS_Students"])
        timings = result.timings.as_dict()
        assert timings["total"] > 0
        assert set(timings) == {
            "fetch",
            "prepare",
            "matching",
            "duplicate_detection",
            "fusion",
            "total",
        }
        assert timings["prepare"] == 0.0  # unprepared pipeline: no prepare phase work

    def test_summary_keys(self, catalog):
        summary = make_pipeline(catalog).run(["EE_Students", "CS_Students"]).summary()
        assert summary["sources"] == 2
        assert summary["input_tuples"] == 7
        assert summary["output_tuples"] == 5

    def test_conflict_report_present(self, catalog):
        result = make_pipeline(catalog).run(["EE_Students", "CS_Students"])
        # Anna's age conflicts between the two faculties
        assert result.conflicts.contradiction_count >= 1


class TestSessionAdjustment:
    """Mid-run adjustment is the session's adjust-then-continue flow."""

    def test_session_can_remove_correspondences(self, catalog):
        session = make_pipeline(catalog).session(["EE_Students", "CS_Students"])
        session.advance_to(session.SCHEMA_MATCHING)
        assert len(session.matching.correspondences) >= 2
        session.matching.correspondences.remove("Age", "Years")
        result = session.run()
        # Years stays a separate column because its correspondence was removed
        assert "Years" in result.transformed.schema

    def test_session_exposes_the_attribute_selection(self, catalog):
        session = make_pipeline(catalog).session(["EE_Students", "CS_Students"])
        session.advance_to(session.ATTRIBUTE_SELECTION)
        assert "Name" in list(session.selection.attributes)

    def test_session_can_reject_every_pair(self, catalog):
        session = make_pipeline(catalog).session(["EE_Students", "CS_Students"])
        session.advance_to(session.DUPLICATE_DETECTION)
        classified = session.detection.classified
        classified.confirm_all(False)
        for pair in list(classified.sure_duplicates):
            classified.sure_duplicates.remove(pair)
            classified.unsure.append(pair)
        classified.confirm_all(False)
        session.apply_duplicate_decisions()
        result = session.run()
        # with every pair rejected, nothing is merged
        assert len(result.relation) == 7
