"""Session snapshot round-trips (``FusionSession.to_dict``/``from_dict``).

ISSUE 7 satellite: a stepped run snapshotted mid-way and restored against a
fresh pipeline resumes to a bit-identical result on the golden fixtures —
the service layer leans on this to survive restarts.
"""

import json
from pathlib import Path

import pytest

from repro.core.fusion import FusionSpec, ResolutionSpec
from repro.core.resolution import ResolutionContext, ResolutionFunction
from repro.core.session import SNAPSHOT_VERSION, FusionSession
from repro.engine.io.csv_source import CsvSource
from repro.exceptions import HummerError
from repro.hummer import HumMer

GOLDEN_DIR = Path(__file__).parent.parent / "fixtures" / "golden"


def golden_hummer() -> HumMer:
    hummer = HumMer()
    hummer.register("crm", CsvSource(GOLDEN_DIR / "crm_customers.csv", name="crm"))
    hummer.register("shop", CsvSource(GOLDEN_DIR / "shop_clients.csv", name="shop"))
    return hummer


def fingerprint(result) -> tuple:
    return (
        sorted(str(c) for c in result.correspondences),
        list(result.relation.column_names),
        [tuple(row) for row in result.relation.rows],
        sorted(result.detection.duplicate_pairs),
        result.detection.cluster_assignment,
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "pause_at",
        ["prepare", "schema_matching", "duplicate_detection", "fusion"],
    )
    def test_resume_is_bit_identical(self, pause_at):
        original = golden_hummer().session(["crm", "shop"])
        original.advance_to(pause_at)
        snapshot = original.to_dict()
        reference = original.run()

        restored = golden_hummer().restore_session(snapshot)
        assert list(restored.completed_steps) == snapshot["completed_steps"]
        assert fingerprint(restored.run()) == fingerprint(reference)

    def test_snapshot_survives_json_serialisation(self):
        session = golden_hummer().session(
            ["crm", "shop"], resolutions={"name": "coalesce", "city": "vote"}
        )
        session.advance_to(session.DUPLICATE_DETECTION)
        wire = json.dumps(session.to_dict())
        reference = session.run()

        restored = golden_hummer().restore_session(json.loads(wire))
        assert fingerprint(restored.run()) == fingerprint(reference)

    def test_completed_session_replays_fully(self):
        original = golden_hummer().session(["crm", "shop"])
        reference = original.run()
        snapshot = original.to_dict()
        assert snapshot["version"] == SNAPSHOT_VERSION

        restored = golden_hummer().restore_session(snapshot)
        assert restored.is_done
        assert fingerprint(restored.result) == fingerprint(reference)

    def test_fresh_session_snapshot_is_resumable(self):
        snapshot = golden_hummer().session(["crm", "shop"]).to_dict()
        assert snapshot["completed_steps"] == []
        assert snapshot["source_digests"] is None
        restored = golden_hummer().restore_session(snapshot)
        assert restored.result is None
        assert len(restored.run().relation) > 0

    def test_spec_with_function_arguments_round_trips(self):
        spec = FusionSpec(
            key_columns=("person",),
            resolutions=[ResolutionSpec("status", ("most_recent", ("updated",)))],
        )
        rows_a = [
            {"person": "Anna", "status": "missing", "updated": "2005-01-02"},
            {"person": "Ben", "status": "safe", "updated": "2005-01-05"},
        ]
        rows_b = [{"person": "Anna", "status": "safe", "updated": "2005-02-20"}]

        def build():
            hummer = HumMer()
            hummer.register("a", rows_a)
            hummer.register("b", rows_b)
            return hummer

        original = build().pipeline().session(["a", "b"], spec=spec, skip_detection=True)
        original.advance_to(original.SCHEMA_MATCHING)
        snapshot = original.to_dict()
        reference = original.run()

        restored = build().restore_session(snapshot)
        name, arguments = restored.spec.resolutions[0].function
        assert (name, list(arguments)) == ("most_recent", ["updated"])
        assert restored.run().relation.rows == reference.relation.rows


class TestDecisions:
    def test_applied_decisions_are_reapplied_on_restore(self, catalog):
        def build():
            hummer = HumMer()
            hummer.register("EE_Students", catalog.fetch("EE_Students"))
            hummer.register("CS_Students", catalog.fetch("CS_Students"))
            return hummer

        original = build().session(["EE_Students", "CS_Students"])
        original.advance_to(original.DUPLICATE_DETECTION)
        classified = original.detection.classified
        classified.confirm_all(False)
        for pair in list(classified.sure_duplicates):
            classified.sure_duplicates.remove(pair)
            classified.unsure.append(pair)
        classified.confirm_all(False)
        original.apply_duplicate_decisions()
        snapshot = original.to_dict()
        assert snapshot["decisions_applied"]
        assert len(snapshot["decisions"]) > 0
        reference = original.run()
        assert len(reference.relation) == 7  # every pair rejected: no merges

        restored = build().restore_session(snapshot)
        assert fingerprint(restored.run()) == fingerprint(reference)

    def test_unapplied_decisions_are_restored_but_not_applied(self, catalog):
        hummer = HumMer()
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        hummer.register("CS_Students", catalog.fetch("CS_Students"))
        original = hummer.session(["EE_Students", "CS_Students"])
        original.advance_to(original.DUPLICATE_DETECTION)
        original.detection.classified.confirm_all(True)
        snapshot = original.to_dict()
        assert not snapshot["decisions_applied"]

        restored = hummer.restore_session(snapshot)
        assert restored.detection.classified.decisions == (
            original.detection.classified.decisions
        )


class TestRejectedSnapshots:
    def test_transform_filter_sessions_cannot_snapshot(self):
        session = golden_hummer().pipeline().session(
            ["crm", "shop"], transform_filter=lambda relation: relation
        )
        with pytest.raises(HummerError, match="transform_filter"):
            session.to_dict()

    def test_live_resolution_function_cannot_snapshot(self):
        class Youngest(ResolutionFunction):
            name = "youngest"

            def resolve(self, context: ResolutionContext):
                return min(context.non_null_values, default=None)

        spec = FusionSpec(resolutions=[ResolutionSpec("age", Youngest())])
        session = golden_hummer().pipeline().session(["crm", "shop"], spec=spec)
        with pytest.raises(HummerError, match="ResolutionFunction"):
            session.to_dict()

    def test_unsupported_version_rejected(self):
        snapshot = golden_hummer().session(["crm", "shop"]).to_dict()
        snapshot["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(HummerError, match="snapshot version"):
            golden_hummer().restore_session(snapshot)

    def test_non_prefix_steps_rejected(self):
        snapshot = golden_hummer().session(["crm", "shop"]).to_dict()
        snapshot["completed_steps"] = ["schema_matching"]
        with pytest.raises(HummerError, match="prefix"):
            golden_hummer().restore_session(snapshot)

    def test_changed_source_data_rejected(self, catalog):
        hummer = HumMer()
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        hummer.register("CS_Students", catalog.fetch("CS_Students"))
        session = hummer.session(["EE_Students", "CS_Students"])
        session.advance_to(session.PREPARE)
        snapshot = session.to_dict()

        drifted = HumMer()
        drifted.register("EE_Students", [{"Name": "Somebody Else", "Age": 99}])
        drifted.register("CS_Students", catalog.fetch("CS_Students"))
        with pytest.raises(HummerError, match="digest"):
            drifted.restore_session(snapshot)


class TestProgressCounters:
    def test_pair_scoring_emits_progress_and_counters(self):
        session = golden_hummer().session(["crm", "shop"])
        events = []
        session.subscribe_progress(events.append)
        session.run()

        scored = [e for e in events if e.phase == "pairs_scored"]
        assert scored, "duplicate detection should report pair-scoring progress"
        assert all(e.step == session.DUPLICATE_DETECTION for e in scored)
        final = scored[-1]
        assert final.done == final.total > 0

        payload = session.step_reports[session.DUPLICATE_DETECTION]["payload"]
        assert payload["pairs_scored"] == final.done
        assert payload["score_batches"] == len(scored)
