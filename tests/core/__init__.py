"""Test package."""
