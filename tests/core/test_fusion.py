"""Tests for the fusion operator, conflicts, and lineage."""

import pytest

from repro.core.conflicts import ConflictKind, find_conflicts
from repro.core.fusion import FusionOperator, FusionSpec, ResolutionSpec, fuse
from repro.core.lineage import trace_cell_lineage
from repro.core.resolution import Choose
from repro.engine.relation import Relation
from repro.exceptions import FusionError


@pytest.fixture
def clustered():
    """A relation as it leaves duplicate detection: sourceID + objectID present."""
    return Relation.from_dicts(
        [
            {"objectID": 0, "name": "Anna Schmidt", "age": 22, "city": "Berlin", "sourceID": "ee"},
            {"objectID": 0, "name": "Anna Schmidt", "age": 23, "city": None, "sourceID": "cs"},
            {"objectID": 1, "name": "Ben Mueller", "age": 25, "city": "Hamburg", "sourceID": "ee"},
            {"objectID": 2, "name": "Elena Wolf", "age": 21, "city": None, "sourceID": "cs"},
        ],
        name="students",
    )


class TestFusionOperator:
    def test_one_tuple_per_object(self, clustered):
        result = fuse(clustered, ["objectID"])
        assert len(result.relation) == 3
        assert result.input_tuple_count == 4
        assert result.compression_ratio == pytest.approx(4 / 3)

    def test_default_coalesce_fills_nulls(self, clustered):
        result = fuse(clustered, ["objectID"])
        anna = result.relation.to_dicts()[0]
        assert anna["city"] == "Berlin"  # null from cs filled by ee

    def test_star_expansion_skips_bookkeeping_columns(self, clustered):
        result = fuse(clustered, ["objectID"])
        assert "sourceID" not in result.relation.schema
        assert set(result.relation.column_names) == {"objectID", "name", "age", "city"}

    def test_explicit_resolution_max(self, clustered):
        result = fuse(clustered, ["objectID"], resolutions={"name": "coalesce", "age": "max"})
        anna = result.relation.to_dicts()[0]
        assert anna["age"] == 23
        assert set(result.relation.column_names) == {"objectID", "name", "age"}

    def test_parameterised_resolution_choose(self, clustered):
        result = fuse(
            clustered,
            ["objectID"],
            resolutions={"age": ("choose", ["cs"]), "name": "coalesce"},
        )
        assert result.relation.to_dicts()[0]["age"] == 23

    def test_resolution_function_instance(self, clustered):
        result = fuse(clustered, ["objectID"], resolutions={"age": Choose("cs")})
        assert result.relation.to_dicts()[0]["age"] == 23

    def test_alias_renames_output_column(self, clustered):
        spec = FusionSpec(
            key_columns=["objectID"],
            resolutions=[ResolutionSpec("age", "max", alias="oldest_age")],
        )
        result = FusionOperator(spec).fuse(clustered)
        assert "oldest_age" in result.relation.schema

    def test_fusing_on_natural_key(self, clustered):
        result = fuse(clustered, ["name"])
        assert len(result.relation) == 3
        assert "name" in result.relation.schema

    def test_missing_key_column_raises(self, clustered):
        with pytest.raises(FusionError):
            fuse(clustered, ["ghost"])

    def test_missing_resolution_column_raises(self, clustered):
        with pytest.raises(FusionError):
            fuse(clustered, ["objectID"], resolutions={"ghost": "max"})

    def test_conflict_count(self, clustered):
        result = fuse(clustered, ["objectID"])
        # only the age of Anna truly conflicts (22 vs 23)
        assert result.resolved_conflict_count == 1

    def test_keep_source_column(self, clustered):
        spec = FusionSpec(key_columns=["objectID"], keep_source_column=True)
        result = FusionOperator(spec).fuse(clustered)
        assert "sourceID" in result.relation.schema

    def test_empty_relation(self):
        relation = Relation.from_dicts([], name="empty")
        relation = relation.with_column("objectID", [])
        result = fuse(relation, ["objectID"])
        assert len(result.relation) == 0


class TestLineage:
    def test_single_source_lineage(self, clustered):
        result = fuse(clustered, ["objectID"])
        lineage = result.lineage.lookup(0, "city")
        assert lineage.sources == frozenset({"ee"})
        assert not lineage.merged
        assert lineage.single_source == "ee"

    def test_merged_lineage_for_computed_values(self, clustered):
        result = fuse(clustered, ["objectID"], resolutions={"age": "avg"})
        lineage = result.lineage.lookup(0, "age")
        assert lineage.sources == frozenset({"ee", "cs"})
        assert lineage.merged

    def test_agreeing_sources_are_both_recorded(self, clustered):
        result = fuse(clustered, ["objectID"])
        lineage = result.lineage.lookup(0, "name")
        assert lineage.sources == frozenset({"ee", "cs"})

    def test_lineage_map_queries(self, clustered):
        result = fuse(clustered, ["objectID"])
        assert set(result.lineage.sources_used()) == {"ee", "cs"}
        assert len(result.lineage) == 3 * 3  # 3 objects x 3 value columns
        assert all(cell.merged for cell in result.lineage.merged_cells())

    def test_trace_null_result_has_empty_lineage(self):
        lineage = trace_cell_lineage("c", 1, None, [None, None], ["a", "b"])
        assert lineage.sources == frozenset()
        assert not lineage.merged


class TestConflictReport:
    def test_find_conflicts_classifies_kinds(self, clustered):
        report = find_conflicts(clustered)
        assert report.cluster_count == 3
        assert report.multi_tuple_cluster_count == 1
        kinds = {(c.column, c.kind) for c in report.conflicts}
        assert ("age", ConflictKind.CONTRADICTION) in kinds
        assert ("city", ConflictKind.UNCERTAINTY) in kinds
        assert all(c.column != "name" for c in report.conflicts)

    def test_counts_and_by_column(self, clustered):
        report = find_conflicts(clustered)
        assert report.contradiction_count == 1
        assert report.uncertainty_count == 1
        assert set(report.by_column()) == {"age", "city"}

    def test_sample_returns_contradictions_only(self, clustered):
        sample = find_conflicts(clustered).sample(5)
        assert all(c.kind is ConflictKind.CONTRADICTION for c in sample)

    def test_ignore_columns(self, clustered):
        report = find_conflicts(clustered, ignore_columns=["age"])
        assert report.contradiction_count == 0

    def test_conflict_str_and_distinct_values(self, clustered):
        report = find_conflicts(clustered)
        conflict = [c for c in report.conflicts if c.column == "age"][0]
        assert set(conflict.distinct_values) == {22, 23}
        assert "age" in str(conflict)

    def test_source_column_absent(self):
        relation = Relation.from_dicts(
            [{"objectID": 0, "v": 1}, {"objectID": 0, "v": 2}], name="r"
        )
        report = find_conflicts(relation)
        assert report.contradiction_count == 1
        assert report.conflicts[0].sources == [None, None]


class TestLazyGroupMaterialisation:
    """Row wrappers and source strings are built per group, only on demand."""

    def test_coalesce_only_fusion_allocates_no_row_wrappers(self, clustered, monkeypatch):
        import repro.core.fusion as fusion_module

        allocations = []
        original_row = fusion_module.Row

        class CountingRow(original_row):
            def __init__(self, schema, values):
                allocations.append(1)
                super().__init__(schema, values)

        monkeypatch.setattr(fusion_module, "Row", CountingRow)
        result = fuse(clustered, ["objectID"])  # every column uses Coalesce
        assert len(result.relation) == 3
        assert allocations == []  # nothing read context.rows

    def test_row_reading_function_still_sees_wrapped_rows(self, clustered, monkeypatch):
        import repro.core.fusion as fusion_module
        from repro.core.resolution.base import ResolutionFunction

        allocations = []
        original_row = fusion_module.Row

        class CountingRow(original_row):
            def __init__(self, schema, values):
                allocations.append(1)
                super().__init__(schema, values)

        class NameFromRows(ResolutionFunction):
            name = "name_from_rows"

            def resolve(self, context):
                return max((row["name"] or "" for row in context.rows), default=None)

        monkeypatch.setattr(fusion_module, "Row", CountingRow)
        result = fuse(clustered, ["objectID"], resolutions={"name": NameFromRows()})
        assert result.relation.column("name") == ["Anna Schmidt", "Ben Mueller", "Elena Wolf"]
        # one wrapper per input tuple of each group, built exactly once
        assert len(allocations) == 4

    def test_lineage_still_records_sources(self, clustered):
        result = fuse(clustered, ["objectID"])
        lineage = result.lineage.lookup(0, "city")
        assert lineage is not None
        assert lineage.sources == frozenset({"ee"})


class TestStreamingFusion:
    """fuse_stream(): group-at-a-time conflict resolution (ISSUE 6 tentpole)."""

    def test_stream_equals_collected_fuse(self, clustered):
        operator = FusionOperator(FusionSpec(key_columns=["objectID"]))
        groups = list(operator.fuse_stream(clustered))
        result = operator.fuse(clustered)
        assert [group.row for group in groups] == result.relation.rows
        assert [group.object_id for group in groups] == [0, 1, 2]
        assert sum(group.resolved_conflicts for group in groups) == (
            result.resolved_conflict_count
        )
        # per-group lineage records are exactly the collected map's cells
        for group in groups:
            for record in group.lineage:
                looked_up = result.lineage.lookup(group.object_id, record.column)
                assert looked_up.sources == record.sources
                assert looked_up.merged == record.merged

    def test_validation_raises_before_iteration(self, clustered):
        operator = FusionOperator(FusionSpec(key_columns=["ghost"]))
        with pytest.raises(FusionError):
            operator.fuse_stream(clustered)  # not: next(...)

        bad_resolution = FusionOperator(
            FusionSpec(key_columns=["objectID"], resolutions=[ResolutionSpec("ghost")])
        )
        with pytest.raises(FusionError):
            bad_resolution.fuse_stream(clustered)

    def test_groups_are_resolved_one_at_a_time(self, clustered, monkeypatch):
        """Pulling k groups resolves exactly k groups' columns — no read-ahead."""
        import repro.core.fusion as fusion_module

        instances = []
        original_context = fusion_module.ResolutionContext

        class CountingContext(original_context):
            def __init__(self, *args, **kwargs):
                instances.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(fusion_module, "ResolutionContext", CountingContext)
        operator = FusionOperator(FusionSpec(key_columns=["objectID"]))
        stream = operator.fuse_stream(clustered)
        assert instances == []  # planning resolves nothing

        value_columns = 3  # name, age, city
        consumed = []
        for expected_groups in (1, 2, 3):
            consumed.append(next(stream))
            assert len(instances) == expected_groups * value_columns
        with pytest.raises(StopIteration):
            next(stream)
        assert len(instances) == 3 * value_columns

    def test_progress_callback_counts_groups(self, clustered):
        events = []
        operator = FusionOperator(FusionSpec(key_columns=["objectID"]))
        operator.progress_callback = lambda phase, done, total: events.append(
            (phase, done, total)
        )
        operator.fuse(clustered)
        assert events == [
            ("groups_resolved", 1, 3),
            ("groups_resolved", 2, 3),
            ("groups_resolved", 3, 3),
        ]

    def test_fused_group_shape(self, clustered):
        operator = FusionOperator(FusionSpec(key_columns=["objectID"]))
        group = next(operator.fuse_stream(clustered))
        assert group.object_id == 0
        assert isinstance(group.row, tuple)
        assert len(group.row) == 4  # objectID + name, age, city
        assert len(group.lineage) == 3
        assert group.resolved_conflicts == 1  # Anna's age (22 vs 23)

    def test_stream_on_empty_relation(self):
        relation = Relation.from_dicts([], name="empty").with_column("objectID", [])
        operator = FusionOperator(FusionSpec(key_columns=["objectID"]))
        assert list(operator.fuse_stream(relation)) == []
