"""Tests for lineage-aware rendering of fused results."""

import pytest

from repro.core.fusion import fuse
from repro.core.rendering import annotate_with_lineage, render_with_lineage
from repro.engine.relation import Relation


@pytest.fixture
def fusion_result():
    relation = Relation.from_dicts(
        [
            {"objectID": 0, "name": "Anna Schmidt", "age": 22, "sourceID": "ee"},
            {"objectID": 0, "name": "Anna Schmidt", "age": 23, "sourceID": "cs"},
            {"objectID": 1, "name": "Ben Mueller", "age": 25, "sourceID": "ee"},
        ],
        name="students",
    )
    return fuse(relation, ["objectID"], resolutions={"name": "coalesce", "age": "avg"})


class TestColourRendering:
    def test_contains_values_and_ansi_codes(self, fusion_result):
        text = render_with_lineage(fusion_result)
        assert "Anna Schmidt" in text
        assert "\x1b[" in text
        assert "legend" in text

    def test_merged_values_are_marked(self, fusion_result):
        text = render_with_lineage(fusion_result)
        # the averaged age combines both sources -> bold/underline style
        assert "\x1b[1;4m" in text

    def test_limit_truncates(self, fusion_result):
        text = render_with_lineage(fusion_result, limit=1)
        assert "more rows" in text

    def test_colour_can_be_disabled(self, fusion_result):
        text = render_with_lineage(fusion_result, use_color=False)
        assert "\x1b[" not in text
        assert "[ee" in text or "[cs" in text


class TestPlainAnnotation:
    def test_values_are_annotated_with_their_sources(self, fusion_result):
        text = annotate_with_lineage(fusion_result)
        assert "Anna Schmidt [cs,ee]" in text or "Anna Schmidt [ee,cs]" in text
        assert "Ben Mueller [ee]" in text

    def test_header_present(self, fusion_result):
        text = annotate_with_lineage(fusion_result)
        assert text.splitlines()[0].startswith("objectID")
