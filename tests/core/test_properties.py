"""Property-based tests (hypothesis) for fusion and resolution invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusion import fuse
from repro.core.resolution import (
    Coalesce,
    Concat,
    First,
    Group,
    Last,
    Longest,
    ResolutionContext,
    Shortest,
    Vote,
)
from repro.engine.operators.union import outer_union
from repro.engine.relation import Relation
from repro.engine.types import is_null

values = st.one_of(
    st.none(),
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet=string.ascii_lowercase + " ", max_size=12),
)


def make_context(vals):
    return ResolutionContext(column="c", values=list(vals), sources=[None] * len(vals))


class TestResolutionFunctionProperties:
    @given(st.lists(values, min_size=1, max_size=10))
    @settings(max_examples=80)
    def test_single_value_strategies_return_an_input_value_or_none(self, vals):
        context = make_context(vals)
        for function in (Coalesce(), First(), Last(), Vote(), Shortest(), Longest()):
            result = function.resolve(context)
            assert result is None or any(
                (not is_null(v)) and str(v) == str(result) for v in vals
            ) or (result is None)

    @given(st.lists(values, min_size=1, max_size=10))
    @settings(max_examples=80)
    def test_coalesce_skips_exactly_the_leading_nulls(self, vals):
        result = Coalesce().resolve(make_context(vals))
        non_null = [v for v in vals if not is_null(v)]
        assert result == (non_null[0] if non_null else None)

    @given(st.lists(values, min_size=1, max_size=10))
    @settings(max_examples=60)
    def test_resolution_is_insensitive_to_duplicated_input_order_for_vote(self, vals):
        # voting twice over the same multiset gives the same winner
        doubled = vals + vals
        assert str(Vote().resolve(make_context(vals))) == str(
            Vote().resolve(make_context(doubled))
        )

    @given(st.lists(values, min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_group_and_concat_cover_all_distinct_values(self, vals):
        context = make_context(vals)
        distinct = context.distinct_values
        concat = Concat().resolve(context)
        if len(distinct) > 1:
            for value in distinct:
                assert str(value) in str(concat)
            grouped = Group().resolve(context)
            assert len(grouped) == len(distinct)


names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def clustered_relations(draw):
    """Random relation with an objectID column and a couple of value columns."""
    n_rows = draw(st.integers(min_value=1, max_value=20))
    n_clusters = draw(st.integers(min_value=1, max_value=max(1, n_rows)))
    rows = []
    for i in range(n_rows):
        rows.append(
            {
                "objectID": draw(st.integers(min_value=0, max_value=n_clusters - 1)),
                "a": draw(values),
                "b": draw(values),
            }
        )
    return Relation.from_dicts(rows, name="clustered")


class TestFusionInvariants:
    @given(clustered_relations())
    @settings(max_examples=60, deadline=None)
    def test_one_output_tuple_per_cluster(self, relation):
        result = fuse(relation, ["objectID"])
        cluster_count = len(set(relation.column("objectID")))
        assert len(result.relation) == cluster_count
        assert result.output_tuple_count == cluster_count
        assert result.input_tuple_count == len(relation)

    @given(clustered_relations())
    @settings(max_examples=60, deadline=None)
    def test_default_fusion_values_come_from_the_cluster(self, relation):
        result = fuse(relation, ["objectID"])
        by_cluster = {}
        for row in relation:
            by_cluster.setdefault(row["objectID"], []).append(row)
        for fused_row in result.relation:
            members = by_cluster[fused_row["objectID"]]
            for column in ("a", "b"):
                value = fused_row[column]
                if is_null(value):
                    # every member must be null in that column (coalesce semantics)
                    assert all(is_null(member[column]) for member in members)
                else:
                    assert any(
                        (not is_null(member[column])) and str(member[column]) == str(value)
                        for member in members
                    )

    @given(clustered_relations())
    @settings(max_examples=40, deadline=None)
    def test_fusion_is_idempotent(self, relation):
        once = fuse(relation, ["objectID"]).relation
        twice = fuse(once, ["objectID"]).relation
        assert len(once) == len(twice)
        assert sorted(map(str, once.rows)) == sorted(map(str, twice.rows))


@st.composite
def relation_pairs(draw):
    """Two relations with partially overlapping schemata."""
    shared = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    only_left = draw(st.lists(names, max_size=2, unique=True))
    only_right = draw(st.lists(names, max_size=2, unique=True))
    left_columns = list(dict.fromkeys(shared + only_left))
    right_columns = list(dict.fromkeys(shared + only_right))

    def build(columns, count):
        rows = [{c: draw(values) for c in columns} for _ in range(count)]
        relation = Relation.from_dicts(rows, name="r")
        if not rows:
            relation = Relation(columns, [], name="r")
        return relation

    left = build(left_columns, draw(st.integers(min_value=0, max_value=6)))
    right = build(right_columns, draw(st.integers(min_value=0, max_value=6)))
    return left, right


class TestOuterUnionProperties:
    @given(relation_pairs())
    @settings(max_examples=60, deadline=None)
    def test_outer_union_preserves_all_tuples_and_columns(self, pair):
        left, right = pair
        result = outer_union([left, right])
        assert len(result) == len(left) + len(right)
        for column in list(left.schema.names) + list(right.schema.names):
            assert result.schema.has_column(column)

    @given(relation_pairs())
    @settings(max_examples=60, deadline=None)
    def test_outer_union_pads_missing_columns_with_null(self, pair):
        left, right = pair
        result = outer_union([left, right])
        only_right = [
            c.name for c in right.schema if not left.schema.has_column(c.name)
        ]
        for index in range(len(left)):
            for column in only_right:
                assert is_null(result.cell(index, column))
