"""Tests for the stateful wizard session (``repro.core.session``).

The acceptance bar of ISSUE 5: a manually stepped :class:`FusionSession`
and :meth:`FusionPipeline.run` produce bit-identical results on the golden
fixtures, and the adjust-then-continue flow replaces the deprecated
``adjust_*`` mutation callbacks.
"""

from pathlib import Path

import pytest

from repro.config import DedupConfig, FusionConfig, ResolutionConfig
from repro.core.pipeline import FusionPipeline, PipelineResult
from repro.core.session import DONE, SESSION_STEPS, FusionSession, StageEvent
from repro.engine.io.csv_source import CsvSource
from repro.exceptions import HummerError
from repro.hummer import HumMer

GOLDEN_DIR = Path(__file__).parent.parent / "fixtures" / "golden"


def golden_hummer() -> HumMer:
    hummer = HumMer()
    hummer.register("crm", CsvSource(GOLDEN_DIR / "crm_customers.csv", name="crm"))
    hummer.register("shop", CsvSource(GOLDEN_DIR / "shop_clients.csv", name="shop"))
    return hummer


def fingerprint(result: PipelineResult) -> tuple:
    """Everything the candidate stage influences, for bit-identity checks."""
    return (
        sorted(str(c) for c in result.correspondences),
        list(result.relation.column_names),
        [tuple(row) for row in result.relation.rows],
        sorted(result.detection.duplicate_pairs),
        result.detection.cluster_assignment,
        result.detection.filter_statistics.as_dict(),
    )


class TestStateMachine:
    def test_steps_execute_in_order(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        seen = []
        for expected in SESSION_STEPS:
            assert session.current_step == expected
            assert not session.is_done
            session.advance()
            seen.append(expected)
        assert session.current_step == DONE
        assert session.is_done
        assert list(session.completed_steps) == list(SESSION_STEPS)
        assert seen == list(SESSION_STEPS)

    def test_artefacts_accumulate_per_step(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        assert session.sources is None
        session.advance()  # choose_sources
        assert [s.name for s in session.sources] == ["EE_Students", "CS_Students"]
        session.advance()  # prepare (no-op: unprepared pipeline)
        assert session.prepared is None
        session.advance()  # schema_matching
        assert len(session.matching.correspondences) >= 2
        session.advance()  # attribute_selection
        assert session.transformed is not None
        assert len(session.selection) > 0
        session.advance()  # duplicate_detection
        assert session.detection.cluster_count == 5
        session.advance()  # conflict_resolution
        assert session.conflicts.contradiction_count >= 1
        session.advance()  # fusion
        assert session.result is not None
        assert len(session.result.relation) == 5

    def test_advance_returns_the_step_artefact(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students"])
        sources = session.advance()
        assert sources is session.sources

    def test_advance_to(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        matching = session.advance_to(FusionSession.SCHEMA_MATCHING)
        assert matching is session.matching
        assert session.current_step == FusionSession.ATTRIBUTE_SELECTION

    def test_advance_to_rejects_completed_and_unknown_steps(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students"])
        session.advance_to(FusionSession.SCHEMA_MATCHING)
        with pytest.raises(HummerError, match="already executed"):
            session.advance_to(FusionSession.CHOOSE_SOURCES)
        with pytest.raises(HummerError, match="unknown session step"):
            session.advance_to("transmogrify")

    def test_sessions_are_single_use(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students"])
        session.run()
        with pytest.raises(HummerError, match="complete"):
            session.advance()

    def test_run_finishes_from_any_point(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        session.advance_to(FusionSession.DUPLICATE_DETECTION)
        result = session.run()
        assert result is session.result
        assert len(result.relation) == 5


class TestEvents:
    def test_every_step_emits_one_event(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        events = []
        session.subscribe(events.append)
        session.run()
        assert [event.step for event in events] == list(SESSION_STEPS)
        assert [event.index for event in events] == list(range(1, len(SESSION_STEPS) + 1))
        assert all(event.total == len(SESSION_STEPS) for event in events)
        assert all(isinstance(event, StageEvent) for event in events)
        assert all(event.seconds >= 0.0 for event in events)

    def test_event_payloads_carry_step_reports(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        by_step = {}
        session.subscribe(lambda event: by_step.__setitem__(event.step, event))
        session.run()
        assert by_step["choose_sources"].payload["tuples"] == 7
        assert by_step["schema_matching"].payload["correspondences"] >= 2
        assert "Name" in by_step["attribute_selection"].payload["attributes"]
        detection = by_step["duplicate_detection"].payload
        assert detection["clusters"] == 5
        assert detection["compared_pairs"] <= detection["candidate_pairs"]
        assert detection["clustering"] == "transitive"
        assert detection["largest_cluster"] == 2
        assert detection["chains_split"] == 0
        assert by_step["conflict_resolution"].payload["contradictions"] >= 1
        assert by_step["fusion"].payload["output_tuples"] == 5

    def test_unsubscribe(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students"])
        events = []
        unsubscribe = session.subscribe(events.append)
        session.advance()
        unsubscribe()
        session.run()
        assert len(events) == 1


class TestProgressEvents:
    """ISSUE 6 satellite: intra-step progress streams out of long steps."""

    def test_progress_streams_during_matching_and_fusion(self, catalog):
        from repro.core.session import ProgressEvent

        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        events = []
        session.subscribe_progress(events.append)
        session.run()

        assert events
        assert all(isinstance(event, ProgressEvent) for event in events)
        phases = {event.phase for event in events}
        assert {"seeds_scored", "field_matrices", "groups_resolved"} <= phases
        by_phase = {}
        for event in events:
            by_phase.setdefault(event.phase, []).append(event)
        # cumulative counters: strictly increasing within each phase
        for phase_events in by_phase.values():
            dones = [event.done for event in phase_events]
            assert dones == sorted(dones)
            assert dones[0] >= 1
        # phases are attributed to their steps
        assert all(
            event.step == FusionSession.SCHEMA_MATCHING
            for event in by_phase["seeds_scored"] + by_phase["field_matrices"]
        )
        assert all(
            event.step == FusionSession.FUSION
            for event in by_phase["groups_resolved"]
        )
        # one group event per output tuple (5 clusters)
        assert by_phase["groups_resolved"][-1].done == 5

    def test_stage_payloads_carry_intra_step_counters(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        by_step = {}
        session.subscribe(lambda event: by_step.__setitem__(event.step, event))
        session.run()
        matching = by_step["schema_matching"].payload
        assert matching["seeds_scored"] >= 1
        assert matching["field_matrices"] >= 1
        assert matching["seed_candidates"] >= matching["seed_cosines"] >= 1
        assert by_step["fusion"].payload["groups_resolved"] == 5

    def test_unsubscribe_progress(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        events = []
        unsubscribe = session.subscribe_progress(events.append)
        session.advance_to(FusionSession.SCHEMA_MATCHING)
        count_after_matching = len(events)
        assert count_after_matching > 0
        unsubscribe()
        session.run()
        assert len(events) == count_after_matching

    def test_callbacks_restored_after_matching_step(self, catalog):
        pipeline = FusionPipeline(catalog)
        session = pipeline.session(["EE_Students", "CS_Students"])
        session.subscribe_progress(lambda event: None)
        session.advance_to(FusionSession.SCHEMA_MATCHING)
        assert pipeline.matcher.progress_callback is None
        assert pipeline.matcher.seeder.progress_callback is None
        assert pipeline.matcher.seeder.scoring_listener is None

    def test_skip_detection_fusion_still_reports_groups(self, catalog):
        session = FusionPipeline(catalog).session(
            ["EE_Students"], skip_detection=True, skip_conflicts=True
        )
        from repro.core.fusion import FusionSpec

        session.spec = FusionSpec(key_columns=["Name"])
        by_step = {}
        session.subscribe(lambda event: by_step.__setitem__(event.step, event))
        session.run()
        assert by_step["fusion"].payload["groups_resolved"] == 4

    def test_query_executor_forwards_progress(self, hummer):
        from repro.core.session import ProgressEvent

        events = []
        hummer._executor.progress_listener = events.append
        hummer.query("SELECT * FUSE FROM EE_Students, CS_Students")
        assert events
        assert all(isinstance(event, ProgressEvent) for event in events)
        assert {"seeds_scored", "groups_resolved"} <= {e.phase for e in events}


class TestAdjustThenContinue:
    def test_adjust_matching_between_advances(self, catalog):
        """The session replaces the adjust_matching mutation callback."""
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        session.advance_to(FusionSession.SCHEMA_MATCHING)
        session.matching.correspondences.remove("Age", "Years")
        result = session.run()
        # Years stays a separate column because its correspondence was removed
        assert "Years" in result.transformed.schema

    def test_adjust_selection_between_advances(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        session.advance_to(FusionSession.ATTRIBUTE_SELECTION)
        assert "Name" in session.selection.attributes
        result = session.run()
        assert result.attribute_selection is session.selection

    def test_decide_duplicates_then_recluster(self, catalog):
        """The session replaces the adjust_duplicates callback + redetect."""
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        session.advance_to(FusionSession.DUPLICATE_DETECTION)
        classified = session.detection.classified
        classified.confirm_all(False)
        for pair in list(classified.sure_duplicates):
            classified.sure_duplicates.remove(pair)
            classified.unsure.append(pair)
        classified.confirm_all(False)
        session.apply_duplicate_decisions()
        result = session.run()
        # with every pair rejected, nothing is merged
        assert len(result.relation) == 7

    def test_decisions_require_a_detection(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        with pytest.raises(HummerError, match="no duplicate detection"):
            session.apply_duplicate_decisions()

    def test_decisions_rejected_after_fusion_ran(self, catalog):
        session = FusionPipeline(catalog).session(["EE_Students", "CS_Students"])
        session.run()
        with pytest.raises(HummerError, match="before conflict"):
            session.apply_duplicate_decisions()


class TestParity:
    def test_manual_session_is_bit_identical_to_pipeline_run(self):
        """ISSUE 5 acceptance: stepping manually == FusionPipeline.run."""
        manual = golden_hummer().session(["crm", "shop"])
        while not manual.is_done:
            manual.advance()
        automatic = golden_hummer().fuse(["crm", "shop"])
        assert fingerprint(manual.result) == fingerprint(automatic)

    def test_session_run_is_bit_identical_to_fuse(self):
        assert fingerprint(golden_hummer().session(["crm", "shop"]).run()) == \
            fingerprint(golden_hummer().fuse(["crm", "shop"]))

    def test_timings_phases_are_preserved(self, catalog):
        result = FusionPipeline(catalog).session(["EE_Students", "CS_Students"]).run()
        timings = result.timings.as_dict()
        assert set(timings) == {
            "fetch", "prepare", "matching", "duplicate_detection", "fusion", "total",
        }
        assert timings["prepare"] == 0.0  # unprepared session: no prepare work


class TestSkipConflicts:
    def test_skip_conflicts_leaves_the_report_out(self, catalog):
        """The SQL query path opts out of conflict sampling (it never paid
        for the report pre-session) — detection and fusion still run."""
        session = FusionPipeline(catalog).session(
            ["EE_Students", "CS_Students"], skip_conflicts=True
        )
        result = session.run()
        assert result.conflicts is None
        assert result.detection.cluster_count == 5
        assert len(result.relation) == 5

    def test_query_path_produces_the_same_relation(self, catalog):
        """skip_conflicts changes reporting, never the fused rows."""
        full = FusionPipeline(catalog).session(["EE_Students", "CS_Students"]).run()
        skipped = FusionPipeline(catalog).session(
            ["EE_Students", "CS_Students"], skip_conflicts=True
        ).run()
        assert [tuple(r) for r in skipped.relation.rows] == [
            tuple(r) for r in full.relation.rows
        ]


class TestPipelineConfig:
    def test_pipeline_rejects_mismatched_artifact_dir(self, catalog, tmp_path):
        """config.prepare.artifact_dir must match the catalog's store, not be
        silently ignored."""
        from repro.config import PrepareConfig
        from repro.exceptions import ConfigError

        config = FusionConfig(
            prepare=PrepareConfig(mode="lazy", artifact_dir=str(tmp_path))
        )
        with pytest.raises(ConfigError, match="artifact_dir"):
            FusionPipeline(catalog, config=config)

    def test_pipeline_accepts_matching_artifact_dir(self, tmp_path):
        from repro.config import PrepareConfig
        from repro.engine.catalog import Catalog

        config = FusionConfig(
            prepare=PrepareConfig(mode="lazy", artifact_dir=str(tmp_path))
        )
        pipeline = FusionPipeline(Catalog(artifact_dir=str(tmp_path)), config=config)
        assert pipeline.preparer is not None


class TestConfiguredSessions:
    def test_hummer_session_uses_the_config_tree(self, catalog):
        hummer = HumMer(config=FusionConfig(dedup=DedupConfig(blocking="snm")))
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        hummer.register("CS_Students", catalog.fetch("CS_Students"))
        session = hummer.session(["EE_Students", "CS_Students"])
        result = session.run()
        assert result.detection.cluster_count == 5
        assert session.pipeline.detector.blocking.name == "snm"

    def test_config_default_resolutions_apply(self, catalog):
        config = FusionConfig(
            resolution=ResolutionConfig(
                resolutions={"Name": "coalesce", "Age": "max"}
            )
        )
        hummer = HumMer(config=config)
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        hummer.register("CS_Students", catalog.fetch("CS_Students"))
        result = hummer.fuse(["EE_Students", "CS_Students"])
        by_name = {row["Name"]: row["Age"] for row in result.relation}
        assert by_name["Anna Schmidt"] == 23  # max of 22 (EE) and 23 (CS)

    def test_explicit_resolutions_override_config(self, catalog):
        config = FusionConfig(
            resolution=ResolutionConfig(
                resolutions={"Name": "coalesce", "Age": "max"}
            )
        )
        hummer = HumMer(config=config)
        hummer.register("EE_Students", catalog.fetch("EE_Students"))
        hummer.register("CS_Students", catalog.fetch("CS_Students"))
        result = hummer.fuse(
            ["EE_Students", "CS_Students"],
            resolutions={"Name": "coalesce", "Age": "min"},
        )
        by_name = {row["Name"]: row["Age"] for row in result.relation}
        assert by_name["Anna Schmidt"] == 22
