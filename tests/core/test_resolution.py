"""Tests for the conflict-resolution functions and the registry."""

import pytest

from repro.core.resolution import (
    AnnotatedConcat,
    Choose,
    ChooseSourceOrder,
    Coalesce,
    Concat,
    First,
    Group,
    Last,
    Longest,
    Midrange,
    MostPrecise,
    MostRecent,
    ResolutionContext,
    ResolutionFunction,
    ResolutionRegistry,
    Shortest,
    TrimmedMean,
    Vote,
    build_default_registry,
    default_registry,
)
from repro.engine.relation import Row
from repro.engine.schema import Schema
from repro.exceptions import ResolutionError, UnknownResolutionFunctionError


def make_context(values, sources=None, rows=None, column="price", metadata=None):
    return ResolutionContext(
        column=column,
        values=list(values),
        rows=rows or [],
        sources=list(sources) if sources else [None] * len(values),
        object_id=1,
        table_name="fused",
        metadata=metadata or {},
    )


class TestContext:
    def test_non_null_and_distinct(self):
        context = make_context([None, "a", "b", "a"])
        assert context.non_null_values == ["a", "b", "a"]
        assert context.distinct_values == ["a", "b"]

    def test_conflict_and_uncertainty_flags(self):
        assert make_context(["a", "b"]).has_conflict
        assert not make_context(["a", "a"]).has_conflict
        assert make_context(["a", None]).is_uncertain
        assert not make_context(["a", "a"]).is_uncertain

    def test_numeric_values_compare_by_value(self):
        assert make_context([2, 2.0]).distinct_values == [2]

    def test_value_for_source(self):
        context = make_context([9.99, 10.49], sources=["a", "b"])
        assert context.value_for_source("b") == 10.49
        assert context.value_for_source("ghost") is None


class TestPaperFunctions:
    def test_coalesce_first_non_null(self):
        assert Coalesce()(make_context([None, None, "x", "y"])) == "x"
        assert Coalesce()(make_context([None, None])) is None

    def test_first_and_last_keep_nulls(self):
        assert First()(make_context([None, "x"])) is None
        assert Last()(make_context(["x", None])) is None
        assert First()(make_context([])) is None

    def test_vote_majority(self):
        assert Vote()(make_context(["a", "b", "a", None])) == "a"

    def test_vote_tie_prefers_first_seen(self):
        assert Vote()(make_context(["b", "a"])) == "b"

    def test_vote_all_null(self):
        assert Vote()(make_context([None, None])) is None

    def test_group_returns_all_conflicting_values(self):
        result = Group()(make_context(["b", "a", "b"]))
        assert result == ("a", "b")
        assert Group()(make_context(["only", None])) == "only"
        assert Group()(make_context([None])) is None

    def test_concat(self):
        assert Concat()(make_context(["x", "y", "x"])) == "x, y"
        assert Concat(separator=" | ")(make_context(["x", "y"])) == "x | y"
        assert Concat()(make_context(["single"])) == "single"

    def test_annotated_concat_includes_sources(self):
        result = AnnotatedConcat()(make_context([9.99, 10.49], sources=["store_a", "store_b"]))
        assert "9.99 [store_a]" in result
        assert "10.49 [store_b]" in result
        assert AnnotatedConcat()(make_context([None], sources=["a"])) is None

    def test_shortest_and_longest(self):
        context = make_context(["J. Smith", "John Smith", None])
        assert Shortest()(context) == "J. Smith"
        assert Longest()(context) == "John Smith"
        assert Shortest()(make_context([None])) is None

    def test_choose_prefers_requested_source(self):
        context = make_context([12.0, 9.5], sources=["expensive", "cheap"])
        assert Choose("cheap")(context) == 9.5
        assert Choose("expensive")(context) == 12.0

    def test_choose_falls_back_unless_strict(self):
        context = make_context([None, 9.5], sources=["preferred", "other"])
        assert Choose("preferred")(context) == 9.5
        assert Choose("preferred", strict=True)(context) is None

    def test_choose_requires_source(self):
        with pytest.raises(ResolutionError):
            Choose("")

    def test_choose_source_order(self):
        context = make_context([None, 2.0, 3.0], sources=["a", "b", "c"])
        assert ChooseSourceOrder("a", "c", "b")(context) == 3.0

    def test_most_recent_uses_recency_column(self):
        schema = Schema(["status", "updated"])
        rows = [Row(schema, ("missing", "2005-01-02")), Row(schema, ("safe", "2005-02-10"))]
        context = make_context(["missing", "safe"], rows=rows, column="status")
        assert MostRecent("updated")(context) == "safe"

    def test_most_recent_via_metadata(self):
        schema = Schema(["status", "updated"])
        rows = [Row(schema, ("a", "2005-03-01")), Row(schema, ("b", "2005-01-01"))]
        context = make_context(
            ["a", "b"], rows=rows, column="status", metadata={"recency_column": "updated"}
        )
        assert MostRecent()(context) == "a"

    def test_most_recent_numeric_recency(self):
        schema = Schema(["value", "version"])
        rows = [Row(schema, ("old", 1)), Row(schema, ("new", 7))]
        context = make_context(["old", "new"], rows=rows, column="value")
        assert MostRecent("version")(context) == "new"

    def test_most_recent_without_column_raises(self):
        with pytest.raises(ResolutionError):
            MostRecent()(make_context(["a"]))

    def test_most_recent_falls_back_when_recency_unusable(self):
        schema = Schema(["value", "updated"])
        rows = [Row(schema, ("a", "???")), Row(schema, ("b", None))]
        context = make_context(["a", "b"], rows=rows, column="value")
        assert MostRecent("updated")(context) == "a"


class TestNumericExtensions:
    def test_trimmed_mean(self):
        assert TrimmedMean()(make_context([1.0, 100.0, 2.0, 3.0])) == pytest.approx(2.5)
        assert TrimmedMean()(make_context([1.0, 2.0])) == pytest.approx(1.5)
        assert TrimmedMean()(make_context(["abc"])) is None

    def test_midrange(self):
        assert Midrange()(make_context([1, 5, 3])) == 3.0

    def test_most_precise(self):
        assert MostPrecise()(make_context([9.5, 9.4999, 10])) == 9.4999


class TestRegistry:
    def test_default_registry_contains_paper_functions(self):
        registry = default_registry()
        for name in [
            "coalesce", "first", "last", "vote", "group", "concat",
            "annotated_concat", "shortest", "longest", "choose", "most_recent",
            "min", "max", "sum", "avg",
        ]:
            assert registry.has(name), name

    def test_get_standard_aggregate_behaves_like_aggregate(self):
        registry = build_default_registry()
        assert registry.get("max").resolve(make_context([1, 5, None])) == 5
        assert registry.get("avg").resolve(make_context([2, 4])) == 3

    def test_parameterised_lookup(self):
        registry = build_default_registry()
        function = registry.get("choose", "cheap_store")
        context = make_context([3.0, 1.0], sources=["x", "cheap_store"])
        assert function.resolve(context) == 1.0

    def test_unknown_function_raises_with_suggestions(self):
        registry = build_default_registry()
        with pytest.raises(UnknownResolutionFunctionError) as excinfo:
            registry.get("frobnicate")
        assert "coalesce" in str(excinfo.value)

    def test_register_custom_function(self):
        class PreferEven(ResolutionFunction):
            """Prefers even numbers (toy custom strategy)."""

            name = "prefer_even"

            def resolve(self, context):
                for value in context.non_null_values:
                    if isinstance(value, int) and value % 2 == 0:
                        return value
                return None

        registry = build_default_registry()
        registry.register(PreferEven())
        assert registry.get("prefer_even").resolve(make_context([3, 4])) == 4

    def test_duplicate_registration_rejected(self):
        registry = build_default_registry()
        with pytest.raises(ResolutionError):
            registry.register(Coalesce())
        registry.register(Coalesce(), replace=True)  # explicit replace is allowed

    def test_register_callable(self):
        registry = ResolutionRegistry()
        registry.register_callable("always_42", lambda values: 42)
        assert registry.get("always_42").resolve(make_context(["x"])) == 42

    def test_names_and_container_protocol(self):
        registry = build_default_registry()
        assert "vote" in registry
        assert "nonexistent" not in registry
        assert len(registry) == len(registry.names())
        assert sorted(iter(registry)) == registry.names()

    def test_function_without_name_rejected(self):
        class Nameless(ResolutionFunction):
            name = ""

            def resolve(self, context):
                return None

        with pytest.raises(ResolutionError):
            ResolutionRegistry().register(Nameless())

    def test_describe(self):
        assert "non-null" in Coalesce().describe().lower() or Coalesce().describe()
