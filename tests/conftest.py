"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import cd_stores_scenario, students_scenario
from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType
from repro.hummer import HumMer


@pytest.fixture
def people_relation() -> Relation:
    """A small typed relation used across engine tests."""
    schema = Schema(
        [
            Column("name", DataType.STRING),
            Column("age", DataType.INTEGER),
            Column("city", DataType.STRING),
            Column("salary", DataType.FLOAT),
        ]
    )
    rows = [
        ("Alice", 34, "Berlin", 52000.0),
        ("Bob", 28, "Hamburg", 48000.0),
        ("Carol", 41, "Berlin", 61000.0),
        ("Dave", 28, None, 39000.0),
        ("Eve", None, "Munich", 45500.0),
    ]
    return Relation(schema, rows, name="people")


@pytest.fixture
def ee_students() -> Relation:
    """The paper's EE_Students example table (preferred schema)."""
    return Relation.from_dicts(
        [
            {"Name": "Anna Schmidt", "Age": 22, "Major": "Electrical Engineering",
             "Email": "anna.schmidt@hu-berlin.de"},
            {"Name": "Ben Mueller", "Age": 25, "Major": "Electrical Engineering",
             "Email": "ben.mueller@hu-berlin.de"},
            {"Name": "Carla Weber", "Age": 23, "Major": "Electrical Engineering",
             "Email": "carla.weber@hu-berlin.de"},
            {"Name": "David Fischer", "Age": 27, "Major": "Electrical Engineering",
             "Email": "david.fischer@hu-berlin.de"},
        ],
        name="EE_Students",
    )


@pytest.fixture
def cs_students() -> Relation:
    """The paper's CS_Students example table (heterogeneous schema, overlapping people)."""
    return Relation.from_dicts(
        [
            {"StudentName": "Anna Schmidt", "Years": 23, "Field": "Computer Science",
             "Mail": "anna.schmidt@hu-berlin.de"},
            {"StudentName": "Ben Mueller", "Years": 25, "Field": "Computer Science",
             "Mail": "ben.mueller@hu-berlin.de"},
            {"StudentName": "Elena Wolf", "Years": 21, "Field": "Computer Science",
             "Mail": "elena.wolf@hu-berlin.de"},
        ],
        name="CS_Students",
    )


@pytest.fixture
def small_students_dataset():
    """A generated students dataset with ground truth (small, fast)."""
    return students_scenario(entity_count=30, corruption=CorruptionConfig.low(), seed=5)


@pytest.fixture
def small_cds_dataset():
    """A generated CD-store dataset with ground truth (small, fast)."""
    return cd_stores_scenario(
        entity_count=40, store_count=2, corruption=CorruptionConfig.low(), seed=9
    )


@pytest.fixture
def catalog(ee_students, cs_students) -> Catalog:
    """A catalog with the EE/CS student tables registered."""
    cat = Catalog()
    cat.register("EE_Students", ee_students)
    cat.register("CS_Students", cs_students)
    return cat


@pytest.fixture
def hummer(ee_students, cs_students) -> HumMer:
    """A HumMer instance with the EE/CS student tables registered."""
    instance = HumMer()
    instance.register("EE_Students", ee_students)
    instance.register("CS_Students", cs_students)
    return instance
