"""Value corruption operators.

Given a clean value, a :class:`Corruptor` produces a "dirty" variant the way
real heterogeneous sources do: typos (insertion, deletion, substitution,
transposition), case and formatting changes, abbreviations, token swaps,
numeric noise, and dropped (null) values.  The corruption intensity is
controlled by :class:`CorruptionConfig`; all randomness flows through one
seeded :class:`random.Random` so generated data sets are reproducible.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.types import is_null

__all__ = ["CorruptionConfig", "Corruptor"]


@dataclass
class CorruptionConfig:
    """Probabilities of the individual corruption operators.

    All probabilities are evaluated independently per cell; set everything to
    0 for clean copies, raise them for increasingly dirty data.  The presets
    :meth:`low`, :meth:`medium` and :meth:`high` are the corruption levels
    used by experiment E2.
    """

    typo_probability: float = 0.15
    missing_probability: float = 0.08
    case_change_probability: float = 0.1
    abbreviation_probability: float = 0.1
    token_swap_probability: float = 0.05
    numeric_noise_probability: float = 0.15
    numeric_noise_scale: float = 0.05
    conflicting_value_probability: float = 0.1

    @classmethod
    def clean(cls) -> "CorruptionConfig":
        """No corruption at all (exact duplicates)."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @classmethod
    def low(cls) -> "CorruptionConfig":
        """Mild corruption: occasional typo or missing value."""
        return cls(0.05, 0.03, 0.05, 0.03, 0.02, 0.05, 0.02, 0.05)

    @classmethod
    def medium(cls) -> "CorruptionConfig":
        """Default corruption level."""
        return cls()

    @classmethod
    def high(cls) -> "CorruptionConfig":
        """Heavy corruption: frequent typos, missing and conflicting values."""
        return cls(0.3, 0.15, 0.2, 0.2, 0.1, 0.3, 0.15, 0.25)


class Corruptor:
    """Applies the corruption operators of a :class:`CorruptionConfig`."""

    def __init__(self, config: Optional[CorruptionConfig] = None, seed: int = 0):
        self.config = config or CorruptionConfig()
        self.random = random.Random(seed)

    # -- public API ------------------------------------------------------------

    def corrupt_value(self, value: Any) -> Any:
        """Return a corrupted variant of *value* (possibly unchanged or ``None``)."""
        if is_null(value):
            return value
        config = self.config
        if self.random.random() < config.missing_probability:
            return None
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return self._corrupt_number(value)
        return self._corrupt_text(str(value))

    # -- text corruption ----------------------------------------------------------

    def _corrupt_text(self, text: str) -> str:
        config = self.config
        result = text
        if self.random.random() < config.abbreviation_probability:
            result = self._abbreviate(result)
        if self.random.random() < config.token_swap_probability:
            result = self._swap_tokens(result)
        if self.random.random() < config.typo_probability:
            result = self._typo(result)
        if self.random.random() < config.case_change_probability:
            result = self._change_case(result)
        return result

    def _typo(self, text: str) -> str:
        if not text:
            return text
        kind = self.random.choice(("insert", "delete", "substitute", "transpose"))
        position = self.random.randrange(len(text))
        letters = string.ascii_lowercase
        if kind == "insert":
            return text[:position] + self.random.choice(letters) + text[position:]
        if kind == "delete" and len(text) > 1:
            return text[:position] + text[position + 1 :]
        if kind == "substitute":
            return text[:position] + self.random.choice(letters) + text[position + 1 :]
        if kind == "transpose" and position < len(text) - 1:
            return (
                text[:position]
                + text[position + 1]
                + text[position]
                + text[position + 2 :]
            )
        return text

    def _abbreviate(self, text: str) -> str:
        tokens = text.split()
        if len(tokens) < 2:
            return text[: max(1, len(text) // 2)] + "." if len(text) > 4 else text
        index = self.random.randrange(len(tokens))
        token = tokens[index]
        if len(token) > 2:
            tokens[index] = token[0] + "."
        return " ".join(tokens)

    def _swap_tokens(self, text: str) -> str:
        tokens = text.split()
        if len(tokens) < 2:
            return text
        i = self.random.randrange(len(tokens) - 1)
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
        return " ".join(tokens)

    def _change_case(self, text: str) -> str:
        choice = self.random.choice(("upper", "lower", "title"))
        if choice == "upper":
            return text.upper()
        if choice == "lower":
            return text.lower()
        return text.title()

    # -- numeric corruption -----------------------------------------------------------

    def _corrupt_number(self, value):
        config = self.config
        if self.random.random() >= config.numeric_noise_probability:
            return value
        scale = abs(value) * config.numeric_noise_scale
        if scale == 0:
            scale = config.numeric_noise_scale
        noise = self.random.uniform(-scale, scale)
        if isinstance(value, int):
            return int(round(value + noise)) if abs(noise) >= 0.5 else value
        return round(value + noise, 2)

    # -- conflicts ------------------------------------------------------------------------

    def should_conflict(self) -> bool:
        """Whether the generator should substitute a genuinely different value."""
        return self.random.random() < self.config.conflicting_value_probability
