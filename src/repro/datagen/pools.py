"""Value pools for synthetic entity generation.

Small but varied pools of names, places, artists, titles and courses used by
the scenario builders.  Entities combine pool values with generated numbers,
so arbitrarily many distinct entities can be produced from the finite pools.
"""

from __future__ import annotations

FIRST_NAMES = [
    "Anna", "Ben", "Carla", "David", "Elena", "Felix", "Greta", "Hannes",
    "Ines", "Jonas", "Katrin", "Lars", "Maria", "Nils", "Olga", "Peter",
    "Quinn", "Rosa", "Stefan", "Tina", "Ulrich", "Vera", "Wolfgang", "Xenia",
    "Yusuf", "Zoe", "Alexander", "Melanie", "Jens", "Christoph", "Karsten",
    "Louiqa", "Laura", "Marc", "Nadia", "Oscar", "Paula", "Rafael", "Sonia",
    "Tomas",
]

LAST_NAMES = [
    "Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer", "Wagner",
    "Becker", "Schulz", "Hoffmann", "Koch", "Bauer", "Richter", "Klein",
    "Wolf", "Neumann", "Schwarz", "Zimmermann", "Braun", "Krueger", "Hofmann",
    "Hartmann", "Lange", "Werner", "Krause", "Lehmann", "Naumann", "Bilke",
    "Weis", "Bleiholder", "Draba", "Boehm", "Peterson", "Johnson", "Garcia",
    "Martinez", "Anderson", "Taylor", "Thomas", "Moore",
]

CITIES = [
    "Berlin", "Hamburg", "Munich", "Cologne", "Frankfurt", "Stuttgart",
    "Duesseldorf", "Dortmund", "Essen", "Leipzig", "Bremen", "Dresden",
    "Hannover", "Nuremberg", "Potsdam", "Trondheim", "Oslo", "Tokyo",
    "Baltimore", "Asilomar", "Banda Aceh", "Phuket", "Colombo", "Chennai",
]

STREETS = [
    "Unter den Linden", "Friedrichstrasse", "Hauptstrasse", "Bahnhofstrasse",
    "Schlossallee", "Gartenweg", "Lindenallee", "Marktplatz", "Ringstrasse",
    "Bergstrasse", "Kirchgasse", "Museumsinsel", "Alexanderplatz",
    "Invalidenstrasse", "Dorotheenstrasse", "Mohrenstrasse",
]

UNIVERSITIES = [
    "Humboldt-Universitaet zu Berlin", "Technische Universitaet Berlin",
    "Freie Universitaet Berlin", "Universitaet Potsdam",
    "Universitaet Leipzig", "TU Muenchen", "RWTH Aachen",
    "Universitaet Hamburg",
]

MAJORS = [
    "Computer Science", "Electrical Engineering", "Mathematics", "Physics",
    "Information Systems", "Mechanical Engineering", "Biology", "Chemistry",
    "Economics", "Philosophy",
]

COURSES = [
    "Database Systems", "Information Integration", "Data Quality",
    "Distributed Systems", "Algorithms and Data Structures",
    "Machine Learning", "Operating Systems", "Compiler Construction",
    "Computer Networks", "Software Engineering", "Information Retrieval",
    "Data Warehousing",
]

CD_ARTISTS = [
    "The Beatles", "Miles Davis", "Johann Sebastian Bach", "Nina Simone",
    "Radiohead", "Bjork", "Herbert Groenemeyer", "Die Aerzte", "Daft Punk",
    "Johnny Cash", "Aretha Franklin", "John Coltrane", "Kraftwerk",
    "Ella Fitzgerald", "David Bowie", "Portishead", "Massive Attack",
    "Wolfgang Amadeus Mozart", "Ludwig van Beethoven", "Billie Holiday",
]

CD_TITLES = [
    "Abbey Road", "Kind of Blue", "Goldberg Variations", "Pastel Blues",
    "OK Computer", "Homogenic", "Mensch", "Geraeusch", "Discovery",
    "At Folsom Prison", "Lady Soul", "A Love Supreme", "Autobahn",
    "Ella and Louis", "Heroes", "Dummy", "Mezzanine", "Requiem",
    "Symphony No 9", "Lady in Satin", "Blue Train", "The White Album",
    "Unplugged", "Greatest Hits", "Live in Berlin",
]

CD_LABELS = [
    "EMI", "Columbia", "Deutsche Grammophon", "Verve", "Parlophone",
    "Island", "Sony Classical", "Blue Note", "Motown", "Virgin",
]

HOSPITAL_NAMES = [
    "Charite Campus Mitte", "Vivantes Klinikum", "St. Hedwig Hospital",
    "Provincial General Hospital", "District Field Hospital",
    "Red Cross Camp A", "Red Cross Camp B", "Coastal Relief Clinic",
]

DAMAGE_TYPES = [
    "house destroyed", "house damaged", "boat lost", "crops flooded",
    "shop destroyed", "vehicle lost", "livestock lost", "well contaminated",
]

GENRES = [
    "Rock", "Jazz", "Classical", "Pop", "Electronic", "Soul", "Blues",
    "Hip-Hop", "Folk",
]
