"""Synthetic dirty-data generation with known ground truth.

The original demo used CD-store, student and tsunami-relief data sets that
are not publicly available.  This package generates synthetic equivalents:
clean entities are drawn from value pools, distributed over several sources
with configurable overlap, and then *corrupted* (typos, abbreviations,
formatting changes, missing values, conflicting values) and *renamed*
(schematic heterogeneity) per source.  Because the generator knows which
source tuples stem from which entity, every experiment can report precision
and recall against ground truth — something the demo paper itself never had.
"""

from repro.datagen.corruptor import CorruptionConfig, Corruptor
from repro.datagen.generator import DirtySourceGenerator, GeneratedDataset, GroundTruth
from repro.datagen.scenarios import (
    cd_stores_scenario,
    crisis_scenario,
    students_scenario,
    thalia_scenario,
)

__all__ = [
    "CorruptionConfig",
    "Corruptor",
    "DirtySourceGenerator",
    "GeneratedDataset",
    "GroundTruth",
    "cd_stores_scenario",
    "students_scenario",
    "crisis_scenario",
    "thalia_scenario",
]
