"""Dirty-source generation with ground truth.

:class:`DirtySourceGenerator` takes clean entities (dictionaries with an
``_entity`` identifier), distributes them over several sources with a
configurable overlap, corrupts the copies and optionally renames / drops
attributes per source (schematic heterogeneity).  The resulting
:class:`GeneratedDataset` bundles the source relations with a
:class:`GroundTruth` that experiments evaluate against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datagen.corruptor import CorruptionConfig, Corruptor
from repro.engine.relation import Relation

__all__ = ["SourceSpec", "GroundTruth", "GeneratedDataset", "DirtySourceGenerator"]

ENTITY_KEY = "_entity"


@dataclass
class SourceSpec:
    """How one generated source deviates from the canonical schema.

    Attributes:
        name: source alias.
        rename: canonical attribute → this source's label.
        drop: canonical attributes this source does not carry.
        coverage: fraction of the assigned entities the source actually
            contains (simulates incomplete sources).
        corruption: corruption level for this source's values.
    """

    name: str
    rename: Dict[str, str] = field(default_factory=dict)
    drop: List[str] = field(default_factory=list)
    coverage: float = 1.0
    corruption: Optional[CorruptionConfig] = None


@dataclass
class GroundTruth:
    """What the generator knows and the pipeline must rediscover."""

    #: (source alias, row index) → entity id, for every generated tuple.
    entity_of: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: canonical attribute → {source alias: source attribute label}.
    attribute_map: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: entity id → canonical clean record.
    clean_records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: chain-corruption bridges as (foreign entity, bridged entity, source
    #: alias, row index): the bridged entity's record at (source, row) had
    #: its chain fields overwritten with the foreign entity's clean values.
    chain_bridges: List[Tuple[str, str, str, int]] = field(default_factory=list)

    def duplicate_pairs_within(self, relation_rows: Sequence[Tuple[str, int]]) -> Set[Tuple[int, int]]:
        """True duplicate index pairs among *relation_rows* (ordered (source, row) keys).

        *relation_rows* lists, for each tuple of a combined relation (e.g. the
        outer union), the (source alias, original row index) it came from, in
        the combined relation's row order.
        """
        entities = [self.entity_of.get(key) for key in relation_rows]
        pairs: Set[Tuple[int, int]] = set()
        by_entity: Dict[str, List[int]] = {}
        for index, entity in enumerate(entities):
            if entity is None:
                continue
            by_entity.setdefault(entity, []).append(index)
        for indices in by_entity.values():
            for i in range(len(indices)):
                for j in range(i + 1, len(indices)):
                    pairs.add((indices[i], indices[j]))
        return pairs

    def true_correspondences(self, preferred: str, other: str) -> Set[Tuple[str, str]]:
        """True attribute label pairs (preferred label, other label) shared by two sources."""
        pairs: Set[Tuple[str, str]] = set()
        for canonical, labels in self.attribute_map.items():
            if preferred in labels and other in labels:
                pairs.add((labels[preferred], labels[other]))
        return pairs

    def entity_count(self) -> int:
        """Number of distinct entities that appear in at least one source."""
        return len({entity for entity in self.entity_of.values()})


@dataclass
class GeneratedDataset:
    """Generated sources plus their ground truth."""

    sources: Dict[str, Relation]
    truth: GroundTruth
    #: (source alias, row index) in outer-union order — convenience for evaluation.
    row_origin: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def source_list(self) -> List[Relation]:
        """The source relations, in generation order."""
        return list(self.sources.values())

    def combined_row_origin(self) -> List[Tuple[str, int]]:
        """(source, row) keys in the order an outer union over ``source_list`` produces."""
        if self.row_origin:
            return self.row_origin
        origin: List[Tuple[str, int]] = []
        for name, relation in self.sources.items():
            origin.extend((name, index) for index in range(len(relation)))
        return origin


class DirtySourceGenerator:
    """Generates heterogeneous, dirty, overlapping sources from clean entities.

    Args:
        source_specs: one :class:`SourceSpec` per source to generate.
        overlap: fraction of entities that appear in more than one source
            (these are the cross-source duplicates).
        conflict_fields: attributes whose values may genuinely differ between
            copies (beyond formatting noise), producing data conflicts.
        default_corruption: corruption level for sources without their own.
        seed: master random seed (all randomness is derived from it).
        chain_fraction: fraction of the multi-record entities drawn into
            chain corruption: for each chained pair of distinct entities
            (A, B), one of B's records gets its *chain_fields* overwritten
            with A's clean values.  The record still identifies as B (name
            and the remaining fields are untouched), but now shares
            near-duplicate secondary values with A — the borderline bridge
            that makes transitive closure merge A and B into one cluster.
        chain_fields: the canonical attributes a bridge record copies from
            the foreign entity.  Required when *chain_fraction* is positive;
            must not include every identifying field, or the bridge record
            stops belonging to its own entity.
    """

    def __init__(
        self,
        source_specs: Sequence[SourceSpec],
        overlap: float = 0.3,
        conflict_fields: Sequence[str] = (),
        default_corruption: Optional[CorruptionConfig] = None,
        seed: int = 0,
        chain_fraction: float = 0.0,
        chain_fields: Sequence[str] = (),
    ):
        if not source_specs:
            raise ValueError("need at least one source spec")
        if not 0.0 <= overlap <= 1.0:
            raise ValueError("overlap must lie in [0, 1]")
        if not 0.0 <= chain_fraction <= 1.0:
            raise ValueError("chain_fraction must lie in [0, 1]")
        if chain_fraction > 0.0 and not chain_fields:
            raise ValueError("chain corruption needs chain_fields to overwrite")
        self.source_specs = list(source_specs)
        self.overlap = overlap
        self.conflict_fields = list(conflict_fields)
        self.default_corruption = default_corruption or CorruptionConfig.medium()
        self.seed = seed
        self.chain_fraction = chain_fraction
        self.chain_fields = list(chain_fields)
        self.random = random.Random(seed)

    def generate(self, entities: Sequence[Mapping[str, Any]]) -> GeneratedDataset:
        """Distribute, corrupt and relabel *entities* into the configured sources."""
        entities = [dict(entity) for entity in entities]
        for index, entity in enumerate(entities):
            entity.setdefault(ENTITY_KEY, f"entity_{index:05d}")

        assignments = self._assign_entities(entities)
        truth = GroundTruth()
        for entity in entities:
            truth.clean_records[entity[ENTITY_KEY]] = {
                key: value for key, value in entity.items() if key != ENTITY_KEY
            }

        canonical_attributes = self._canonical_attributes(entities)
        records_by_source: Dict[str, List[Dict[str, Any]]] = {}
        for spec_index, spec in enumerate(self.source_specs):
            corruptor = Corruptor(
                spec.corruption or self.default_corruption,
                seed=self.seed * 1009 + spec_index * 131 + 7,
            )
            conflict_random = random.Random(self.seed * 7919 + spec_index * 17 + 3)
            records: List[Dict[str, Any]] = []
            for entity in assignments[spec.name]:
                record = self._make_source_record(
                    entity, spec, canonical_attributes, corruptor, conflict_random
                )
                truth.entity_of[(spec.name, len(records))] = entity[ENTITY_KEY]
                records.append(record)
            records_by_source[spec.name] = records
            for canonical in canonical_attributes:
                if canonical in spec.drop:
                    continue
                label = spec.rename.get(canonical, canonical)
                truth.attribute_map.setdefault(canonical, {})[spec.name] = label
        if self.chain_fraction > 0.0:
            self._apply_chain_corruption(records_by_source, truth)
        sources: Dict[str, Relation] = {}
        row_origin: List[Tuple[str, int]] = []
        for spec in self.source_specs:
            relation = Relation.from_dicts(records_by_source[spec.name], name=spec.name)
            sources[spec.name] = relation
            row_origin.extend((spec.name, index) for index in range(len(relation)))
        return GeneratedDataset(sources=sources, truth=truth, row_origin=row_origin)

    def _apply_chain_corruption(
        self,
        records_by_source: Dict[str, List[Dict[str, Any]]],
        truth: GroundTruth,
    ) -> None:
        """Turn some records into bridges between two distinct entities.

        Pairs up multi-record entities (A, B) and overwrites the chain
        fields of one of B's records with A's clean values.  The bridge
        record keeps B's remaining (identifying) fields, so a pairwise
        matcher scores it high against B's other records and borderline
        against A's — exactly the topology where transitive closure chains
        A and B into one bogus cluster.
        """
        rows_of: Dict[str, List[Tuple[str, int]]] = {}
        for (source, row), entity in truth.entity_of.items():
            rows_of.setdefault(entity, []).append((source, row))
        eligible = sorted(entity for entity, rows in rows_of.items() if len(rows) >= 2)
        pair_count = int(len(eligible) * self.chain_fraction) // 2
        if pair_count == 0:
            return
        chain_random = random.Random(self.seed * 6151 + 29)
        chain_random.shuffle(eligible)
        specs_by_name = {spec.name: spec for spec in self.source_specs}
        for index in range(pair_count):
            foreign, bridged = eligible[2 * index], eligible[2 * index + 1]
            source, row = chain_random.choice(sorted(rows_of[bridged]))
            spec = specs_by_name[source]
            record = records_by_source[source][row]
            clean = truth.clean_records[foreign]
            for canonical in self.chain_fields:
                if canonical in spec.drop or canonical not in clean:
                    continue
                label = spec.rename.get(canonical, canonical)
                record[label] = clean[canonical]
            truth.chain_bridges.append((foreign, bridged, source, row))

    # -- helpers -----------------------------------------------------------------------

    def _canonical_attributes(self, entities: Sequence[Mapping[str, Any]]) -> List[str]:
        attributes: List[str] = []
        seen = set()
        for entity in entities:
            for key in entity:
                if key == ENTITY_KEY or key in seen:
                    continue
                seen.add(key)
                attributes.append(key)
        return attributes

    def _assign_entities(
        self, entities: Sequence[Dict[str, Any]]
    ) -> Dict[str, List[Dict[str, Any]]]:
        """Decide which entities appear in which sources."""
        names = [spec.name for spec in self.source_specs]
        assignments: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
        for entity in entities:
            if len(names) > 1 and self.random.random() < self.overlap:
                count = self.random.randint(2, len(names))
                chosen = self.random.sample(names, count)
            else:
                chosen = [self.random.choice(names)]
            for name in chosen:
                assignments[name].append(entity)
        # apply per-source coverage
        for spec in self.source_specs:
            if spec.coverage >= 1.0:
                continue
            kept = [
                entity
                for entity in assignments[spec.name]
                if self.random.random() < spec.coverage
            ]
            assignments[spec.name] = kept
        # keep source order deterministic but shuffle rows inside each source
        for name in names:
            self.random.shuffle(assignments[name])
        return assignments

    def _make_source_record(
        self,
        entity: Dict[str, Any],
        spec: SourceSpec,
        canonical_attributes: Sequence[str],
        corruptor: Corruptor,
        conflict_random: random.Random,
    ) -> Dict[str, Any]:
        record: Dict[str, Any] = {}
        for canonical in canonical_attributes:
            if canonical in spec.drop:
                continue
            label = spec.rename.get(canonical, canonical)
            value = entity.get(canonical)
            if canonical in self.conflict_fields and corruptor.should_conflict():
                value = self._conflicting_value(value, conflict_random)
            record[label] = corruptor.corrupt_value(value)
        return record

    @staticmethod
    def _conflicting_value(value: Any, rng: random.Random) -> Any:
        """A genuinely different value of the same type (a data conflict)."""
        if value is None:
            return None
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value + rng.choice([-3, -2, -1, 1, 2, 3])
        if isinstance(value, float):
            return round(value * rng.uniform(0.7, 1.3) + rng.uniform(0.5, 3.0), 2)
        text = str(value)
        suffixes = [" (deluxe)", " Vol. 2", " - remastered", " jr.", " II", " (import)"]
        return text + rng.choice(suffixes)
