"""Scenario builders matching the paper's motivating applications.

* :func:`cd_stores_scenario` — catalog integration / shopping agents
  comparing CDs offered by several online stores.
* :func:`students_scenario` — the paper's running example
  (``EE_Students`` / ``CS_Students`` fused by name).
* :func:`crisis_scenario` — the tsunami-relief application: damage /
  missing-person reports collected multiple times at different levels of
  detail and accuracy.
* :func:`thalia_scenario` — university course catalogs exhibiting the twelve
  THALIA heterogeneity classes.
"""

from repro.datagen.scenarios.cds import cd_stores_scenario
from repro.datagen.scenarios.students import students_scenario
from repro.datagen.scenarios.crisis import crisis_scenario
from repro.datagen.scenarios.thalia import thalia_scenario, THALIA_CATEGORIES

__all__ = [
    "cd_stores_scenario",
    "students_scenario",
    "crisis_scenario",
    "thalia_scenario",
    "THALIA_CATEGORIES",
]
