"""Tsunami-relief (crisis data) scenario.

"In the affected area, data about damages, missing persons, hospital
treatments etc. is often collected multiple times (causing duplicates) at
different levels of detail (causing schematic heterogeneity) and with
different levels of accuracy (causing data conflicts)." (paper §1)

Three collecting organisations report about the same affected persons: a
field hospital, a relief NGO and an insurance registry, each with its own
schema, partial coverage and recency.  The ``reported_on`` date makes the
``most_recent`` resolution strategy meaningful.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Optional

from repro.datagen import pools
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.generator import DirtySourceGenerator, GeneratedDataset, SourceSpec

__all__ = ["crisis_scenario"]


def _make_reports(entity_count: int, rng: random.Random) -> List[Dict]:
    base_date = datetime.date(2004, 12, 26)
    reports = []
    for index in range(entity_count):
        first = rng.choice(pools.FIRST_NAMES)
        last = rng.choice(pools.LAST_NAMES)
        status = rng.choice(["missing", "injured", "safe", "hospitalised", "deceased"])
        reports.append(
            {
                "_entity": f"person_{index:05d}",
                "person_name": f"{first} {last}",
                "home_city": rng.choice(pools.CITIES),
                "status": status,
                "hospital": rng.choice(pools.HOSPITAL_NAMES) if status == "hospitalised" else None,
                "damage": rng.choice(pools.DAMAGE_TYPES),
                "estimated_loss": round(rng.uniform(500, 50000), 2),
                "reported_on": (base_date + datetime.timedelta(days=rng.randint(0, 60))).isoformat(),
                "contact_phone": f"+49-30-{rng.randint(1000000, 9999999)}",
            }
        )
    return reports


def crisis_scenario(
    entity_count: int = 100,
    overlap: float = 0.6,
    corruption: Optional[CorruptionConfig] = None,
    seed: int = 23,
) -> GeneratedDataset:
    """Generate three overlapping crisis-report sources about the same persons."""
    rng = random.Random(seed)
    reports = _make_reports(entity_count, rng)
    specs = [
        SourceSpec(
            name="field_hospital",
            rename={"person_name": "patient", "home_city": "origin"},
            drop=["damage", "estimated_loss"],
            coverage=0.9,
            corruption=corruption,
        ),
        SourceSpec(
            name="relief_ngo",
            rename={"person_name": "full_name", "estimated_loss": "loss_usd"},
            drop=["hospital"],
            coverage=0.95,
            corruption=corruption,
        ),
        SourceSpec(
            name="insurance_registry",
            rename={
                "person_name": "insured_person",
                "damage": "damage_category",
                "estimated_loss": "claim_amount",
            },
            drop=["hospital", "status"],
            coverage=0.7,
            corruption=corruption,
        ),
    ]
    generator = DirtySourceGenerator(
        specs,
        overlap=overlap,
        conflict_fields=["status", "estimated_loss", "reported_on"],
        default_corruption=corruption or CorruptionConfig.medium(),
        seed=seed,
    )
    return generator.generate(reports)
