"""CD-store catalog integration scenario.

"Catalog integration is a typical one-time problem ... it is also of interest
for shopping agents collecting data about identical products offered at
different sites.  A customer shopping for CDs might want to supply only the
different sites to search on. ... possibly favoring the data of the cheapest
store." (paper §1)

The scenario generates a configurable number of online CD stores with
different schemata (one uses ``artist``/``title``/``price``, another
``interpret``/``album``/``cost`` etc.), overlapping catalogs, price conflicts
and the usual dirtiness.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.datagen import pools
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.generator import DirtySourceGenerator, GeneratedDataset, SourceSpec

__all__ = ["cd_stores_scenario"]

#: Per-store schema variations: canonical attribute → store label.
_STORE_SCHEMAS = [
    {},  # first store keeps the canonical (preferred) schema
    {"artist": "interpret", "title": "album", "price": "cost", "year": "released"},
    {"artist": "performer", "title": "cd_title", "price": "amount_eur", "label": "record_label"},
    {"artist": "act", "title": "recording", "genre": "style", "price": "list_price"},
    {"title": "product_name", "price": "sales_price", "year": "release_year"},
    {"artist": "band", "label": "publisher", "genre": "category"},
]


def _make_catalog(entity_count: int, rng: random.Random) -> List[Dict]:
    catalog = []
    for index in range(entity_count):
        artist = rng.choice(pools.CD_ARTISTS)
        title = rng.choice(pools.CD_TITLES)
        catalog.append(
            {
                "_entity": f"cd_{index:05d}",
                "artist": artist,
                "title": f"{title} {index % 7 + 1}" if index >= len(pools.CD_TITLES) else title,
                "year": rng.randint(1960, 2005),
                "genre": rng.choice(pools.GENRES),
                "label": rng.choice(pools.CD_LABELS),
                "price": round(rng.uniform(5.99, 24.99), 2),
                "tracks": rng.randint(8, 22),
            }
        )
    return catalog


def cd_stores_scenario(
    entity_count: int = 120,
    store_count: int = 3,
    overlap: float = 0.5,
    corruption: Optional[CorruptionConfig] = None,
    seed: int = 7,
) -> GeneratedDataset:
    """Generate *store_count* CD-store catalogs sharing *overlap* of their CDs.

    Price and year are declared conflict fields: the same CD may genuinely
    cost different amounts at different stores, which is what the
    ``choose('cheapest_store')`` / ``min`` resolution strategies act on.
    """
    if store_count < 1:
        raise ValueError("store_count must be at least 1")
    rng = random.Random(seed)
    catalog = _make_catalog(entity_count, rng)
    store_names = [f"cd_store_{chr(ord('a') + index)}" for index in range(store_count)]
    specs = []
    for index, name in enumerate(store_names):
        schema = _STORE_SCHEMAS[index % len(_STORE_SCHEMAS)]
        specs.append(
            SourceSpec(
                name=name,
                rename=dict(schema),
                drop=["tracks"] if index % 3 == 2 else [],
                coverage=1.0,
                corruption=corruption,
            )
        )
    generator = DirtySourceGenerator(
        specs,
        overlap=overlap,
        conflict_fields=["price", "year"],
        default_corruption=corruption or CorruptionConfig.medium(),
        seed=seed,
    )
    return generator.generate(catalog)
