"""EE / CS students scenario — the paper's running example.

    SELECT Name, RESOLVE(Age, max)
    FUSE FROM EE_Students, CS_Students
    FUSE BY (Name)

Two faculty databases store partially overlapping student populations
(double-major students appear in both) under slightly different schemata and
with conflicting ages (one database is out of date: "students only get
older").
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.datagen import pools
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.generator import DirtySourceGenerator, GeneratedDataset, SourceSpec

__all__ = ["students_scenario"]


def _make_students(entity_count: int, rng: random.Random) -> List[Dict]:
    students = []
    for index in range(entity_count):
        first = rng.choice(pools.FIRST_NAMES)
        last = rng.choice(pools.LAST_NAMES)
        students.append(
            {
                "_entity": f"student_{index:05d}",
                "name": f"{first} {last}",
                "age": rng.randint(18, 34),
                "major": rng.choice(pools.MAJORS),
                "university": rng.choice(pools.UNIVERSITIES),
                "city": rng.choice(pools.CITIES),
                "semester": rng.randint(1, 12),
                "email": f"{first.lower()}.{last.lower()}{index % 97}@example.edu",
            }
        )
    return students


def students_scenario(
    entity_count: int = 150,
    overlap: float = 0.35,
    corruption: Optional[CorruptionConfig] = None,
    seed: int = 11,
    chain_fraction: float = 0.0,
    chain_fields: Sequence[str] = ("email", "university", "city", "semester"),
) -> GeneratedDataset:
    """Generate the ``EE_Students`` / ``CS_Students`` pair with overlapping students.

    Age and semester are conflict fields (outdated records), matching the
    paper's ``RESOLVE(Age, max)`` example.  A positive *chain_fraction*
    plants bridge records that copy another student's *chain_fields*
    (name stays the student's own), the pathology that makes transitive
    closure chain two distinct students into one cluster.
    """
    rng = random.Random(seed)
    students = _make_students(entity_count, rng)
    specs = [
        SourceSpec(name="EE_Students", rename={}, corruption=corruption),
        SourceSpec(
            name="CS_Students",
            rename={
                "name": "student_name",
                "age": "years",
                "major": "field_of_study",
                "email": "mail",
            },
            drop=["city"],
            corruption=corruption,
        ),
    ]
    generator = DirtySourceGenerator(
        specs,
        overlap=overlap,
        conflict_fields=["age", "semester"],
        default_corruption=corruption or CorruptionConfig.low(),
        seed=seed,
        chain_fraction=chain_fraction,
        chain_fields=chain_fields,
    )
    return generator.generate(students)
