"""THALIA-style heterogeneity scenario.

The demo planned to "show examples taken from the recent THALIA benchmark for
information integration" (Hammer, Stonebraker & Topsakal, ICDE 2005).  THALIA
catalogues twelve classes of syntactic and semantic heterogeneity between
university course catalogs.  The original benchmark data is not redistributed
here; instead this module *generates* pairs of course-catalog sources that
exhibit each heterogeneity class, so experiment E5 can report which classes
the automatic pipeline bridges.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.datagen import pools
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.generator import DirtySourceGenerator, GeneratedDataset, SourceSpec

__all__ = ["THALIA_CATEGORIES", "thalia_scenario"]

#: The twelve THALIA heterogeneity classes (queries 1-12 of the benchmark).
THALIA_CATEGORIES: Dict[int, str] = {
    1: "synonyms — attributes with different names but the same meaning",
    2: "simple mapping — values related by a mathematical transformation",
    3: "union types — attribute types differ across sources",
    4: "complex mappings — values related by a non-trivial transformation",
    5: "language expression — names/values expressed in different languages",
    6: "nulls — a value exists in one source and is missing in the other",
    7: "virtual columns — information only implicit in one source",
    8: "semantic incompatibility — modelling concepts differ",
    9: "same attribute in different structure — placement differs",
    10: "handling sets — sets represented differently",
    11: "attribute names do not define semantics — opaque labels",
    12: "attribute composition — one attribute is split over several",
}

#: Which categories the fully automatic pipeline is expected to bridge.
#: (Instance-based matching handles renamed/opaque labels and nulls; value
#: transformations and structural reorganisation need mapping logic HumMer
#: leaves to the user.)
AUTOMATABLE_CATEGORIES = {1, 5, 6, 11}


def _make_courses(entity_count: int, rng: random.Random) -> List[Dict]:
    courses = []
    for index in range(entity_count):
        title = pools.COURSES[index % len(pools.COURSES)]
        level = rng.choice(["undergraduate", "graduate"])
        courses.append(
            {
                "_entity": f"course_{index:05d}",
                "title": f"{title} {index // len(pools.COURSES) + 1}"
                if index >= len(pools.COURSES)
                else title,
                "instructor": f"{rng.choice(pools.FIRST_NAMES)} {rng.choice(pools.LAST_NAMES)}",
                "credits": rng.choice([3, 4, 6, 8]),
                "level": level,
                "room": f"{rng.choice('ABCDE')}-{rng.randint(100, 499)}",
                "times": f"{rng.choice(['Mon', 'Tue', 'Wed', 'Thu', 'Fri'])} "
                f"{rng.randint(8, 16)}:00",
            }
        )
    return courses


def thalia_scenario(
    category: int,
    entity_count: int = 60,
    overlap: float = 0.6,
    corruption: Optional[CorruptionConfig] = None,
    seed: int = 31,
) -> GeneratedDataset:
    """Generate a two-source course-catalog pair exhibiting one THALIA category.

    Args:
        category: THALIA class 1-12 (see :data:`THALIA_CATEGORIES`).
    """
    if category not in THALIA_CATEGORIES:
        raise ValueError(f"THALIA category must be 1..12, got {category}")
    rng = random.Random(seed + category)
    courses = _make_courses(entity_count, rng)
    corruption = corruption or CorruptionConfig.low()

    rename_b: Dict[str, str] = {}
    drop_b: List[str] = []
    transform = None

    if category == 1:  # synonyms
        rename_b = {"instructor": "lecturer", "times": "schedule", "room": "venue"}
    elif category == 2:  # simple mapping (credits vs. ECTS points: x2)
        transform = ("credits", lambda value: None if value is None else value * 2)
        rename_b = {"credits": "ects_points"}
    elif category == 3:  # union types (credits as text)
        transform = ("credits", lambda value: None if value is None else f"{value} credit hours")
    elif category == 4:  # complex mapping (times merged into one descriptive string)
        transform = ("times", lambda value: None if value is None else f"meets weekly at {value}")
    elif category == 5:  # language expression
        translations = {"undergraduate": "Grundstudium", "graduate": "Hauptstudium"}
        transform = ("level", lambda value: translations.get(value, value))
        rename_b = {"level": "studienabschnitt", "title": "veranstaltung"}
    elif category == 6:  # nulls
        drop_b = ["room", "times"]
    elif category == 7:  # virtual columns
        drop_b = ["level"]
    elif category == 8:  # semantic incompatibility
        transform = ("credits", lambda value: "yes" if value and value >= 6 else "no")
        rename_b = {"credits": "is_major_course"}
    elif category == 9:  # same attribute in different structure
        rename_b = {"instructor": "course.instructor_name"}
    elif category == 10:  # handling sets
        transform = ("times", lambda value: None if value is None else f"[{value}; {value}]")
    elif category == 11:  # opaque attribute names
        rename_b = {
            "title": "col_1",
            "instructor": "col_2",
            "credits": "col_3",
            "level": "col_4",
            "room": "col_5",
            "times": "col_6",
        }
    elif category == 12:  # attribute composition (instructor split)
        rename_b = {"instructor": "instructor_last_name"}
        transform = ("instructor", lambda value: None if value is None else value.split()[-1])

    if transform is not None:
        attribute, function = transform
        courses = [dict(course) for course in courses]
        transformed_courses = []
        for course in courses:
            copy = dict(course)
            copy[f"__b_{attribute}"] = function(course.get(attribute))
            transformed_courses.append(copy)
        courses = transformed_courses

    specs = [
        SourceSpec(name="university_a", rename={}, drop=[key for key in courses[0] if key.startswith("__b_")], corruption=corruption),
        SourceSpec(
            name="university_b",
            rename=_compose_rename(rename_b, transform),
            drop=_compose_drop(drop_b, transform),
            corruption=corruption,
        ),
    ]
    generator = DirtySourceGenerator(
        specs,
        overlap=overlap,
        conflict_fields=[],
        default_corruption=corruption,
        seed=seed + category,
    )
    return generator.generate(courses)


def _compose_rename(rename_b: Dict[str, str], transform) -> Dict[str, str]:
    rename = dict(rename_b)
    if transform is not None:
        attribute, _ = transform
        # source B shows the transformed variant under the (possibly renamed) label
        rename[f"__b_{attribute}"] = rename_b.get(attribute, attribute)
    return rename


def _compose_drop(drop_b: List[str], transform) -> List[str]:
    drop = list(drop_b)
    if transform is not None:
        attribute, _ = transform
        # source B drops the original attribute (it carries the transformed one)
        drop.append(attribute)
    return drop
