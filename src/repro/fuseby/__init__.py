"""The Fuse By query language (paper §2.1, Fig. 1).

HumMer accepts a subset of SQL — Select-Project-Join queries with sorting,
grouping and aggregation — extended with the **Fuse By** statement:

.. code-block:: sql

    SELECT Name, RESOLVE(Age, max)
    FUSE FROM EE_Students, CS_Students
    FUSE BY (Name)

* ``FUSE FROM`` combines the listed tables by **outer union** instead of the
  cross product a plain ``FROM`` implies.
* The ``FUSE BY`` attributes serve as the object identifier: tuples agreeing
  on them describe the same real-world object and are fused into one tuple.
  An empty ``FUSE BY ()`` asks HumMer to determine object identity itself via
  similarity-based duplicate detection (the automatic pipeline).
* ``RESOLVE(column, function)`` picks the conflict-resolution function for a
  column; without an explicit function SQL's ``COALESCE`` is the default.
* ``*`` expands to all attributes present in the sources.
* ``WHERE``, ``GROUP BY``, ``HAVING`` and ``ORDER BY`` keep their usual
  meaning.

The package contains a hand-written lexer and recursive-descent parser for
that grammar, a planner that translates the AST into engine operators plus
the fusion operator, and an executor tying it to a catalog.
"""

from repro.fuseby.tokens import Token, TokenType
from repro.fuseby.lexer import Lexer, tokenize_query
from repro.fuseby.ast import (
    ColumnExpression,
    FuseByQuery,
    OrderItem,
    ResolveItem,
    SelectItem,
    StarItem,
    TableReference,
)
from repro.fuseby.parser import Parser, parse_query
from repro.fuseby.planner import Planner, QueryPlan
from repro.fuseby.executor import QueryExecutor

__all__ = [
    "Token",
    "TokenType",
    "Lexer",
    "tokenize_query",
    "ColumnExpression",
    "FuseByQuery",
    "OrderItem",
    "ResolveItem",
    "SelectItem",
    "StarItem",
    "TableReference",
    "Parser",
    "parse_query",
    "Planner",
    "QueryPlan",
    "QueryExecutor",
]
