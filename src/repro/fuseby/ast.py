"""Abstract syntax tree of the Fuse By dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

__all__ = [
    "ColumnExpression",
    "StarItem",
    "SelectItem",
    "ResolveItem",
    "TableReference",
    "OrderItem",
    "FuseByQuery",
]


@dataclass(frozen=True)
class ColumnExpression:
    """A (possibly qualified) column reference in the query text."""

    name: str
    table: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        """``table.name`` when qualified, else just the name."""
        return f"{self.table}.{self.name}" if self.table else self.name

    def __str__(self) -> str:
        return self.qualified_name


@dataclass(frozen=True)
class StarItem:
    """The ``*`` select item: all attributes present in the sources."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class SelectItem:
    """A plain (non-RESOLVE) select item, optionally aliased."""

    column: ColumnExpression
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.column}" + (f" AS {self.alias}" if self.alias else "")


@dataclass(frozen=True)
class ResolveItem:
    """A ``RESOLVE(colref [, function [(args)]])`` select item."""

    column: ColumnExpression
    function: Optional[str] = None
    arguments: Tuple[Any, ...] = ()
    alias: Optional[str] = None

    def __str__(self) -> str:
        if self.function is None:
            inner = f"RESOLVE({self.column})"
        elif self.arguments:
            rendered = ", ".join(repr(a) for a in self.arguments)
            inner = f"RESOLVE({self.column}, {self.function}({rendered}))"
        else:
            inner = f"RESOLVE({self.column}, {self.function})"
        return inner + (f" AS {self.alias}" if self.alias else "")


@dataclass(frozen=True)
class TableReference:
    """A table (source alias) in the FROM / FUSE FROM clause."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        """Alias when present, else the table name."""
        return self.alias or self.name

    def __str__(self) -> str:
        return self.name + (f" AS {self.alias}" if self.alias else "")


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: ColumnExpression
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} {'DESC' if self.descending else 'ASC'}"


@dataclass
class FuseByQuery:
    """A parsed SELECT / Fuse By statement.

    Attributes:
        select_items: the SELECT list (:class:`StarItem`, :class:`SelectItem`
            or :class:`ResolveItem` objects).
        tables: the FROM / FUSE FROM table references.
        fuse_from: whether the tables are combined by outer union
            (``FUSE FROM``) rather than cross product (``FROM``).
        fuse_by: the object-identifier attributes; ``None`` when the query has
            no FUSE BY clause at all, ``[]`` for an explicit empty
            ``FUSE BY ()`` (meaning: let duplicate detection decide).
        where / having: predicate expression trees from
            :mod:`repro.engine.expressions` (already built by the parser).
        group_by: plain GROUP BY attributes (SQL grouping, not fusion).
        order_by: ORDER BY keys.
        limit / offset: row limits.
    """

    select_items: List[Union[StarItem, SelectItem, ResolveItem]] = field(default_factory=list)
    tables: List[TableReference] = field(default_factory=list)
    fuse_from: bool = False
    fuse_by: Optional[List[ColumnExpression]] = None
    where: Optional[Any] = None
    group_by: List[ColumnExpression] = field(default_factory=list)
    having: Optional[Any] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    @property
    def is_fusion_query(self) -> bool:
        """Whether this statement requests data fusion (FUSE FROM or FUSE BY present)."""
        return self.fuse_from or self.fuse_by is not None

    @property
    def has_star(self) -> bool:
        """Whether the SELECT list is (or contains) ``*``."""
        return any(isinstance(item, StarItem) for item in self.select_items)

    def resolve_items(self) -> List[ResolveItem]:
        """All RESOLVE items of the SELECT list."""
        return [item for item in self.select_items if isinstance(item, ResolveItem)]

    def __str__(self) -> str:
        select = ", ".join(str(item) for item in self.select_items)
        from_kw = "FUSE FROM" if self.fuse_from else "FROM"
        tables = ", ".join(str(table) for table in self.tables)
        parts = [f"SELECT {select}", f"{from_kw} {tables}"]
        if self.where is not None:
            parts.append("WHERE ...")
        if self.fuse_by is not None:
            parts.append(f"FUSE BY ({', '.join(str(c) for c in self.fuse_by)})")
        if self.group_by:
            parts.append(f"GROUP BY {', '.join(str(c) for c in self.group_by)}")
        if self.having is not None:
            parts.append("HAVING ...")
        if self.order_by:
            parts.append(f"ORDER BY {', '.join(str(o) for o in self.order_by)}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)
