"""Execution of planned Fuse By queries against a catalog.

The executor realises the two HumMer querying modes (paper §3): the basic SQL
interface "which parses entire Fuse By queries and returns the result", and —
for fusion queries — the same phases the wizard walks through, fully
automatic.

Semantics implemented:

* ``FROM a, b`` — cross product of the sources (plain SQL).
* ``FUSE FROM a, b`` — schema matching (instance-based, with a label-based
  fallback), rename to the preferred (first) schema, add ``sourceID``, outer
  union.
* ``FUSE BY (k1, ...)`` — tuples agreeing on the key columns are one object;
  they are fused with the RESOLVE functions (Coalesce default).
* ``FUSE BY ()`` or ``FUSE FROM`` without a FUSE BY clause — object identity
  is determined by similarity-based duplicate detection, then fusion on the
  resulting ``objectID``.
* ``WHERE`` is applied to the combined input before fusion; ``HAVING``,
  ``ORDER BY`` and ``LIMIT`` apply to the fused result (the paper keeps their
  original meaning).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.fusion import FusionResult, FusionSpec
from repro.core.pipeline import FusionPipeline
from repro.core.resolution.base import ResolutionRegistry, default_registry
from repro.dedup.detector import DuplicateDetector, OBJECT_ID_COLUMN
from repro.engine.catalog import Catalog
from repro.engine.operators import (
    CrossProduct,
    Limit,
    Project,
    ProjectItem,
    RelationSource,
    Select,
    Sort,
    SortKey,
)
from repro.engine.operators.groupby import AggregateSpec, GroupBy
from repro.engine.relation import Relation
from repro.exceptions import PlanningError
from repro.fuseby.ast import FuseByQuery, ResolveItem, SelectItem, StarItem
from repro.fuseby.parser import parse_query
from repro.fuseby.planner import Planner, QueryPlan
from repro.matching.dumas import DumasMatcher

__all__ = ["QueryExecutor"]


class QueryExecutor:
    """Parses, plans and executes Fuse By statements against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        registry: Optional[ResolutionRegistry] = None,
        matcher: Optional[DumasMatcher] = None,
        detector: Optional[DuplicateDetector] = None,
        preparer_factory=None,
    ):
        self.catalog = catalog
        self.registry = registry or default_registry()
        self.matcher = matcher or DumasMatcher()
        self.detector = detector or DuplicateDetector()
        self.planner = Planner(self.registry)
        #: Zero-argument callable returning the current
        #: :class:`~repro.prepare.SourcePreparer` (or ``None``) — a callable
        #: rather than an instance so HumMer's preparation mode, which can be
        #: switched on after construction, is observed per query.
        self.preparer_factory = preparer_factory
        #: Optional :class:`~repro.core.session.ProgressEvent` listener
        #: subscribed to every fusion query's session, so SQL-driven runs
        #: stream the same intra-step progress (seeds scored, field matrices
        #: built, groups resolved) the wizard does.
        self.progress_listener = None

    # -- public API ----------------------------------------------------------------

    def execute(self, query_text: str) -> Relation:
        """Parse and run *query_text*, returning the result relation."""
        query = parse_query(query_text)
        plan = self.planner.plan(query)
        if plan.is_fusion:
            return self._execute_fusion(plan)
        return self._execute_plain(plan)

    def explain(self, query_text: str) -> QueryPlan:
        """Parse and plan *query_text* without executing it."""
        return self.planner.plan(parse_query(query_text))

    # -- plain SQL path --------------------------------------------------------------

    def _execute_plain(self, plan: QueryPlan) -> Relation:
        query = plan.query
        relations = self.catalog.fetch_many(plan.aliases)
        for reference, relation in zip(query.tables, relations):
            if reference.alias:
                relation = relation.renamed(reference.alias)
        operator = RelationSource(relations[0].renamed(query.tables[0].effective_name))
        for reference, relation in zip(query.tables[1:], relations[1:]):
            operator = CrossProduct(
                operator, RelationSource(relation.renamed(reference.effective_name))
            )
        if query.where is not None:
            operator = Select(operator, query.where)
        if query.group_by:
            operator = self._plan_group_by(operator, query)
        elif not query.has_star:
            items = self._projection_items(query)
            operator = Project(operator, items)
        if query.having is not None:
            operator = Select(operator, query.having)
        if query.order_by:
            operator = Sort(
                operator,
                [SortKey(item.column.name, item.descending) for item in query.order_by],
            )
        if query.limit is not None or query.offset:
            operator = Limit(operator, query.limit, query.offset)
        return operator.execute()

    def _plan_group_by(self, operator, query: FuseByQuery):
        by = [column.name for column in query.group_by]
        aggregates: List[AggregateSpec] = []
        for item in query.select_items:
            if isinstance(item, StarItem):
                continue
            if isinstance(item, SelectItem) and item.column.name.lower() not in {
                name.lower() for name in by
            }:
                # non-grouped plain column: take the first value per group
                aggregates.append(
                    AggregateSpec(
                        item.column.name,
                        lambda values: values[0] if values else None,
                        alias=item.alias or item.column.name,
                    )
                )
        return GroupBy(operator, by, aggregates)

    @staticmethod
    def _projection_items(query: FuseByQuery) -> List[ProjectItem]:
        items: List[ProjectItem] = []
        for item in query.select_items:
            if isinstance(item, StarItem):
                continue
            if isinstance(item, ResolveItem):
                raise PlanningError("RESOLVE is only valid in fusion queries")
            items.append(ProjectItem.column(item.column.qualified_name, item.alias))
        return items

    # -- fusion path -------------------------------------------------------------------

    def _execute_fusion(self, plan: QueryPlan) -> Relation:
        query = plan.query
        pipeline = FusionPipeline(
            self.catalog,
            matcher=self.matcher,
            detector=self.detector,
            registry=self.registry,
            prepare=self.preparer_factory() if self.preparer_factory is not None else None,
        )

        # The WHERE clause is pushed into the session as a transform filter.
        # A filter that changes the combined rows makes the prepared view
        # decline (row counts no longer line up) and detection runs cold.
        transform_filter = None
        if query.where is not None:
            transform_filter = lambda combined: Select(  # noqa: E731
                RelationSource(combined), query.where
            ).execute()

        spec = plan.fusion_spec or FusionSpec()
        if plan.needs_duplicate_detection:
            spec = FusionSpec(
                key_columns=[OBJECT_ID_COLUMN],
                resolutions=spec.resolutions,
                keep_source_column=spec.keep_source_column,
            )

        # skip_conflicts: the SQL interface returns only the fused relation,
        # so the wizard's conflict-sampling report (step 5a) is not computed.
        session = pipeline.session(
            plan.aliases,
            spec=spec,
            skip_detection=not plan.needs_duplicate_detection,
            skip_conflicts=True,
            transform_filter=transform_filter,
        )
        if self.progress_listener is not None:
            session.subscribe_progress(self.progress_listener)
        fusion: FusionResult = session.run().fusion
        result = fusion.relation

        if plan.needs_duplicate_detection and result.schema.has_column(OBJECT_ID_COLUMN):
            # objectID is internal bookkeeping unless the user selected it
            wanted = {name.lower() for name in (plan.output_columns or [])}
            if OBJECT_ID_COLUMN.lower() not in wanted:
                result = result.without_columns([OBJECT_ID_COLUMN])

        if plan.output_columns:
            keep = [name for name in plan.output_columns if result.schema.has_column(name)]
            # fusion keys asked for via FUSE BY are always available
            for key in plan.fuse_by_columns:
                if key not in keep and result.schema.has_column(key):
                    keep.insert(0, key)
            missing = [name for name in plan.output_columns if not result.schema.has_column(name)]
            if missing:
                raise PlanningError(
                    f"columns {missing} are not present in the fused result; "
                    f"available: {', '.join(result.schema.names)}"
                )
            result = result.project(keep)

        operator_tree = RelationSource(result)
        if query.having is not None:
            operator_tree = Select(operator_tree, query.having)
        if query.order_by:
            operator_tree = Sort(
                operator_tree,
                [SortKey(item.column.name, item.descending) for item in query.order_by],
            )
        if query.limit is not None or query.offset:
            operator_tree = Limit(operator_tree, query.limit, query.offset)
        return operator_tree.execute()
