"""Hand-written lexer for the Fuse By dialect."""

from __future__ import annotations

from typing import List

from repro.exceptions import LexerError
from repro.fuseby.tokens import KEYWORDS, Token, TokenType

__all__ = ["Lexer", "tokenize_query"]

_OPERATOR_CHARS = "=<>!+-/%"
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!="}


class Lexer:
    """Turns query text into a list of :class:`Token` objects."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1

    def tokenize(self) -> List[Token]:
        """Lex the whole input; always ends with an EOF token."""
        tokens: List[Token] = []
        while self.position < len(self.text):
            char = self.text[self.position]
            if char in " \t\r":
                self.position += 1
            elif char == "\n":
                self.position += 1
                self.line += 1
            elif self.text.startswith("--", self.position):
                self._skip_line_comment()
            elif char == "'" or char == '"':
                tokens.append(self._read_string(char))
            elif char.isdigit() or (
                char == "." and self._peek_next_is_digit()
            ):
                tokens.append(self._read_number())
            elif char.isalpha() or char == "_":
                tokens.append(self._read_word())
            elif char == "*":
                tokens.append(Token(TokenType.STAR, "*", self.position, self.line))
                self.position += 1
            elif char == ",":
                tokens.append(Token(TokenType.COMMA, ",", self.position, self.line))
                self.position += 1
            elif char == ".":
                tokens.append(Token(TokenType.DOT, ".", self.position, self.line))
                self.position += 1
            elif char == "(":
                tokens.append(Token(TokenType.LPAREN, "(", self.position, self.line))
                self.position += 1
            elif char == ")":
                tokens.append(Token(TokenType.RPAREN, ")", self.position, self.line))
                self.position += 1
            elif char == ";":
                tokens.append(Token(TokenType.SEMICOLON, ";", self.position, self.line))
                self.position += 1
            elif char in _OPERATOR_CHARS:
                tokens.append(self._read_operator())
            else:
                raise LexerError(f"illegal character {char!r}", self.position, self.line)
        tokens.append(Token(TokenType.EOF, None, self.position, self.line))
        return tokens

    # -- helpers ------------------------------------------------------------------

    def _peek_next_is_digit(self) -> bool:
        return (
            self.position + 1 < len(self.text) and self.text[self.position + 1].isdigit()
        )

    def _skip_line_comment(self) -> None:
        while self.position < len(self.text) and self.text[self.position] != "\n":
            self.position += 1

    def _read_string(self, quote: str) -> Token:
        start = self.position
        self.position += 1
        chars: List[str] = []
        while self.position < len(self.text):
            char = self.text[self.position]
            if char == quote:
                # doubled quote is an escaped quote
                if (
                    self.position + 1 < len(self.text)
                    and self.text[self.position + 1] == quote
                ):
                    chars.append(quote)
                    self.position += 2
                    continue
                self.position += 1
                return Token(TokenType.STRING, "".join(chars), start, self.line)
            if char == "\n":
                self.line += 1
            chars.append(char)
            self.position += 1
        raise LexerError("unterminated string literal", start, self.line)

    def _read_number(self) -> Token:
        start = self.position
        seen_dot = False
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isdigit():
                self.position += 1
            elif char == "." and not seen_dot:
                seen_dot = True
                self.position += 1
            else:
                break
        text = self.text[start : self.position]
        value = float(text) if seen_dot else int(text)
        return Token(TokenType.NUMBER, value, start, self.line)

    def _read_word(self) -> Token:
        start = self.position
        while self.position < len(self.text) and (
            self.text[self.position].isalnum() or self.text[self.position] == "_"
        ):
            self.position += 1
        word = self.text[start : self.position]
        if word.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, word.upper(), start, self.line)
        return Token(TokenType.IDENTIFIER, word, start, self.line)

    def _read_operator(self) -> Token:
        start = self.position
        two = self.text[self.position : self.position + 2]
        if two in _TWO_CHAR_OPERATORS:
            self.position += 2
            return Token(TokenType.OPERATOR, two, start, self.line)
        char = self.text[self.position]
        self.position += 1
        return Token(TokenType.OPERATOR, char, start, self.line)


def tokenize_query(text: str) -> List[Token]:
    """Convenience function: lex *text* into tokens."""
    return Lexer(text).tokenize()
