"""Semantic analysis and planning of Fuse By queries.

The planner turns a parsed :class:`FuseByQuery` into a :class:`QueryPlan`
that the executor can run against a catalog:

* plain ``FROM`` queries become engine operator trees (scan → cross product →
  select → group → project → sort → limit);
* ``FUSE FROM`` / ``FUSE BY`` queries additionally describe the fusion phases
  (schema matching needed?, duplicate detection or key-based fusion, the
  per-column resolution functions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.core.fusion import FusionSpec, ResolutionSpec
from repro.core.resolution.base import ResolutionRegistry, default_registry
from repro.exceptions import PlanningError, UnknownFunctionError
from repro.fuseby.ast import FuseByQuery, ResolveItem, SelectItem, StarItem

__all__ = ["QueryPlan", "Planner"]


@dataclass
class QueryPlan:
    """Everything the executor needs to run one statement.

    Attributes:
        query: the parsed statement.
        is_fusion: whether the fusion pipeline is involved at all.
        fusion_spec: per-column resolution functions and key columns (fusion
            queries only).  ``key_columns`` empty means "determine object
            identity by duplicate detection".
        output_columns: final projection (column names in output order);
            ``None`` means "all columns of the fused/combined input".
        aliases: source aliases to fetch, in query order.
    """

    query: FuseByQuery
    is_fusion: bool
    aliases: List[str] = field(default_factory=list)
    fusion_spec: Optional[FusionSpec] = None
    output_columns: Optional[List[str]] = None
    fuse_by_columns: List[str] = field(default_factory=list)

    @property
    def needs_duplicate_detection(self) -> bool:
        """True when the query asks HumMer to find object identity itself."""
        return self.is_fusion and not self.fuse_by_columns


class Planner:
    """Validates a parsed query and produces a :class:`QueryPlan`."""

    def __init__(self, registry: Optional[ResolutionRegistry] = None):
        self.registry = registry or default_registry()

    def plan(self, query: FuseByQuery) -> QueryPlan:
        """Produce the plan for *query*.

        Raises:
            PlanningError: for semantic errors (no tables, RESOLVE outside a
                fusion query, unknown resolution function, ...).
        """
        if not query.tables:
            raise PlanningError("the query references no tables")
        aliases = [table.name for table in query.tables]

        resolve_items = query.resolve_items()
        if resolve_items and not query.is_fusion_query:
            raise PlanningError(
                "RESOLVE(...) may only be used in a fusion query (FUSE FROM / FUSE BY)"
            )
        for item in resolve_items:
            if item.function is not None and not self.registry.has(item.function):
                raise UnknownFunctionError(
                    f"unknown resolution function {item.function!r}; "
                    f"registered: {', '.join(self.registry.names())}"
                )

        if not query.is_fusion_query:
            return QueryPlan(query=query, is_fusion=False, aliases=aliases)

        fuse_by_columns = [column.name for column in (query.fuse_by or [])]
        resolutions = self._build_resolutions(query)
        output_columns = None if query.has_star else self._output_columns(query)
        spec = FusionSpec(
            key_columns=fuse_by_columns or ["objectID"],
            resolutions=resolutions,
            keep_source_column=False,
        )
        return QueryPlan(
            query=query,
            is_fusion=True,
            aliases=aliases,
            fusion_spec=spec,
            output_columns=output_columns,
            fuse_by_columns=fuse_by_columns,
        )

    # -- helpers -------------------------------------------------------------------

    def _build_resolutions(self, query: FuseByQuery) -> List[ResolutionSpec]:
        """SELECT items → ResolutionSpec list.

        ``*`` yields an empty list (the fusion operator then expands to all
        columns with the Coalesce default, exactly the paper's default
        behaviour).  Plain columns in a fusion query also get the Coalesce
        default; RESOLVE items get their requested function.
        """
        if query.has_star:
            return []
        specs: List[ResolutionSpec] = []
        fuse_by_names = {column.name.lower() for column in (query.fuse_by or [])}
        for item in query.select_items:
            if isinstance(item, StarItem):
                continue
            if isinstance(item, ResolveItem):
                function: Union[None, str, Tuple[str, tuple]] = (
                    None
                    if item.function is None
                    else (item.function, tuple(item.arguments))
                    if item.arguments
                    else item.function
                )
                specs.append(
                    ResolutionSpec(item.column.name, function, alias=item.alias)
                )
            elif isinstance(item, SelectItem):
                if item.column.name.lower() in fuse_by_names:
                    # fusion keys are emitted automatically; skip duplicates
                    continue
                specs.append(ResolutionSpec(item.column.name, None, alias=item.alias))
        return specs

    @staticmethod
    def _output_columns(query: FuseByQuery) -> List[str]:
        names: List[str] = []
        for item in query.select_items:
            if isinstance(item, StarItem):
                continue
            if isinstance(item, ResolveItem):
                names.append(item.alias or item.column.name)
            elif isinstance(item, SelectItem):
                names.append(item.alias or item.column.name)
        return names
