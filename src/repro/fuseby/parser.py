"""Recursive-descent parser for the Fuse By dialect.

Grammar (Fig. 1 of the paper, completed with the SQL subset §2.1 mentions)::

    query        := SELECT select_list from_clause [where] [fuse_by]
                    [group_by] [having] [order_by] [limit] [';']
    select_list  := '*' | select_item (',' select_item)*
    select_item  := resolve_item | column [AS alias]
    resolve_item := RESOLVE '(' column [',' function_ref] ')' [AS alias]
    function_ref := name ['(' literal (',' literal)* ')']
    from_clause  := (FROM | FUSE FROM) table_ref (',' table_ref)*
    table_ref    := name [AS alias | alias]
    fuse_by      := FUSE BY '(' [column (',' column)*] ')'
    where        := WHERE predicate
    group_by     := GROUP BY column (',' column)*
    having       := HAVING predicate
    order_by     := ORDER BY column [ASC|DESC] (',' column [ASC|DESC])*
    limit        := LIMIT number [OFFSET number]

Predicates support comparisons, AND/OR/NOT, IS [NOT] NULL, IN, BETWEEN,
LIKE, parentheses and arithmetic — the expression objects are built directly
from :mod:`repro.engine.expressions`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, Union

from repro.engine import expressions as expr
from repro.exceptions import ParseError
from repro.fuseby.ast import (
    ColumnExpression,
    FuseByQuery,
    OrderItem,
    ResolveItem,
    SelectItem,
    StarItem,
    TableReference,
)
from repro.fuseby.lexer import tokenize_query
from repro.fuseby.tokens import Token, TokenType

__all__ = ["Parser", "parse_query"]


class Parser:
    """Parses one Fuse By / SELECT statement."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def check(self, token_type: TokenType, value: Optional[str] = None) -> bool:
        token = self.current
        if token.type is not token_type:
            return False
        if value is not None and str(token.value).upper() != value.upper():
            return False
        return True

    def check_keyword(self, *keywords: str) -> bool:
        return any(self.current.matches_keyword(keyword) for keyword in keywords)

    def expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        if not self.check(token_type, value):
            expected = value or token_type.value
            raise ParseError(f"expected {expected}", self.current)
        return self.advance()

    def expect_keyword(self, keyword: str) -> Token:
        if not self.check_keyword(keyword):
            raise ParseError(f"expected keyword {keyword}", self.current)
        return self.advance()

    def accept_keyword(self, keyword: str) -> bool:
        if self.check_keyword(keyword):
            self.advance()
            return True
        return False

    # -- entry point ----------------------------------------------------------------

    def parse(self) -> FuseByQuery:
        """Parse the statement and check that all input was consumed."""
        query = self._parse_query()
        if self.check(TokenType.SEMICOLON):
            self.advance()
        if not self.check(TokenType.EOF):
            raise ParseError("unexpected trailing input", self.current)
        return query

    def _parse_query(self) -> FuseByQuery:
        self.expect_keyword("SELECT")
        select_items = self._parse_select_list()
        fuse_from, tables = self._parse_from_clause()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._parse_expression()
        fuse_by = self._parse_fuse_by()
        group_by: List[ColumnExpression] = []
        if self.check_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by = self._parse_column_list()
        having = None
        if self.accept_keyword("HAVING"):
            having = self._parse_expression()
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit()
        return FuseByQuery(
            select_items=select_items,
            tables=tables,
            fuse_from=fuse_from,
            fuse_by=fuse_by,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    # -- SELECT list ------------------------------------------------------------------

    def _parse_select_list(self) -> List[Union[StarItem, SelectItem, ResolveItem]]:
        items: List[Union[StarItem, SelectItem, ResolveItem]] = [self._parse_select_item()]
        while self.check(TokenType.COMMA):
            self.advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> Union[StarItem, SelectItem, ResolveItem]:
        if self.check(TokenType.STAR):
            self.advance()
            return StarItem()
        if self.check_keyword("RESOLVE"):
            return self._parse_resolve_item()
        column = self._parse_column()
        alias = self._parse_alias()
        return SelectItem(column=column, alias=alias)

    def _parse_resolve_item(self) -> ResolveItem:
        self.expect_keyword("RESOLVE")
        self.expect(TokenType.LPAREN)
        column = self._parse_column()
        function: Optional[str] = None
        arguments: Tuple[Any, ...] = ()
        if self.check(TokenType.COMMA):
            self.advance()
            function, arguments = self._parse_function_reference()
        self.expect(TokenType.RPAREN)
        alias = self._parse_alias()
        return ResolveItem(column=column, function=function, arguments=arguments, alias=alias)

    def _parse_function_reference(self) -> Tuple[str, Tuple[Any, ...]]:
        token = self.current
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise ParseError("expected a resolution function name", token)
        name = str(self.advance().value)
        arguments: List[Any] = []
        if self.check(TokenType.LPAREN):
            self.advance()
            if not self.check(TokenType.RPAREN):
                arguments.append(self._parse_literal_or_name())
                while self.check(TokenType.COMMA):
                    self.advance()
                    arguments.append(self._parse_literal_or_name())
            self.expect(TokenType.RPAREN)
        return name, tuple(arguments)

    def _parse_literal_or_name(self) -> Any:
        token = self.current
        if token.type in (TokenType.STRING, TokenType.NUMBER):
            return self.advance().value
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return str(self.advance().value)
        raise ParseError("expected a literal argument", token)

    def _parse_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            token = self.current
            if token.type not in (TokenType.IDENTIFIER, TokenType.STRING):
                raise ParseError("expected an alias name after AS", token)
            return str(self.advance().value)
        if self.check(TokenType.IDENTIFIER) and not self._identifier_starts_clause():
            return str(self.advance().value)
        return None

    def _identifier_starts_clause(self) -> bool:
        # bare identifiers can only be aliases; clause keywords are KEYWORD tokens
        return False

    # -- FROM / FUSE FROM ---------------------------------------------------------------

    def _parse_from_clause(self) -> Tuple[bool, List[TableReference]]:
        fuse_from = False
        if self.check_keyword("FUSE"):
            # could be "FUSE FROM" here, or a later "FUSE BY" — only consume on FROM
            next_token = self.tokens[self.index + 1]
            if next_token.matches_keyword("FROM"):
                self.advance()
                self.advance()
                fuse_from = True
            else:
                raise ParseError("expected FROM after FUSE", next_token)
        else:
            self.expect_keyword("FROM")
        tables = [self._parse_table_reference()]
        while self.check(TokenType.COMMA):
            self.advance()
            tables.append(self._parse_table_reference())
        return fuse_from, tables

    def _parse_table_reference(self) -> TableReference:
        token = self.current
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError("expected a table name", token)
        name = str(self.advance().value)
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = str(self.expect(TokenType.IDENTIFIER).value)
        elif self.check(TokenType.IDENTIFIER):
            alias = str(self.advance().value)
        return TableReference(name=name, alias=alias)

    # -- FUSE BY --------------------------------------------------------------------------

    def _parse_fuse_by(self) -> Optional[List[ColumnExpression]]:
        if not self.check_keyword("FUSE"):
            return None
        next_token = self.tokens[self.index + 1]
        if not next_token.matches_keyword("BY"):
            raise ParseError("expected BY after FUSE", next_token)
        self.advance()
        self.advance()
        self.expect(TokenType.LPAREN)
        columns: List[ColumnExpression] = []
        if not self.check(TokenType.RPAREN):
            columns.append(self._parse_column())
            while self.check(TokenType.COMMA):
                self.advance()
                columns.append(self._parse_column())
        self.expect(TokenType.RPAREN)
        return columns

    # -- ORDER BY / LIMIT --------------------------------------------------------------------

    def _parse_order_by(self) -> List[OrderItem]:
        if not self.check_keyword("ORDER"):
            return []
        self.advance()
        self.expect_keyword("BY")
        items = [self._parse_order_item()]
        while self.check(TokenType.COMMA):
            self.advance()
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        elif self.accept_keyword("ASC"):
            descending = False
        return OrderItem(column=column, descending=descending)

    def _parse_limit(self) -> Tuple[Optional[int], int]:
        limit: Optional[int] = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = int(self.expect(TokenType.NUMBER).value)
            if self.accept_keyword("OFFSET"):
                offset = int(self.expect(TokenType.NUMBER).value)
        return limit, offset

    # -- columns ---------------------------------------------------------------------------------

    def _parse_column_list(self) -> List[ColumnExpression]:
        columns = [self._parse_column()]
        while self.check(TokenType.COMMA):
            self.advance()
            columns.append(self._parse_column())
        return columns

    def _parse_column(self) -> ColumnExpression:
        token = self.current
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise ParseError("expected a column name", token)
        first = str(self.advance().value)
        if self.check(TokenType.DOT):
            self.advance()
            second_token = self.current
            if second_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                raise ParseError("expected a column name after '.'", second_token)
            second = str(self.advance().value)
            return ColumnExpression(name=second, table=first)
        return ColumnExpression(name=first)

    # -- predicate expressions (WHERE / HAVING) ----------------------------------------------------

    def _parse_expression(self) -> expr.Expression:
        return self._parse_or()

    def _parse_or(self) -> expr.Expression:
        left = self._parse_and()
        operands = [left]
        while self.accept_keyword("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return left
        return expr.BooleanOp("OR", operands)

    def _parse_and(self) -> expr.Expression:
        left = self._parse_not()
        operands = [left]
        while self.accept_keyword("AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return left
        return expr.BooleanOp("AND", operands)

    def _parse_not(self) -> expr.Expression:
        if self.accept_keyword("NOT"):
            return expr.NotOp(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> expr.Expression:
        left = self._parse_arithmetic()
        if self.check_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return expr.IsNull(left, negated=negated)
        negated = False
        if self.check_keyword("NOT"):
            # NOT IN / NOT BETWEEN / NOT LIKE
            next_token = self.tokens[self.index + 1]
            if next_token.matches_keyword("IN") or next_token.matches_keyword(
                "BETWEEN"
            ) or next_token.matches_keyword("LIKE"):
                self.advance()
                negated = True
        if self.accept_keyword("IN"):
            self.expect(TokenType.LPAREN)
            choices = [self._parse_arithmetic()]
            while self.check(TokenType.COMMA):
                self.advance()
                choices.append(self._parse_arithmetic())
            self.expect(TokenType.RPAREN)
            return expr.InList(left, choices, negated=negated)
        if self.accept_keyword("BETWEEN"):
            low = self._parse_arithmetic()
            self.expect_keyword("AND")
            high = self._parse_arithmetic()
            return expr.Between(left, low, high, negated=negated)
        if self.accept_keyword("LIKE"):
            pattern_token = self.expect(TokenType.STRING)
            return expr.Like(left, str(pattern_token.value), negated=negated)
        if self.check(TokenType.OPERATOR) and str(self.current.value) in expr.Comparison.OPERATORS:
            operator = str(self.advance().value)
            right = self._parse_arithmetic()
            return expr.Comparison(operator, left, right)
        return left

    def _parse_arithmetic(self) -> expr.Expression:
        left = self._parse_term()
        while self.check(TokenType.OPERATOR) and str(self.current.value) in ("+", "-"):
            operator = str(self.advance().value)
            right = self._parse_term()
            left = expr.BinaryOp(operator, left, right)
        return left

    def _parse_term(self) -> expr.Expression:
        left = self._parse_factor()
        while (
            self.check(TokenType.OPERATOR) and str(self.current.value) in ("/", "%")
        ) or self.check(TokenType.STAR):
            if self.check(TokenType.STAR):
                operator = "*"
                self.advance()
            else:
                operator = str(self.advance().value)
            right = self._parse_factor()
            left = expr.BinaryOp(operator, left, right)
        return left

    def _parse_factor(self) -> expr.Expression:
        token = self.current
        if self.check(TokenType.OPERATOR) and str(token.value) in ("-", "+"):
            operator = str(self.advance().value)
            return expr.UnaryOp(operator, self._parse_factor())
        if self.check(TokenType.LPAREN):
            self.advance()
            inner = self._parse_expression()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.NUMBER:
            return expr.Literal(self.advance().value)
        if token.type is TokenType.STRING:
            return expr.Literal(self.advance().value)
        if token.matches_keyword("NULL"):
            self.advance()
            return expr.Literal(None)
        if token.matches_keyword("TRUE"):
            self.advance()
            return expr.Literal(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return expr.Literal(False)
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            column = self._parse_column()
            return expr.ColumnRef(column.qualified_name)
        raise ParseError("expected an expression", token)


def parse_query(text: str) -> FuseByQuery:
    """Parse *text* into a :class:`FuseByQuery` AST."""
    return Parser(tokenize_query(text)).parse()
