"""Token model for the Fuse By lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(enum.Enum):
    """Lexical categories of the Fuse By dialect."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    STAR = "star"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    OPERATOR = "operator"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Reserved words of the dialect (upper-case canonical form).
KEYWORDS = {
    "SELECT",
    "RESOLVE",
    "FROM",
    "FUSE",
    "BY",
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "AS",
    "AND",
    "OR",
    "NOT",
    "IN",
    "IS",
    "NULL",
    "LIKE",
    "BETWEEN",
    "TRUE",
    "FALSE",
    "JOIN",
    "ON",
    "INNER",
    "LEFT",
    "OUTER",
    "FULL",
    "DISTINCT",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    type: TokenType
    value: Any
    position: int = -1
    line: int = 1

    def matches_keyword(self, keyword: str) -> bool:
        """Whether this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and str(self.value).upper() == keyword.upper()

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"
