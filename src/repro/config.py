"""``repro.config`` — one declarative, validated, immutable configuration tree.

Before this module, every fusion knob travelled as a keyword argument copied
by hand through four layers (``HumMer`` → ``FusionPipeline`` →
``DuplicateDetector`` → CLI), and each new subsystem (blocking, executors,
adaptive planning, prepared artifacts) widened that surface with another
mutual-exclusion rule.  :class:`FusionConfig` replaces the threading with a
single typed tree:

* :class:`MatchingConfig` — DUMAS seeding / correspondence knobs and the
  name-based fallback;
* :class:`DedupConfig` — threshold, uncertainty band, blocking spec,
  clustering spec, executor spec, workers / chunking;
* :class:`PrepareConfig` — per-source artifact mode and persistence
  directory;
* :class:`ResolutionConfig` — default per-column resolution functions and
  fusion key columns.

Every section is a frozen dataclass validated **at construction time** (the
scattered ``ValueError``\\ s of the pre-config layers now surface as one
:class:`~repro.exceptions.ConfigError` with the same messages), and the tree
round-trips losslessly: ``FusionConfig.from_dict(cfg.to_dict()) == cfg``.

Serialisable specs only: blocking and executor are stored as *names* (the
CLI spellings — ``"snm"``, ``"union:snm+token"``, ``"multiprocess"`` …) plus
option mappings.  Already-constructed strategy/executor *instances* remain
the job of the object-injection parameters (``matcher=``, ``detector=``)
that the facade keeps for advanced use.

See ``docs/api.md`` for the full tree and the old-kwarg → config-field
migration table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.dedup.blocking import resolve_blocking
from repro.dedup.detector import DuplicateDetector
from repro.dedup.graphcluster import resolve_clustering
from repro.dedup.executor import (
    executor_for_workers,
    resolve_executor,
)
from repro.exceptions import ConfigError
from repro.matching.dumas import DumasMatcher

__all__ = [
    "PREPARE_MODES",
    "MatchingConfig",
    "DedupConfig",
    "PrepareConfig",
    "ResolutionConfig",
    "FusionConfig",
    "load_config_data",
]


def load_config_data(path) -> Dict[str, Any]:
    """Read a JSON config file into its raw (unvalidated) document.

    Shared by :meth:`FusionConfig.from_file` and callers that need the raw
    mapping itself (the CLI inspects which fields a ``--config`` file
    actually set), so the read/parse error handling exists exactly once.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ConfigError(f"cannot read config file {path!r}: {error}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigError(f"config is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise ConfigError(
            f"config file must hold a JSON object, got {type(data).__name__}"
        )
    return data

#: Valid per-source preparation modes (see :mod:`repro.prepare`).
PREPARE_MODES = (None, "lazy", "eager")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _freeze(value: Any) -> Any:
    """Dict/list payloads → plain immutable-ish normal forms (lists → tuples)."""
    if isinstance(value, Mapping):
        return {key: _freeze(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(inner) for inner in value)
    return value


def _thaw(value: Any) -> Any:
    """The JSON-serialisable form of a frozen payload (tuples → lists)."""
    if isinstance(value, Mapping):
        return {key: _thaw(inner) for key, inner in value.items()}
    if isinstance(value, tuple):
        return [_thaw(inner) for inner in value]
    return value


class _Section:
    """Shared ``to_dict`` / ``from_dict`` plumbing of every config section."""

    def to_dict(self) -> Dict[str, Any]:
        """Field → JSON-serialisable value mapping (full, deterministic)."""
        return {f.name: _thaw(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_Section":
        """Construct and validate a section from a plain mapping.

        Unknown keys are rejected — a typo'd field name must fail loudly, not
        silently fall back to the default.
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"{cls.__name__} expects a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        _require(
            not unknown,
            f"unknown {cls.__name__} field(s) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(sorted(known))})",
        )
        return cls(**{key: value for key, value in data.items()})


@dataclass(frozen=True)
class MatchingConfig(_Section):
    """Schema-matching knobs (DUMAS seeding and correspondence derivation).

    Attributes:
        max_seeds: how many seed duplicate pairs drive field matching.
        min_seed_similarity: whole-tuple similarity floor for seed pairs.
        correspondence_threshold: field-similarity floor for an attribute
            correspondence to be kept.
        use_name_fallback: when instance-based matching finds nothing for a
            relation, fall back to label-based matching instead of failing.
    """

    max_seeds: int = 10
    min_seed_similarity: float = 0.25
    correspondence_threshold: float = 0.35
    use_name_fallback: bool = True

    def __post_init__(self) -> None:
        _require(self.max_seeds >= 1, "max_seeds must be at least 1")
        _require(
            0.0 <= self.min_seed_similarity <= 1.0,
            "min_seed_similarity must lie in [0, 1]",
        )
        _require(
            0.0 <= self.correspondence_threshold <= 1.0,
            "correspondence_threshold must lie in [0, 1]",
        )

    def build_matcher(self) -> DumasMatcher:
        """The :class:`DumasMatcher` this section describes."""
        return DumasMatcher(
            max_seeds=self.max_seeds,
            min_seed_similarity=self.min_seed_similarity,
            correspondence_threshold=self.correspondence_threshold,
        )


@dataclass(frozen=True)
class DedupConfig(_Section):
    """Duplicate-detection knobs: classification, blocking and scoring.

    Attributes:
        threshold: pairs at or above this similarity are duplicates.
        uncertainty_band: width of the "unsure" band below the threshold.
        use_filter: apply the upper-bound filter before full comparison.
        cross_source_only: only compare tuples from different sources.
        accept_unsure: whether undecided unsure pairs count as duplicates.
        keep_evidence: keep per-attribute evidence on every scored pair.
        blocking: blocking strategy *name* (``"allpairs"``, ``"snm"``,
            ``"token"``, ``"adaptive"``, composite ``"union:snm+token"``) or
            ``None`` for the exact all-pairs baseline.
        blocking_options: constructor options for the named strategy
            (``window=`` for snm, ``max_block_size=`` for token, …).
        clustering: clustering strategy *name* (``"transitive"``,
            ``"graph"``, ``"biclique"``) or ``None`` for the paper's
            transitive-closure baseline.
        clustering_options: constructor options for the named clustering
            strategy (``min_cohesion=`` / ``weak_cut_ratio=`` for graph,
            ``weak_edge_ratio=`` / ``max_component_size=`` for biclique).
        executor: scoring-executor *name* (``"serial"``, ``"multiprocess"``)
            or ``None`` to derive it from *workers*.
        workers: worker processes for pair scoring (``None``/1 = serial,
            N>1 = multiprocess with N workers).  Only without *executor*.
        chunk_size: candidate pairs per scoring batch (needs workers > 1).
    """

    threshold: float = 0.7
    uncertainty_band: float = 0.1
    use_filter: bool = True
    cross_source_only: bool = False
    accept_unsure: bool = True
    keep_evidence: bool = False
    blocking: Optional[str] = None
    blocking_options: Mapping[str, Any] = field(default_factory=dict)
    clustering: Optional[str] = None
    clustering_options: Mapping[str, Any] = field(default_factory=dict)
    executor: Optional[str] = None
    workers: Optional[int] = None
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocking_options", _freeze(self.blocking_options))
        object.__setattr__(
            self, "clustering_options", _freeze(self.clustering_options)
        )
        _require(0.0 <= self.threshold <= 1.0, "threshold must lie in [0, 1]")
        _require(self.uncertainty_band >= 0.0, "uncertainty_band must not be negative")
        _require(
            self.blocking is None or isinstance(self.blocking, str),
            "blocking must be a strategy name (pass instances via "
            "DuplicateDetector(blocking=...) object injection instead)",
        )
        _require(
            self.executor is None or isinstance(self.executor, str),
            "executor must be an executor name (pass instances via "
            "DuplicateDetector(executor=...) object injection instead)",
        )
        _require(
            not (self.blocking_options and self.blocking is None),
            "blocking_options need a named blocking strategy",
        )
        _require(
            self.clustering is None or isinstance(self.clustering, str),
            "clustering must be a strategy name (pass instances via "
            "DuplicateDetector(clustering=...) object injection instead)",
        )
        _require(
            not (self.clustering_options and self.clustering is None),
            "clustering_options need a named clustering strategy",
        )
        _require(
            self.workers is None or self.workers >= 1,
            "workers must be at least 1",
        )
        _require(
            self.executor is None or self.workers is None,
            "workers cannot be combined with an explicit executor name; "
            "configure one or the other",
        )
        _require(
            self.chunk_size is None
            or (self.workers is not None and self.workers > 1),
            "chunk_size only applies with workers greater than 1",
        )
        _require(
            self.chunk_size is None or self.chunk_size >= 1,
            "chunk_size must be at least 1 when given",
        )
        # Build (and discard) the strategy and executor once: every name /
        # option mistake surfaces here, at construction, not mid-pipeline.
        try:
            self.build_blocking()
            self.build_clustering()
            self.build_executor()
        except (ValueError, TypeError) as error:
            raise ConfigError(str(error)) from None

    def build_blocking(self):
        """The configured :class:`~repro.dedup.blocking.BlockingStrategy`."""
        return resolve_blocking(self.blocking, **dict(self.blocking_options))

    def build_clustering(self):
        """The configured :class:`~repro.dedup.graphcluster.ClusteringStrategy`."""
        return resolve_clustering(self.clustering, **dict(self.clustering_options))

    def build_executor(self):
        """The configured :class:`~repro.dedup.executor.ScoringExecutor`."""
        if self.executor is not None:
            return resolve_executor(self.executor)
        return executor_for_workers(self.workers, chunk_size=self.chunk_size)

    def build_detector(
        self, selection=None, blocking=None, clustering=None, executor=None
    ) -> DuplicateDetector:
        """The configured :class:`DuplicateDetector`.

        *blocking* / *clustering* / *executor* accept already-constructed
        instances (object injection for callers that build their own
        strategies); they win over the config names.
        """
        return DuplicateDetector(
            threshold=self.threshold,
            uncertainty_band=self.uncertainty_band,
            use_filter=self.use_filter,
            cross_source_only=self.cross_source_only,
            selection=selection,
            accept_unsure=self.accept_unsure,
            keep_evidence=self.keep_evidence,
            blocking=blocking if blocking is not None else self.build_blocking(),
            clustering=(
                clustering if clustering is not None else self.build_clustering()
            ),
            executor=executor if executor is not None else self.build_executor(),
        )


@dataclass(frozen=True)
class PrepareConfig(_Section):
    """Per-source artifact preparation (see :mod:`repro.prepare`).

    Attributes:
        mode: ``None`` disables artifacts, ``"lazy"`` builds them on the
            first fusion query that needs them, ``"eager"`` at registration.
        artifact_dir: optional directory for on-disk persistence — a
            restarted process with the same directory serves its first
            query warm.  The fusion service sets this per tenant when run
            with a data dir (see :mod:`repro.service.journal`), so each
            tenant's artifact cache survives restarts in isolation.
    """

    mode: Optional[str] = None
    artifact_dir: Optional[str] = None

    def __post_init__(self) -> None:
        _require(
            self.mode in PREPARE_MODES,
            f'unknown prepare mode {self.mode!r}: must be None, "lazy" or "eager"',
        )
        _require(
            self.artifact_dir is None or isinstance(self.artifact_dir, str),
            "artifact_dir must be a path string",
        )


@dataclass(frozen=True)
class ResolutionConfig(_Section):
    """Default conflict-resolution requests for the automatic pipeline.

    Attributes:
        resolutions: column name → resolution-function name (or a
            ``[name, [args...]]`` pair for parameterised functions) applied
            when a fuse call gives no explicit spec.  Unmentioned columns
            use Coalesce.
        key_columns: FUSE BY key columns; empty means object identity comes
            from duplicate detection (the ``objectID`` column).
    """

    resolutions: Mapping[str, Any] = field(default_factory=dict)
    key_columns: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "resolutions", _freeze(self.resolutions))
        object.__setattr__(self, "key_columns", tuple(self.key_columns))
        for column, function in self.resolutions.items():
            _require(
                isinstance(column, str) and column != "",
                "resolution columns must be non-empty strings",
            )
            valid = isinstance(function, str) or (
                isinstance(function, tuple)
                and len(function) == 2
                and isinstance(function[0], str)
                and isinstance(function[1], tuple)
            )
            _require(
                valid,
                f"resolution for column {column!r} must be a function name or "
                "a [name, [args...]] pair",
            )
        _require(
            all(isinstance(key, str) and key for key in self.key_columns),
            "key_columns must be non-empty strings",
        )

    def build_spec(self):
        """The :class:`~repro.core.fusion.FusionSpec` this section describes.

        Returns ``None`` when the section is empty, so callers fall back to
        their step defaults (fuse on ``objectID`` with Coalesce).
        """
        if not self.resolutions and not self.key_columns:
            return None
        from repro.core.fusion import FusionSpec, ResolutionSpec
        from repro.dedup.detector import OBJECT_ID_COLUMN

        specs = [
            ResolutionSpec(column, self._function_reference(function))
            for column, function in self.resolutions.items()
        ]
        keys = list(self.key_columns) if self.key_columns else [OBJECT_ID_COLUMN]
        return FusionSpec(key_columns=keys, resolutions=specs)

    @staticmethod
    def _function_reference(function: Any) -> Union[str, Tuple[str, tuple]]:
        if isinstance(function, tuple):
            name, arguments = function
            return (name, tuple(arguments))
        return function


#: Section name → section class, in tree order.
_SECTIONS = {
    "matching": MatchingConfig,
    "dedup": DedupConfig,
    "prepare": PrepareConfig,
    "resolution": ResolutionConfig,
}


@dataclass(frozen=True)
class FusionConfig:
    """The whole fusion configuration: one typed, immutable tree.

    Construct directly, from a nested mapping (:meth:`from_dict`), from JSON
    text (:meth:`from_json`) or a JSON file (:meth:`from_file`), or from
    parsed CLI flags (:meth:`from_cli_args`).  Derive variants with
    :meth:`merged` — the tree itself never mutates.
    """

    matching: MatchingConfig = field(default_factory=MatchingConfig)
    dedup: DedupConfig = field(default_factory=DedupConfig)
    prepare: PrepareConfig = field(default_factory=PrepareConfig)
    resolution: ResolutionConfig = field(default_factory=ResolutionConfig)

    def __post_init__(self) -> None:
        for name, section_class in _SECTIONS.items():
            _require(
                isinstance(getattr(self, name), section_class),
                f"{name} must be a {section_class.__name__} "
                f"(got {type(getattr(self, name)).__name__}); "
                "use FusionConfig.from_dict for plain mappings",
            )

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full nested, JSON-serialisable form of the tree."""
        return {name: getattr(self, name).to_dict() for name in _SECTIONS}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FusionConfig":
        """Build and validate a tree from a nested mapping.

        Sections may be omitted (→ defaults); unknown sections and unknown
        fields inside a section are rejected.
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"FusionConfig expects a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_SECTIONS))
        _require(
            not unknown,
            f"unknown config section(s) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(_SECTIONS)})",
        )
        sections = {
            name: section_class.from_dict(data[name])
            for name, section_class in _SECTIONS.items()
            if name in data
        }
        return cls(**sections)

    def to_json(self, indent: int = 2) -> str:
        """The tree as a JSON document (what ``--config fusion.json`` reads)."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FusionConfig":
        """Parse a JSON document into a validated tree."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"config is not valid JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "FusionConfig":
        """Read and parse a JSON config file (the CLI's ``--config``)."""
        return cls.from_dict(load_config_data(path))

    # -- derivation ----------------------------------------------------------------

    def merged(self, overrides: Mapping[str, Any]) -> "FusionConfig":
        """A new tree with *overrides* (a nested partial mapping) applied.

        Only the mentioned fields change; everything else is carried over.
        The result is validated like any other construction.
        """
        if not isinstance(overrides, Mapping):
            raise ConfigError(
                f"merged() expects a nested mapping, got {type(overrides).__name__}"
            )
        unknown = sorted(set(overrides) - set(_SECTIONS))
        _require(
            not unknown,
            f"unknown config section(s) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(_SECTIONS)})",
        )
        sections = {}
        for name, section_class in _SECTIONS.items():
            if name not in overrides:
                continue
            current = getattr(self, name).to_dict()
            patch = overrides[name]
            if not isinstance(patch, Mapping):
                raise ConfigError(
                    f"override for section {name!r} must be a mapping, "
                    f"got {type(patch).__name__}"
                )
            current.update(patch)
            sections[name] = section_class.from_dict(current)
        return replace(self, **sections)

    # -- CLI mapping ---------------------------------------------------------------

    @classmethod
    def from_cli_args(cls, args, base: Optional["FusionConfig"] = None) -> "FusionConfig":
        """Map parsed ``hummer`` CLI flags onto a config tree.

        *base* is the starting tree (typically loaded from ``--config``);
        only flags the user actually set (non-``None``) override it, so a
        config file and ad-hoc flags compose naturally.  Attribute lookups
        are tolerant — sub-commands without a given flag simply don't
        contribute it.
        """
        config = base if base is not None else cls()
        dedup: Dict[str, Any] = {}
        prepare: Dict[str, Any] = {}

        threshold = getattr(args, "threshold", None)
        if threshold is not None:
            dedup["threshold"] = threshold

        # Dependent flags are validated against the *effective* value — the
        # flag when given, else the base config — so e.g. `--snm-window 6`
        # composes with a config file whose dedup.blocking is "snm".
        blocking = getattr(args, "blocking", None)
        snm_window = getattr(args, "snm_window", None)
        token_max_block = getattr(args, "token_max_block", None)
        effective_blocking = blocking if blocking is not None else config.dedup.blocking
        _require(
            snm_window is None or effective_blocking == "snm",
            "--snm-window only applies with --blocking snm",
        )
        _require(
            token_max_block is None or effective_blocking == "token",
            "--token-max-block only applies with --blocking token",
        )
        if blocking is not None or snm_window is not None or token_max_block is not None:
            if blocking is not None and blocking != config.dedup.blocking:
                # a strategy change invalidates the base's options wholesale
                options: Dict[str, Any] = {}
            else:
                options = dict(config.dedup.blocking_options)
            if snm_window is not None:
                options["window"] = snm_window
            if token_max_block is not None:
                options["max_block_size"] = token_max_block
            dedup["blocking"] = effective_blocking
            dedup["blocking_options"] = options

        clustering = getattr(args, "clustering", None)
        if clustering is not None:
            dedup["clustering"] = clustering
            if clustering != config.dedup.clustering:
                # a strategy change invalidates the base's options wholesale
                dedup["clustering_options"] = {}

        workers = getattr(args, "workers", None)
        chunk_size = getattr(args, "chunk_size", None)
        effective_workers = workers if workers is not None else config.dedup.workers
        _require(
            chunk_size is None
            or (effective_workers is not None and effective_workers > 1),
            "--chunk-size only applies with --workers greater than 1",
        )
        if workers is not None:
            dedup["workers"] = workers
            # a flag-set worker count replaces any config-file executor name,
            # and going serial invalidates a config-file chunk size
            dedup["executor"] = None
            if workers <= 1:
                dedup["chunk_size"] = None
        if chunk_size is not None:
            dedup["chunk_size"] = chunk_size

        artifact_dir = getattr(args, "artifact_dir", None)
        if getattr(args, "prepare", False) or artifact_dir is not None:
            # lazy: the pipeline's prepare phase builds on first use, so the
            # summary's reuse/rebuild counters tell the whole story of a run
            prepare["mode"] = "lazy"
        if artifact_dir is not None:
            prepare["artifact_dir"] = artifact_dir

        overrides: Dict[str, Any] = {}
        if dedup:
            overrides["dedup"] = dedup
        if prepare:
            overrides["prepare"] = prepare
        return config.merged(overrides) if overrides else config
