"""Candidate-pair generation and scoring.

A pluggable :class:`~repro.dedup.blocking.BlockingStrategy` proposes the
tuple pairs to look at (all pairs by default, sorted-neighborhood or token
blocking for near-linear scaling), the cross-source rule drops pairs whose
tuples share a source (when duplicates within one source are impossible by
assumption), the upper-bound filter prunes hopeless pairs and the survivors
are scored with the full measure.  A pluggable
:class:`~repro.dedup.executor.ScoringExecutor` decides *where* the filter and
the full measure run — in-process (serial baseline) or fanned out over a
process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple

from repro.dedup.blocking import BlockingSpec, BlockingStrategy, resolve_blocking

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.dedup.executor import ExecutorSpec
from repro.dedup.filters import UpperBoundFilter
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure, PairEvidence
from repro.engine.relation import Relation
from repro.engine.types import is_null

__all__ = ["PairScore", "CandidatePairGenerator"]


@dataclass
class PairScore:
    """One fully compared tuple pair."""

    left_index: int
    right_index: int
    similarity: float
    evidence: Optional[PairEvidence] = None

    def as_tuple(self) -> Tuple[int, int]:
        """The index pair, smaller index first."""
        return (self.left_index, self.right_index)


class CandidatePairGenerator:
    """Enumerates, filters and scores candidate tuple pairs.

    Args:
        measure: a fitted :class:`DuplicateSimilarityMeasure`.
        filter_threshold: threshold handed to the upper-bound filter
            (normally the duplicate threshold itself).
        use_filter: disable to measure the filter's benefit (experiment E2).
        cross_source_only: when true, tuples sharing the same ``sourceID`` are
            never paired (sources are assumed internally duplicate-free).
        keep_evidence: retain per-attribute evidence for each scored pair
            (needed by the demo's conflict preview, costs memory).
        blocking: a :class:`BlockingStrategy`, a strategy name
            (``"allpairs"``, ``"snm"``, ``"token"``, ``"union:snm+token"``,
            ``"adaptive"``) or ``None`` for the exact all-pairs baseline.
        executor: a :class:`~repro.dedup.executor.ScoringExecutor`, an
            executor name (``"serial"``, ``"multiprocess"``) or ``None`` for
            the in-process serial baseline.
        progress_callback: optional ``(phase, done, total)`` callable the
            executor invokes as scoring batches complete
            (``("pairs_scored", cumulative_pairs, total_candidates)``) — the
            dedup counterpart of the matcher's and fusion operator's
            intra-step progress streams.
    """

    def __init__(
        self,
        measure: DuplicateSimilarityMeasure,
        filter_threshold: float,
        use_filter: bool = True,
        cross_source_only: bool = False,
        source_column: str = "sourceID",
        keep_evidence: bool = False,
        blocking: BlockingSpec = None,
        executor: "ExecutorSpec" = None,
        progress_callback: Optional[Callable[[str, int, int], None]] = None,
    ):
        # imported here because the executor package imports PairScore
        from repro.dedup.executor import resolve_executor

        self.measure = measure
        self.filter = UpperBoundFilter(measure, filter_threshold, enabled=use_filter)
        self.cross_source_only = cross_source_only
        self.source_column = source_column
        self.keep_evidence = keep_evidence
        self.blocking: BlockingStrategy = resolve_blocking(blocking)
        self.executor = resolve_executor(executor)
        self.progress_callback = progress_callback

    @property
    def statistics(self):
        """The shared :class:`FilterStatistics` covering every pruning stage."""
        return self.filter.statistics

    def blocking_attributes(self, relation: Relation) -> List[str]:
        """The selected attributes present in *relation* — the blocking keys.

        Ordered by selection weight (most identifying first), so strategies
        that cap their key count work on the attributes with the highest
        identifying power.
        """
        weights = self.measure.selection.weights
        present = [
            attribute
            for attribute in self.measure.selection.attributes
            if relation.schema.has_column(attribute)
        ]
        return sorted(present, key=lambda attribute: -weights.get(attribute, 1.0))

    def candidate_indices(self, relation: Relation) -> Iterator[Tuple[int, int]]:
        """Index pairs ``i < j`` proposed by blocking and the cross-source rule."""
        size = len(relation)
        statistics = self.statistics
        statistics.total_pairs += size * (size - 1) // 2
        attributes = self.blocking_attributes(relation)
        plan = self.blocking.plan_report(relation, attributes)
        if plan is not None:
            statistics.blocking_plan = plan
        source_values: Optional[List] = None
        if self.cross_source_only and relation.schema.has_column(self.source_column):
            # Zero-copy column fetch — the cross-source rule reads one
            # attribute, not whole row tuples.
            source_values = relation.column(self.source_column)
        for i, j in self.blocking.pairs(relation, attributes):
            statistics.blocking_candidates += 1
            if source_values is not None:
                left_source = source_values[i]
                right_source = source_values[j]
                if (
                    not is_null(left_source)
                    and not is_null(right_source)
                    and left_source == right_source
                ):
                    statistics.cross_source_skipped += 1
                    continue
            yield (i, j)

    def score_pairs(self, relation: Relation) -> List[PairScore]:
        """Filter and score every candidate pair of *relation*.

        Delegates to the configured executor; the serial baseline streams
        pairs through the shared filter in-process, the multiprocess executor
        fans batches out and merges scores and statistics deterministically.
        """
        return self.executor.score_pairs(self, relation)
