"""Candidate-pair generation and scoring.

Generates the tuple pairs to compare (all pairs, or only cross-source pairs
when duplicates within one source are impossible by assumption), applies the
upper-bound filter and scores the survivors with the full measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.dedup.filters import UpperBoundFilter
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure, PairEvidence
from repro.engine.relation import Relation
from repro.engine.types import is_null

__all__ = ["PairScore", "CandidatePairGenerator"]


@dataclass
class PairScore:
    """One fully compared tuple pair."""

    left_index: int
    right_index: int
    similarity: float
    evidence: Optional[PairEvidence] = None

    def as_tuple(self) -> Tuple[int, int]:
        """The index pair, smaller index first."""
        return (self.left_index, self.right_index)


class CandidatePairGenerator:
    """Enumerates, filters and scores candidate tuple pairs.

    Args:
        measure: a fitted :class:`DuplicateSimilarityMeasure`.
        filter_threshold: threshold handed to the upper-bound filter
            (normally the duplicate threshold itself).
        use_filter: disable to measure the filter's benefit (experiment E2).
        cross_source_only: when true, tuples sharing the same ``sourceID`` are
            never paired (sources are assumed internally duplicate-free).
        keep_evidence: retain per-attribute evidence for each scored pair
            (needed by the demo's conflict preview, costs memory).
    """

    def __init__(
        self,
        measure: DuplicateSimilarityMeasure,
        filter_threshold: float,
        use_filter: bool = True,
        cross_source_only: bool = False,
        source_column: str = "sourceID",
        keep_evidence: bool = False,
    ):
        self.measure = measure
        self.filter = UpperBoundFilter(measure, filter_threshold, enabled=use_filter)
        self.cross_source_only = cross_source_only
        self.source_column = source_column
        self.keep_evidence = keep_evidence

    def candidate_indices(self, relation: Relation) -> Iterator[Tuple[int, int]]:
        """All index pairs ``i < j`` eligible for comparison."""
        size = len(relation)
        sources = None
        if self.cross_source_only and relation.schema.has_column(self.source_column):
            position = relation.schema.position(self.source_column)
            sources = [values[position] for values in relation.rows]
        for i in range(size):
            for j in range(i + 1, size):
                if sources is not None:
                    left_source, right_source = sources[i], sources[j]
                    if (
                        not is_null(left_source)
                        and not is_null(right_source)
                        and left_source == right_source
                    ):
                        continue
                yield (i, j)

    def score_pairs(self, relation: Relation) -> List[PairScore]:
        """Filter and score every candidate pair of *relation*."""
        rows = relation.rows
        scored: List[PairScore] = []
        for i, j in self.candidate_indices(relation):
            if not self.filter.passes(rows[i], rows[j]):
                continue
            if self.keep_evidence:
                evidence = self.measure.explain_rows(rows[i], rows[j])
                scored.append(PairScore(i, j, evidence.similarity, evidence))
            else:
                similarity = self.measure.compare_rows(rows[i], rows[j])
                scored.append(PairScore(i, j, similarity))
        return scored
