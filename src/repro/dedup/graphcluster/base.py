"""The clustering-strategy contract.

Clustering decides *how* the accepted duplicate pairs become object groups.
The paper (§2.3) closes the pairs transitively — one union-find pass — which
is exact on clean data but famously fragile on dirty data: a single
borderline edge between two otherwise-unrelated groups chains them into one
giant cluster (the "transitive-closure chaining" pathology).

A strategy is a pure function over the pair graph: it receives the relation
size and the accepted pairs *with their similarities* (edge weights), plus
the per-row source labels when the caller knows them, and returns a dense
cluster assignment together with a :class:`ClusteringReport` describing what
it merged, what it split and why.  Everything upstream (blocking, filtering,
scoring, classification) and downstream (fusion, lineage) is unchanged, so
swapping strategies can only regroup the *same* accepted evidence — never
invent or drop a comparison.

The assignment contract matches :func:`repro.dedup.clustering.\
transitive_closure_clusters` exactly: cluster ids are dense ``0, 1, 2, …``
in order of each cluster's first row, which is the ``objectID`` column
duplicate detection appends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["ScoredEdge", "ClusteringReport", "ClusteringResult", "ClusteringStrategy"]

#: One accepted duplicate pair with its similarity: ``(left, right, weight)``
#: with ``left < right`` and ``weight`` in ``[0, 1]``.
ScoredEdge = Tuple[int, int, float]


@dataclass
class ClusteringReport:
    """What a clustering strategy did to the accepted pair graph.

    Attributes:
        strategy: the strategy name (``"transitive"``, ``"graph"``,
            ``"biclique"``).
        clusters: number of distinct clusters in the assignment (singletons
            included).
        largest_cluster: row count of the biggest cluster — the number
            operators watch for over-merging.
        components: connected components of the accepted pair graph with
            more than one row (what transitive closure would output as
            multi-tuple clusters).
        chains_split: extra groups produced by splitting components — the
            sum of ``(clusters in component - 1)`` over all components.
            Zero for the transitive baseline by construction.
        edges: accepted pairs handed to the strategy.
        edges_cut: accepted pairs whose two rows ended up in different
            clusters (each one is a borderline edge the strategy rejected).
        diagnostics: strategy-specific extras (audited component count,
            biclique cover statistics, fallback notes, …).
    """

    strategy: str
    clusters: int = 0
    largest_cluster: int = 0
    components: int = 0
    chains_split: int = 0
    edges: int = 0
    edges_cut: int = 0
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form for StageEvent payloads, summaries and the CLI."""
        report = {
            "strategy": self.strategy,
            "clusters": self.clusters,
            "largest_cluster": self.largest_cluster,
            "components": self.components,
            "chains_split": self.chains_split,
            "edges": self.edges,
            "edges_cut": self.edges_cut,
        }
        if self.diagnostics:
            report["diagnostics"] = dict(self.diagnostics)
        return report


@dataclass
class ClusteringResult:
    """A dense cluster assignment plus the report describing it."""

    assignment: List[int]
    report: ClusteringReport


class ClusteringStrategy(ABC):
    """Groups the accepted duplicate pairs into object clusters.

    Subclasses implement :meth:`cluster`.  The contract:

    * the assignment has exactly ``size`` entries with dense ids
      ``0 .. k-1`` in order of each cluster's first row;
    * two rows share a cluster only if they are connected in the accepted
      pair graph — a strategy may *split* transitive components, never
      merge across them;
    * given the same edges the result is deterministic.
    """

    #: Short machine name, used by the CLI and ``resolve_clustering``.
    name: str = "base"

    @abstractmethod
    def cluster(
        self,
        size: int,
        edges: Sequence[ScoredEdge],
        sources: Optional[Sequence[Any]] = None,
    ) -> ClusteringResult:
        """Cluster ``size`` rows given the accepted, similarity-weighted pairs.

        Args:
            size: number of rows in the relation being deduplicated.
            edges: accepted duplicate pairs as ``(left, right, similarity)``
                triples with ``left < right``.
            sources: optional per-row source label (the ``sourceID``
                column); bipartite-aware strategies use it to tell
                cross-source edges from within-source ones.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
