"""Shared graph utilities for the clustering strategies.

Everything here is deterministic and pure-python: weighted adjacency over
the accepted pair graph, connected components, the dense-assignment
encoding shared with ``transitive_closure_clusters``, and a small
Stoer–Wagner global min-cut used to find the weakest seam of a sparse
component.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .base import ScoredEdge

__all__ = [
    "build_adjacency",
    "connected_components",
    "induced_components",
    "assignment_from_groups",
    "component_cohesion",
    "minimum_cut",
]


def build_adjacency(size: int, edges: Sequence[ScoredEdge]) -> List[Dict[int, float]]:
    """Weighted adjacency lists; duplicate edges keep the highest similarity.

    Raises ``ValueError`` naming the offending pair when an endpoint is out
    of range — the same contract as ``transitive_closure_clusters``.
    """
    adjacency: List[Dict[int, float]] = [dict() for _ in range(size)]
    for left, right, weight in edges:
        if not (0 <= left < size and 0 <= right < size):
            raise ValueError(
                f"duplicate pair ({left}, {right}) is out of range for a "
                f"relation of {size} tuples"
            )
        if left == right:
            continue
        previous = adjacency[left].get(right)
        if previous is None or weight > previous:
            adjacency[left][right] = weight
            adjacency[right][left] = weight
    return adjacency


def connected_components(adjacency: Sequence[Dict[int, float]]) -> List[List[int]]:
    """Connected components as sorted member lists, ordered by first member."""
    size = len(adjacency)
    seen = [False] * size
    components: List[List[int]] = []
    for start in range(size):
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        members = [start]
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if not seen[neighbour]:
                    seen[neighbour] = True
                    stack.append(neighbour)
                    members.append(neighbour)
        members.sort()
        components.append(members)
    return components


def induced_components(
    members: Sequence[int], adjacency: Sequence[Dict[int, float]]
) -> List[List[int]]:
    """Connected components of the sub-graph induced on ``members``."""
    member_set = set(members)
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in sorted(member_set):
        if start in seen:
            continue
        seen.add(start)
        stack = [start]
        group = [start]
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour in member_set and neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
                    group.append(neighbour)
        group.sort()
        components.append(group)
    return components


def assignment_from_groups(size: int, groups: Sequence[Sequence[int]]) -> List[int]:
    """Dense cluster ids ``0 .. k-1`` in order of each group's first row.

    This is the exact encoding ``transitive_closure_clusters`` produces, so
    any strategy built on it stays drop-in compatible with the fusion
    stages downstream.
    """
    first_row = {min(group): tuple(group) for group in groups}
    assignment = [-1] * size
    next_id = 0
    for row in range(size):
        if row in first_row:
            for member in first_row[row]:
                assignment[member] = next_id
            next_id += 1
    return assignment


def component_cohesion(members: Sequence[int], adjacency: Sequence[Dict[int, float]]) -> float:
    """Edge density ``2E / (n·(n-1))`` of the sub-graph on ``members``."""
    n = len(members)
    if n < 2:
        return 1.0
    member_set = set(members)
    edge_count = 0
    for node in members:
        for neighbour in adjacency[node]:
            if neighbour in member_set and neighbour > node:
                edge_count += 1
    return (2.0 * edge_count) / (n * (n - 1))


def minimum_cut(
    members: Sequence[int], adjacency: Sequence[Dict[int, float]]
) -> Tuple[float, List[int], List[int]]:
    """Deterministic Stoer–Wagner global min-cut of the sub-graph on ``members``.

    Returns ``(cut_weight, side_a, side_b)`` with both sides sorted and
    ``side_a`` holding the smaller first member.  Components handed here are
    connected and small (they are audit candidates, not the whole relation),
    so the O(n³) classic algorithm is plenty.
    """
    nodes = sorted(members)
    if len(nodes) < 2:
        return 0.0, list(nodes), []
    index_of = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    weights = [[0.0] * n for _ in range(n)]
    for node in nodes:
        i = index_of[node]
        for neighbour, weight in adjacency[node].items():
            j = index_of.get(neighbour)
            if j is not None:
                weights[i][j] = weight

    # merged[i] tracks which original vertices vertex i now represents.
    merged: List[Set[int]] = [{i} for i in range(n)]
    active = list(range(n))
    best_weight = float("inf")
    best_side: Set[int] = set()

    while len(active) > 1:
        # One "minimum cut phase": maximum-adjacency ordering from active[0].
        in_a = {active[0]}
        order = [active[0]]
        candidate_weight = {
            v: weights[active[0]][v] for v in active if v != active[0]
        }
        while len(order) < len(active):
            # Deterministic tie-break: highest weight, then lowest index.
            next_vertex = min(
                candidate_weight, key=lambda v: (-candidate_weight[v], v)
            )
            order.append(next_vertex)
            in_a.add(next_vertex)
            del candidate_weight[next_vertex]
            for v in candidate_weight:
                candidate_weight[v] += weights[next_vertex][v]
        last, before_last = order[-1], order[-2]
        cut_of_phase = sum(weights[last][v] for v in active if v != last)
        if cut_of_phase < best_weight:
            best_weight = cut_of_phase
            best_side = set(merged[last])
        # Merge `last` into `before_last`.
        merged[before_last] |= merged[last]
        for v in active:
            if v not in (last, before_last):
                weights[before_last][v] += weights[last][v]
                weights[v][before_last] = weights[before_last][v]
        active.remove(last)

    side_a = sorted(nodes[i] for i in best_side)
    side_b = sorted(node for node in nodes if node not in set(side_a))
    if not side_b or (side_a and side_b and side_b[0] < side_a[0]):
        side_a, side_b = side_b, side_a
    return best_weight, side_a, side_b
