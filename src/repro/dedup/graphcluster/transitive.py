"""The paper's transitive-closure clustering as a pluggable strategy.

This is the exact baseline: it delegates to the same
``transitive_closure_clusters`` union-find the pipeline has always used,
so ``clustering="transitive"`` (the default) is bit-identical to the
pre-subsystem behaviour — asserted against the golden fixtures.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..clustering import transitive_closure_clusters
from .base import ClusteringReport, ClusteringResult, ClusteringStrategy, ScoredEdge

__all__ = ["TransitiveClustering"]


class TransitiveClustering(ClusteringStrategy):
    """Merge every connected component of the accepted pair graph (§2.3)."""

    name = "transitive"

    def cluster(
        self,
        size: int,
        edges: Sequence[ScoredEdge],
        sources: Optional[Sequence[Any]] = None,
    ) -> ClusteringResult:
        pairs = [(left, right) for left, right, _ in edges]
        assignment = transitive_closure_clusters(size, pairs)
        counts: dict = {}
        for cluster_id in assignment:
            counts[cluster_id] = counts.get(cluster_id, 0) + 1
        multi = sum(1 for count in counts.values() if count > 1)
        report = ClusteringReport(
            strategy=self.name,
            clusters=len(counts),
            largest_cluster=max(counts.values(), default=0),
            components=multi,
            chains_split=0,
            edges=len(edges),
            edges_cut=0,
        )
        return ClusteringResult(assignment=assignment, report=report)
