"""Connected components with a min-cut audit of sparse "barbell" components.

Transitive closure treats every connected component as one entity.  This
strategy keeps that view for *dense* components — a group of records that
nearly all match each other really is one entity — but audits sparse ones,
which is where chaining lives: two near-cliques joined by one borderline
edge form a low-cohesion "barbell" whose minimum cut is exactly that bridge.

The audit is weight-aware on purpose.  A path of four records can be either
a genuine entity (uniform similarities, one comparison simply missing) or a
chain artifact (a weak bridge between two strong pairs) — the topology is
identical, only the similarities differ.  So a component is split only when
its minimum cut crosses edges that are *weak relative to the component's
typical edge*: mean cut-edge weight below ``weak_cut_ratio`` of the mean
induced edge weight.  Uniform components survive the audit untouched.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .base import ClusteringReport, ClusteringResult, ClusteringStrategy, ScoredEdge
from .components import (
    assignment_from_groups,
    build_adjacency,
    component_cohesion,
    connected_components,
    induced_components,
    minimum_cut,
)

__all__ = ["GraphClustering"]


class GraphClustering(ClusteringStrategy):
    """Split sparse components at weak minimum cuts; keep dense ones whole.

    Args:
        min_cohesion: components with edge density at or above this stay
            merged without an audit (near-bicliques are real entities).
        min_side: smallest cluster a split may produce; splits that would
            strand fewer records than this are rejected, so a weakly
            attached single record is never silently dropped to a singleton
            with the default of 2.
        weak_cut_ratio: a cut is "weak" when its mean crossing-edge weight
            is below this fraction of the component's mean edge weight.
    """

    name = "graph"

    def __init__(
        self,
        min_cohesion: float = 0.6,
        min_side: int = 2,
        weak_cut_ratio: float = 0.9,
    ):
        if not 0.0 < min_cohesion <= 1.0:
            raise ValueError("min_cohesion must be in (0, 1]")
        if min_side < 1:
            raise ValueError("min_side must be at least 1")
        if not 0.0 < weak_cut_ratio <= 1.0:
            raise ValueError("weak_cut_ratio must be in (0, 1]")
        self.min_cohesion = min_cohesion
        self.min_side = min_side
        self.weak_cut_ratio = weak_cut_ratio

    def __repr__(self) -> str:
        return (
            f"GraphClustering(min_cohesion={self.min_cohesion}, "
            f"min_side={self.min_side}, weak_cut_ratio={self.weak_cut_ratio})"
        )

    def cluster(
        self,
        size: int,
        edges: Sequence[ScoredEdge],
        sources: Optional[Sequence[Any]] = None,
    ) -> ClusteringResult:
        adjacency = build_adjacency(size, edges)
        components = connected_components(adjacency)
        groups: List[List[int]] = []
        audited = 0
        chains_split = 0
        multi_components = 0
        for component in components:
            if len(component) == 1:
                groups.append(component)
                continue
            multi_components += 1
            sub_groups, component_audits = self._refine(component, adjacency)
            audited += component_audits
            chains_split += len(sub_groups) - 1
            groups.extend(sub_groups)

        assignment = assignment_from_groups(size, groups)
        edges_cut = sum(
            1
            for left, right, _ in edges
            if left != right and assignment[left] != assignment[right]
        )
        counts: Dict[int, int] = {}
        for cluster_id in assignment:
            counts[cluster_id] = counts.get(cluster_id, 0) + 1
        report = ClusteringReport(
            strategy=self.name,
            clusters=len(counts),
            largest_cluster=max(counts.values(), default=0),
            components=multi_components,
            chains_split=chains_split,
            edges=len(edges),
            edges_cut=edges_cut,
            diagnostics={"components_audited": audited},
        )
        return ClusteringResult(assignment=assignment, report=report)

    def _refine(
        self, members: Sequence[int], adjacency: Sequence[Dict[int, float]]
    ) -> Tuple[List[List[int]], int]:
        """Recursively split one connected component; returns (groups, audits)."""
        members = sorted(members)
        if len(members) < 2 * self.min_side:
            return [members], 0
        if component_cohesion(members, adjacency) >= self.min_cohesion:
            return [members], 0

        cut_weight, side_a, side_b = minimum_cut(members, adjacency)
        if min(len(side_a), len(side_b)) < self.min_side:
            return [members], 1

        member_set = set(members)
        side_b_set = set(side_b)
        induced_weights = [
            weight
            for node in members
            for neighbour, weight in adjacency[node].items()
            if neighbour in member_set and neighbour > node
        ]
        crossing = sum(
            1
            for node in side_a
            for neighbour in adjacency[node]
            if neighbour in side_b_set
        )
        if not induced_weights or crossing == 0:
            return [members], 1
        mean_edge = sum(induced_weights) / len(induced_weights)
        mean_cut_edge = cut_weight / crossing
        if mean_cut_edge >= self.weak_cut_ratio * mean_edge:
            return [members], 1

        groups: List[List[int]] = []
        audits = 1
        for side in (side_a, side_b):
            # A min-cut side of a connected graph is itself connected, but
            # re-split defensively in case of exact-tie degeneracies.
            for piece in induced_components(side, adjacency):
                sub_groups, sub_audits = self._refine(piece, adjacency)
                groups.extend(sub_groups)
                audits += sub_audits
        return groups, audits
