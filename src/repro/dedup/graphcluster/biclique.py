"""BBK-style biclique cover of the cross-source duplicate pair graph.

Cross-source accepted pairs form a sparse bipartite graph per source pair;
a real-world entity shows up as a (near-)biclique in it — every record of
the entity in source A matches every record in source B.  Chain artifacts
do not: the bridge edge is *relatively* weak, because the bridging record
matches its own entity strongly and the foreign one only at the border of
acceptance.

The strategy therefore works in three moves per connected component:

1. **Prune relatively weak cross edges.**  An edge ``(u, v, w)`` is dropped
   when ``w < weak_edge_ratio * min(best(u), best(v))`` where ``best(x)`` is
   the strongest accepted edge at ``x``.  Using the *minimum* of the two
   endpoints' bests protects genuinely low-quality records (their own best
   is low, so their edges survive) while cutting bridges (both endpoints
   have strong in-entity edges, so the border-line bridge is weak for both).
2. **Enumerate maximal bicliques** of each source-pair bipartite subgraph
   via Galois closures (the BBK seeding: close the neighbourhood of every
   vertex and of every pairwise neighbourhood intersection), then **greedily
   cover** the component — balanced bicliques first (largest minimum side),
   then highest mean similarity, then total size, with a deterministic
   member tiebreak.  Each picked biclique claims its still-unassigned
   members as one cluster.
3. **Attach leftovers by best edge** (all accepted edges, including
   within-source and pruned ones), so a record whose biclique lost the
   greedy race still joins its strongest neighbour's cluster — pruning only
   stops weak edges from *forming* groups, never from following them.

Components with no cross-source evidence, components larger than
``max_component_size`` and runs without source labels fall back to the
transitive grouping (kept whole), recorded in the report diagnostics.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .base import ClusteringReport, ClusteringResult, ClusteringStrategy, ScoredEdge
from .components import (
    assignment_from_groups,
    build_adjacency,
    connected_components,
    induced_components,
)

__all__ = ["BicliqueClustering"]

#: A candidate biclique ready for the greedy cover, pre-sorted by quality:
#: (min side, mean similarity, member count, members) — see _sort_key.
_Candidate = Tuple[Tuple[int, ...], int, float]


class BicliqueClustering(ClusteringStrategy):
    """Greedy maximal-biclique cover of the cross-source pair graph.

    Args:
        weak_edge_ratio: cross edges below this fraction of the weaker
            endpoint's best edge are excluded from biclique formation
            (they remain usable for leftover attachment).
        max_component_size: components with more members than this are kept
            whole (transitive behaviour) and counted in the diagnostics —
            biclique enumeration is exponential in the worst case.
        max_bicliques: enumeration budget per component; once reached, the
            bicliques found so far are used and the truncation is recorded.
    """

    name = "biclique"

    def __init__(
        self,
        weak_edge_ratio: float = 0.9,
        max_component_size: int = 64,
        max_bicliques: int = 256,
    ):
        if not 0.0 < weak_edge_ratio <= 1.0:
            raise ValueError("weak_edge_ratio must be in (0, 1]")
        if max_component_size < 2:
            raise ValueError("max_component_size must be at least 2")
        if max_bicliques < 1:
            raise ValueError("max_bicliques must be at least 1")
        self.weak_edge_ratio = weak_edge_ratio
        self.max_component_size = max_component_size
        self.max_bicliques = max_bicliques

    def __repr__(self) -> str:
        return (
            f"BicliqueClustering(weak_edge_ratio={self.weak_edge_ratio}, "
            f"max_component_size={self.max_component_size}, "
            f"max_bicliques={self.max_bicliques})"
        )

    def cluster(
        self,
        size: int,
        edges: Sequence[ScoredEdge],
        sources: Optional[Sequence[Any]] = None,
    ) -> ClusteringResult:
        adjacency = build_adjacency(size, edges)
        components = connected_components(adjacency)
        diagnostics: Dict[str, Any] = {}

        groups: List[List[int]] = []
        multi_components = 0
        chains_split = 0
        if sources is None:
            # Without source labels there is no bipartite structure to
            # exploit — behave exactly like the transitive baseline.
            diagnostics["fallback"] = "no source labels"
            for component in components:
                if len(component) > 1:
                    multi_components += 1
                groups.append(component)
        else:
            if len(sources) != size:
                raise ValueError(
                    f"sources has {len(sources)} entries for a relation of "
                    f"{size} tuples"
                )
            oversize = 0
            covered = 0
            attached = 0
            truncated = 0
            for component in components:
                if len(component) == 1:
                    groups.append(component)
                    continue
                multi_components += 1
                if len(component) > self.max_component_size:
                    oversize += 1
                    groups.append(component)
                    continue
                sub_groups, stats = self._cover_component(
                    component, adjacency, sources
                )
                covered += stats["bicliques_used"]
                attached += stats["leftovers_attached"]
                truncated += stats["truncated"]
                chains_split += len(sub_groups) - 1
                groups.extend(sub_groups)
            diagnostics["bicliques_used"] = covered
            diagnostics["leftovers_attached"] = attached
            if oversize:
                diagnostics["oversize_components"] = oversize
            if truncated:
                diagnostics["enumeration_truncated"] = truncated

        assignment = assignment_from_groups(size, groups)
        edges_cut = sum(
            1
            for left, right, _ in edges
            if left != right and assignment[left] != assignment[right]
        )
        counts: Dict[int, int] = {}
        for cluster_id in assignment:
            counts[cluster_id] = counts.get(cluster_id, 0) + 1
        report = ClusteringReport(
            strategy=self.name,
            clusters=len(counts),
            largest_cluster=max(counts.values(), default=0),
            components=multi_components,
            chains_split=chains_split,
            edges=len(edges),
            edges_cut=edges_cut,
            diagnostics=diagnostics,
        )
        return ClusteringResult(assignment=assignment, report=report)

    # -- component cover ---------------------------------------------------

    def _cover_component(
        self,
        component: Sequence[int],
        adjacency: Sequence[Dict[int, float]],
        sources: Sequence[Any],
    ) -> Tuple[List[List[int]], Dict[str, int]]:
        stats = {"bicliques_used": 0, "leftovers_attached": 0, "truncated": 0}
        member_set = set(component)
        best_at = {
            node: max(adjacency[node].values()) for node in component if adjacency[node]
        }

        # Strong cross-source edges, grouped into one bipartite subgraph per
        # unordered source pair.
        bipartite: Dict[Tuple[str, str], Dict[int, Set[int]]] = {}
        cross_edges = 0
        for node in component:
            for neighbour, weight in adjacency[node].items():
                if neighbour <= node or neighbour not in member_set:
                    continue
                if sources[node] == sources[neighbour]:
                    continue
                cross_edges += 1
                if weight < self.weak_edge_ratio * min(
                    best_at[node], best_at[neighbour]
                ):
                    continue
                key = tuple(sorted((str(sources[node]), str(sources[neighbour]))))
                graph = bipartite.setdefault(key, {})
                graph.setdefault(node, set()).add(neighbour)
                graph.setdefault(neighbour, set()).add(node)
        if not bipartite or not cross_edges:
            # No cross-source evidence (or all of it pruned as weak):
            # nothing bipartite to reason about, keep the component whole.
            return [sorted(component)], stats

        candidates = self._enumerate_bicliques(bipartite, adjacency, sources, stats)

        # Greedy cover: each biclique claims its still-unassigned members.
        cluster_of: Dict[int, int] = {}
        clusters: List[List[int]] = []
        for members, _, _ in sorted(candidates, key=self._sort_key):
            free = [m for m in members if m not in cluster_of]
            if len(free) < 2:
                continue
            for m in free:
                cluster_of[m] = len(clusters)
            clusters.append(sorted(free))
            stats["bicliques_used"] += 1

        if not clusters:
            return [sorted(component)], stats

        # Leftovers join the cluster of their strongest neighbour; multiple
        # passes let attachment propagate through chains of leftovers.
        leftovers = sorted(m for m in component if m not in cluster_of)
        progressed = True
        while leftovers and progressed:
            progressed = False
            remaining: List[int] = []
            for node in leftovers:
                best_cluster = None
                best_weight = -1.0
                for neighbour, weight in adjacency[node].items():
                    target = cluster_of.get(neighbour)
                    if target is None:
                        continue
                    if weight > best_weight or (
                        weight == best_weight
                        and (best_cluster is None or target < best_cluster)
                    ):
                        best_weight = weight
                        best_cluster = target
                if best_cluster is None:
                    remaining.append(node)
                else:
                    cluster_of[node] = best_cluster
                    clusters[best_cluster].append(node)
                    stats["leftovers_attached"] += 1
                    progressed = True
            leftovers = remaining
        # Anything still stranded (connected only to other strandees —
        # cannot happen in a connected component, but stay defensive) forms
        # its own connectivity groups.
        for stranded in induced_components(leftovers, adjacency) if leftovers else []:
            clusters.append(stranded)

        return [sorted(cluster) for cluster in clusters], stats

    @staticmethod
    def _sort_key(candidate: _Candidate):
        members, min_side, mean_similarity = candidate
        return (-min_side, -mean_similarity, -len(members), members)

    def _enumerate_bicliques(
        self,
        bipartite: Dict[Tuple[str, str], Dict[int, Set[int]]],
        adjacency: Sequence[Dict[int, float]],
        sources: Sequence[Any],
        stats: Dict[str, int],
    ) -> List[_Candidate]:
        candidates: Dict[FrozenSet[int], _Candidate] = {}
        for key in sorted(bipartite):
            graph = bipartite[key]
            left_source = key[0]
            left_side = sorted(
                node for node in graph if str(sources[node]) == left_source
            )
            seeds: List[Set[int]] = [set(graph[node]) for node in left_side]
            for i, first in enumerate(left_side):
                for second in left_side[i + 1 :]:
                    shared = graph[first] & graph[second]
                    if shared:
                        seeds.append(shared)
            for seed in seeds:
                if len(candidates) >= self.max_bicliques:
                    stats["truncated"] = 1
                    break
                # Galois closure: widen the left side to every vertex that
                # covers the seed, then shrink the right side to the common
                # neighbourhood — the result is a maximal biclique.
                left = [node for node in left_side if seed <= graph[node]]
                if not left:
                    continue
                right: Set[int] = set(graph[left[0]])
                for node in left[1:]:
                    right &= graph[node]
                if not right:
                    continue
                members = frozenset(left) | right
                if members in candidates:
                    continue
                weights = [
                    # Complete by construction: every left-right pair is an edge.
                    adjacency[node][neighbour]
                    for node in left
                    for neighbour in right
                ]
                candidates[members] = (
                    tuple(sorted(members)),
                    min(len(left), len(right)),
                    sum(weights) / len(weights),
                )
        return list(candidates.values())
