"""Pluggable graph clustering for duplicate grouping.

The seed pipeline groups accepted duplicate pairs by transitive closure
(paper §2.3), which chains unrelated entities through single borderline
edges on dirty data.  This package turns grouping into a strategy:

* :class:`TransitiveClustering` — the exact union-find baseline (default);
* :class:`GraphClustering` — connected components plus a min-cut audit that
  splits sparse "barbell" components at relatively weak seams while keeping
  dense near-biclique components whole;
* :class:`BicliqueClustering` — BBK-style maximal-biclique enumeration over
  the cross-source bipartite pair graph, greedy cover by balanced
  high-similarity bicliques, leftovers attached along their best edge.

Strategies only *regroup* the accepted pairs; blocking, filtering, scoring
and classification are unchanged, and no strategy ever merges rows that
transitive closure would keep apart.  See ``docs/clustering.md`` for
selection guidance and the chaining pathology worked example.
"""

from __future__ import annotations

from typing import Union

from repro.dedup.graphcluster.base import (
    ClusteringReport,
    ClusteringResult,
    ClusteringStrategy,
    ScoredEdge,
)
from repro.dedup.graphcluster.biclique import BicliqueClustering
from repro.dedup.graphcluster.graph import GraphClustering
from repro.dedup.graphcluster.transitive import TransitiveClustering

__all__ = [
    "ClusteringStrategy",
    "ClusteringSpec",
    "ClusteringReport",
    "ClusteringResult",
    "ScoredEdge",
    "TransitiveClustering",
    "GraphClustering",
    "BicliqueClustering",
    "CLUSTERING_STRATEGIES",
    "resolve_clustering",
]

#: CLI / config name → strategy class.
CLUSTERING_STRATEGIES = {
    TransitiveClustering.name: TransitiveClustering,
    GraphClustering.name: GraphClustering,
    BicliqueClustering.name: BicliqueClustering,
}

#: What every ``clustering=`` parameter accepts: a strategy name, an
#: instance or ``None`` (→ the transitive-closure baseline).
ClusteringSpec = Union[str, ClusteringStrategy, None]


def resolve_clustering(spec: ClusteringSpec, **options) -> ClusteringStrategy:
    """Turn a strategy name, instance or ``None`` into a :class:`ClusteringStrategy`.

    Args:
        spec: ``None`` (→ the transitive baseline), a name from
            :data:`CLUSTERING_STRATEGIES` (``"transitive"``, ``"graph"``,
            ``"biclique"``), or an already-constructed strategy.
        options: keyword arguments for the strategy constructor when *spec*
            is a name (e.g. ``min_cohesion=`` / ``weak_cut_ratio=`` for the
            graph audit, ``weak_edge_ratio=`` / ``max_component_size=`` for
            biclique cover).  Rejected when *spec* is an instance.
    """
    if spec is None:
        spec = TransitiveClustering.name
    if isinstance(spec, ClusteringStrategy):
        if options:
            raise ValueError(
                "clustering options cannot be combined with an already-constructed strategy"
            )
        return spec
    try:
        strategy_class = CLUSTERING_STRATEGIES[spec]
    except (KeyError, TypeError):
        known = ", ".join(sorted(CLUSTERING_STRATEGIES))
        raise ValueError(f"unknown clustering strategy {spec!r} (known: {known})") from None
    return strategy_class(**options)
