"""The duplicate-detection similarity measure.

Paper §2.3 — tuples are compared pairwise with a measure that takes into
account:

(i)   matched vs. unmatched attributes,
(ii)  data similarity between matched attributes using edit distance and
      numerical distance functions,
(iii) the identifying power of a data item, measured by a soft version of
      IDF, and
(iv)  matched but contradictory vs. non-specified (missing) data:
      contradictory data *reduces* similarity whereas missing data has *no*
      influence.

The measure implemented here scores a pair as a weighted average over the
attributes where **both** tuples carry a value:

    sim(t1, t2) = Σ_a w_a · s_a(t1[a], t2[a]) / Σ_a w_a        (a: both present)

where ``s_a`` is the type-aware value similarity (edit distance for text,
relative distance for numbers, decay for dates) and ``w_a`` combines the
attribute weight from the selection heuristics with the *soft IDF* of the
actual values: agreeing on a rare value is strong evidence, agreeing on a
frequent value is weak evidence.  Attributes missing on either side simply do
not contribute (neutral), while attributes present on both sides but very
dissimilar pull the score down (contradiction).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.dedup.descriptions import AttributeSelection
from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.similarity.numeric import value_similarity

__all__ = ["PairEvidence", "DuplicateSimilarityMeasure"]


@dataclass
class PairEvidence:
    """Explanation of one pairwise comparison (used by the demo's inspection view)."""

    similarity: float
    matched_attributes: List[str] = field(default_factory=list)
    contradicting_attributes: List[str] = field(default_factory=list)
    missing_attributes: List[str] = field(default_factory=list)
    per_attribute: Dict[str, float] = field(default_factory=dict)


class DuplicateSimilarityMeasure:
    """Soft-IDF weighted, contradiction-aware tuple similarity.

    Args:
        selection: the attributes to compare (from the heuristics or the user).
        contradiction_threshold: per-attribute similarity below which two
            present values are counted as *contradicting* (pure negative
            evidence).
        soft_idf_smoothing: additive smoothing for value frequencies.
        sharpness: exponent applied to each per-attribute similarity before
            aggregation.  Raw string/numeric similarities are optimistic —
            two unrelated e-mail addresses on the same domain already score
            around 0.5 — so sharpening (> 1) stretches the gap between
            "nearly identical" and "merely similar" values and keeps chains
            of borderline pairs from over-merging in the transitive closure.
        numeric_range_fraction: a numeric difference of this fraction of the
            column's observed value range maps to similarity ``exp(-1)``;
            this replaces the relative-difference similarity, which is far
            too forgiving for narrow-range attributes such as ages.
    """

    def __init__(
        self,
        selection: AttributeSelection,
        contradiction_threshold: float = 0.25,
        soft_idf_smoothing: float = 1.0,
        sharpness: float = 2.5,
        numeric_range_fraction: float = 0.2,
    ):
        self.selection = selection
        self.contradiction_threshold = contradiction_threshold
        self.soft_idf_smoothing = soft_idf_smoothing
        self.sharpness = sharpness
        self.numeric_range_fraction = numeric_range_fraction
        self._value_frequencies: Dict[str, Counter] = {}
        self._numeric_scales: Dict[str, float] = {}
        self._row_count = 0
        self._positions: Dict[str, int] = {}
        self._trigram_cache: Dict[int, frozenset] = {}

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Picklable snapshot for parallel scoring workers.

        The trigram cache is keyed by row-tuple hashes and can grow to one
        entry per row; shipping it to workers would multiply the snapshot
        size for no benefit (workers rebuild it lazily for exactly the rows
        they touch), so it is dropped here.
        """
        state = self.__dict__.copy()
        state["_trigram_cache"] = {}
        return state

    # -- fitting -----------------------------------------------------------------

    def fit(self, relation: Relation) -> "DuplicateSimilarityMeasure":
        """Learn value frequencies (soft IDF), numeric ranges and column positions."""
        self._row_count = len(relation)
        self._positions = {}
        self._value_frequencies = {}
        self._numeric_scales = {}
        for attribute in self.selection.attributes:
            if not relation.schema.has_column(attribute):
                continue
            position = relation.schema.position(attribute)
            self._positions[attribute] = position
            counter: Counter = Counter()
            numeric_values: List[float] = []
            for values in relation.rows:
                value = values[position]
                if is_null(value):
                    continue
                counter[self._normalise(value)] += 1
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    numeric_values.append(float(value))
            self._value_frequencies[attribute] = counter
            if len(numeric_values) >= 2:
                value_range = max(numeric_values) - min(numeric_values)
                if value_range > 0:
                    self._numeric_scales[attribute] = value_range * self.numeric_range_fraction
        return self

    @staticmethod
    def _normalise(value) -> str:
        return str(value).strip().lower()

    def soft_idf(self, attribute: str, value) -> float:
        """Identifying power of *value* within *attribute* (soft IDF, in (0, 1]).

        Rare values approach 1, values occurring in every tuple approach 0.
        """
        if is_null(value) or self._row_count == 0:
            return 0.0
        counter = self._value_frequencies.get(attribute)
        if counter is None:
            return 0.5
        frequency = counter.get(self._normalise(value), 0) + self.soft_idf_smoothing
        total = self._row_count + self.soft_idf_smoothing
        return math.log(total / frequency) / math.log(total + 1.0)

    # -- comparison ----------------------------------------------------------------

    def compare_rows(self, left: Sequence, right: Sequence) -> float:
        """Similarity of two raw row tuples (requires :meth:`fit`)."""
        return self.explain_rows(left, right).similarity

    def explain_rows(self, left: Sequence, right: Sequence) -> PairEvidence:
        """Similarity plus per-attribute evidence for two raw row tuples."""
        weighted_sum = 0.0
        weight_total = 0.0
        evidence = PairEvidence(similarity=0.0)
        for attribute, position in self._positions.items():
            left_value = left[position]
            right_value = right[position]
            left_missing = is_null(left_value)
            right_missing = is_null(right_value)
            if left_missing or right_missing:
                # (iv) missing data has no influence on similarity
                evidence.missing_attributes.append(attribute)
                continue
            similarity = self._attribute_similarity(attribute, left_value, right_value)
            idf = max(
                self.soft_idf(attribute, left_value), self.soft_idf(attribute, right_value)
            )
            weight = self.selection.weights.get(attribute, 1.0) * (0.25 + 0.75 * idf)
            weighted_sum += weight * similarity
            weight_total += weight
            evidence.per_attribute[attribute] = similarity
            if similarity < self.contradiction_threshold:
                evidence.contradicting_attributes.append(attribute)
            else:
                evidence.matched_attributes.append(attribute)
        evidence.similarity = weighted_sum / weight_total if weight_total > 0 else 0.0
        return evidence

    def _attribute_similarity(self, attribute: str, left, right) -> float:
        """Per-attribute similarity: range-scaled for numbers, sharpened overall."""
        both_numeric = (
            isinstance(left, (int, float))
            and isinstance(right, (int, float))
            and not isinstance(left, bool)
            and not isinstance(right, bool)
        )
        if both_numeric and attribute in self._numeric_scales:
            from repro.similarity.numeric import numeric_similarity

            raw = numeric_similarity(float(left), float(right), scale=self._numeric_scales[attribute])
        else:
            raw = value_similarity(left, right)
        if self.sharpness == 1.0:
            return raw
        return raw ** self.sharpness

    # -- upper bound (for the filter) -------------------------------------------------

    def upper_bound(self, left: Sequence, right: Sequence) -> float:
        """Cheap upper bound on :meth:`compare_rows`.

        Character-trigram overlap of the whole tuples, plus a constant slack:
        two tuples whose selected values share almost no trigrams cannot reach
        a high value-similarity under the full measure, while typo'd
        duplicates still share most of their trigrams.  Trigram sets are
        cached per row, so the bound is an order of magnitude cheaper than the
        full comparison — this is the "filter (upper bound to the similarity
        measure)" of §2.3.
        """
        left_grams = self._row_trigrams(left)
        right_grams = self._row_trigrams(right)
        if not left_grams or not right_grams:
            return 1.0  # nothing to prune on — cannot rule the pair out
        overlap = len(left_grams & right_grams)
        smaller = min(len(left_grams), len(right_grams))
        # constant slack allows for similar-but-not-identical characters
        return min(1.0, overlap / smaller + 0.3)

    def _row_trigrams(self, values: Sequence) -> frozenset:
        key = None
        try:
            key = hash(tuple(values))
        except TypeError:
            key = None
        if key is not None and key in self._trigram_cache:
            return self._trigram_cache[key]
        grams = set()
        for attribute, position in self._positions.items():
            value = values[position]
            if is_null(value):
                continue
            text = self._normalise(value)
            padded = f"  {text} "
            grams.update(padded[i : i + 3] for i in range(len(padded) - 2))
        result = frozenset(grams)
        if key is not None:
            self._trigram_cache[key] = result
        return result
