"""The duplicate-detection similarity measure.

Paper §2.3 — tuples are compared pairwise with a measure that takes into
account:

(i)   matched vs. unmatched attributes,
(ii)  data similarity between matched attributes using edit distance and
      numerical distance functions,
(iii) the identifying power of a data item, measured by a soft version of
      IDF, and
(iv)  matched but contradictory vs. non-specified (missing) data:
      contradictory data *reduces* similarity whereas missing data has *no*
      influence.

The measure implemented here scores a pair as a weighted average over the
attributes where **both** tuples carry a value:

    sim(t1, t2) = Σ_a w_a · s_a(t1[a], t2[a]) / Σ_a w_a        (a: both present)

where ``s_a`` is the type-aware value similarity (edit distance for text,
relative distance for numbers, decay for dates) and ``w_a`` combines the
attribute weight from the selection heuristics with the *soft IDF* of the
actual values: agreeing on a rare value is strong evidence, agreeing on a
frequent value is weak evidence.  Attributes missing on either side simply do
not contribute (neutral), while attributes present on both sides but very
dissimilar pull the score down (contradiction).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dedup.descriptions import AttributeSelection
from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.similarity.numeric import value_similarity

__all__ = ["PairEvidence", "DuplicateSimilarityMeasure", "ColumnarPairScorer"]


@dataclass
class PairEvidence:
    """Explanation of one pairwise comparison (used by the demo's inspection view)."""

    similarity: float
    matched_attributes: List[str] = field(default_factory=list)
    contradicting_attributes: List[str] = field(default_factory=list)
    missing_attributes: List[str] = field(default_factory=list)
    per_attribute: Dict[str, float] = field(default_factory=dict)


class DuplicateSimilarityMeasure:
    """Soft-IDF weighted, contradiction-aware tuple similarity.

    Args:
        selection: the attributes to compare (from the heuristics or the user).
        contradiction_threshold: per-attribute similarity below which two
            present values are counted as *contradicting* (pure negative
            evidence).
        soft_idf_smoothing: additive smoothing for value frequencies.
        sharpness: exponent applied to each per-attribute similarity before
            aggregation.  Raw string/numeric similarities are optimistic —
            two unrelated e-mail addresses on the same domain already score
            around 0.5 — so sharpening (> 1) stretches the gap between
            "nearly identical" and "merely similar" values and keeps chains
            of borderline pairs from over-merging in the transitive closure.
        numeric_range_fraction: a numeric difference of this fraction of the
            column's observed value range maps to similarity ``exp(-1)``;
            this replaces the relative-difference similarity, which is far
            too forgiving for narrow-range attributes such as ages.
    """

    def __init__(
        self,
        selection: AttributeSelection,
        contradiction_threshold: float = 0.25,
        soft_idf_smoothing: float = 1.0,
        sharpness: float = 2.5,
        numeric_range_fraction: float = 0.2,
    ):
        self.selection = selection
        self.contradiction_threshold = contradiction_threshold
        self.soft_idf_smoothing = soft_idf_smoothing
        self.sharpness = sharpness
        self.numeric_range_fraction = numeric_range_fraction
        self._value_frequencies: Dict[str, Counter] = {}
        self._numeric_scales: Dict[str, float] = {}
        self._row_count = 0
        self._positions: Dict[str, int] = {}
        self._trigram_cache: Dict[int, frozenset] = {}

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Picklable snapshot for parallel scoring workers.

        The trigram cache is keyed by row-tuple hashes and can grow to one
        entry per row; shipping it to workers would multiply the snapshot
        size for no benefit (workers rebuild it lazily for exactly the rows
        they touch), so it is dropped here.
        """
        state = self.__dict__.copy()
        state["_trigram_cache"] = {}
        return state

    # -- fitting -----------------------------------------------------------------

    def fit(self, relation: Relation) -> "DuplicateSimilarityMeasure":
        """Learn value frequencies (soft IDF), numeric ranges and column positions."""
        self._row_count = len(relation)
        self._positions = {}
        self._value_frequencies = {}
        self._numeric_scales = {}
        for attribute in self.selection.attributes:
            if not relation.schema.has_column(attribute):
                continue
            position = relation.schema.position(attribute)
            self._positions[attribute] = position
            counter: Counter = Counter()
            numeric_values: List[float] = []
            # Columnar fit: one zero-copy column fetch plus its cached null
            # mask, instead of materialising every row tuple per attribute.
            column = relation.column_at(position)
            mask = relation.null_mask(attribute)
            for value, null in zip(column, mask):
                if null:
                    continue
                counter[self._normalise(value)] += 1
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    numeric_values.append(float(value))
            self._value_frequencies[attribute] = counter
            if len(numeric_values) >= 2:
                value_range = max(numeric_values) - min(numeric_values)
                if value_range > 0:
                    self._numeric_scales[attribute] = value_range * self.numeric_range_fraction
        return self

    @property
    def fitted_attributes(self) -> Tuple[str, ...]:
        """Selected attributes present in the fitted relation, in scoring order."""
        return tuple(self._positions)

    @staticmethod
    def _normalise(value) -> str:
        return str(value).strip().lower()

    def soft_idf(self, attribute: str, value) -> float:
        """Identifying power of *value* within *attribute* (soft IDF, in (0, 1]).

        Rare values approach 1, values occurring in every tuple approach 0.
        """
        if is_null(value) or self._row_count == 0:
            return 0.0
        counter = self._value_frequencies.get(attribute)
        if counter is None:
            return 0.5
        frequency = counter.get(self._normalise(value), 0) + self.soft_idf_smoothing
        total = self._row_count + self.soft_idf_smoothing
        return math.log(total / frequency) / math.log(total + 1.0)

    # -- comparison ----------------------------------------------------------------

    def compare_rows(self, left: Sequence, right: Sequence) -> float:
        """Similarity of two raw row tuples (requires :meth:`fit`)."""
        return self.explain_rows(left, right).similarity

    def explain_rows(self, left: Sequence, right: Sequence) -> PairEvidence:
        """Similarity plus per-attribute evidence for two raw row tuples."""
        weighted_sum = 0.0
        weight_total = 0.0
        evidence = PairEvidence(similarity=0.0)
        for attribute, position in self._positions.items():
            left_value = left[position]
            right_value = right[position]
            left_missing = is_null(left_value)
            right_missing = is_null(right_value)
            if left_missing or right_missing:
                # (iv) missing data has no influence on similarity
                evidence.missing_attributes.append(attribute)
                continue
            similarity = self._attribute_similarity(attribute, left_value, right_value)
            idf = max(
                self.soft_idf(attribute, left_value), self.soft_idf(attribute, right_value)
            )
            weight = self.selection.weights.get(attribute, 1.0) * (0.25 + 0.75 * idf)
            weighted_sum += weight * similarity
            weight_total += weight
            evidence.per_attribute[attribute] = similarity
            if similarity < self.contradiction_threshold:
                evidence.contradicting_attributes.append(attribute)
            else:
                evidence.matched_attributes.append(attribute)
        evidence.similarity = weighted_sum / weight_total if weight_total > 0 else 0.0
        return evidence

    def _attribute_similarity(self, attribute: str, left, right) -> float:
        """Per-attribute similarity: range-scaled for numbers, sharpened overall."""
        both_numeric = (
            isinstance(left, (int, float))
            and isinstance(right, (int, float))
            and not isinstance(left, bool)
            and not isinstance(right, bool)
        )
        if both_numeric and attribute in self._numeric_scales:
            from repro.similarity.numeric import numeric_similarity

            raw = numeric_similarity(float(left), float(right), scale=self._numeric_scales[attribute])
        else:
            raw = value_similarity(left, right)
        if self.sharpness == 1.0:
            return raw
        return raw ** self.sharpness

    # -- upper bound (for the filter) -------------------------------------------------

    def upper_bound(self, left: Sequence, right: Sequence) -> float:
        """Cheap upper bound on :meth:`compare_rows`.

        Character-trigram overlap of the whole tuples, plus a constant slack:
        two tuples whose selected values share almost no trigrams cannot reach
        a high value-similarity under the full measure, while typo'd
        duplicates still share most of their trigrams.  Trigram sets are
        cached per row, so the bound is an order of magnitude cheaper than the
        full comparison — this is the "filter (upper bound to the similarity
        measure)" of §2.3.
        """
        left_grams = self._row_trigrams(left)
        right_grams = self._row_trigrams(right)
        if not left_grams or not right_grams:
            return 1.0  # nothing to prune on — cannot rule the pair out
        overlap = len(left_grams & right_grams)
        smaller = min(len(left_grams), len(right_grams))
        # constant slack allows for similar-but-not-identical characters
        return min(1.0, overlap / smaller + 0.3)

    # -- batched columnar scoring ----------------------------------------------------

    def columnar_scorer(
        self,
        columns: Mapping[str, List],
        null_masks: Optional[Mapping[str, bytes]] = None,
    ) -> "ColumnarPairScorer":
        """A batch pair scorer over the fitted attributes' *columns*.

        *columns* maps each :attr:`fitted_attributes` name to its full values
        list (row-index order of the relation being deduplicated);
        *null_masks* optionally supplies the matching cached null masks.  The
        scorer's results are bit-identical to the per-pair reference APIs
        (:meth:`compare_rows` / :meth:`explain_rows` / :meth:`upper_bound`) —
        see :class:`ColumnarPairScorer`.
        """
        return ColumnarPairScorer(self, columns, null_masks)

    def _row_trigrams(self, values: Sequence) -> frozenset:
        key = None
        try:
            key = hash(tuple(values))
        except TypeError:
            key = None
        if key is not None and key in self._trigram_cache:
            return self._trigram_cache[key]
        grams = set()
        for attribute, position in self._positions.items():
            value = values[position]
            if is_null(value):
                continue
            text = self._normalise(value)
            padded = f"  {text} "
            grams.update(padded[i : i + 3] for i in range(len(padded) - 2))
        result = frozenset(grams)
        if key is not None:
            self._trigram_cache[key] = result
        return result


class ColumnarPairScorer:
    """Batch pair scorer over the selected columns of one relation.

    The per-pair reference path (:meth:`DuplicateSimilarityMeasure.explain_rows`)
    re-derives everything from raw row tuples on every call: null checks, value
    normalisation, soft-IDF lookups, per-attribute similarities.  Candidate
    batches repeat all of it massively — blocking groups similar tuples, so the
    same cells and the same (value, value) pairs recur across pairs.  This
    scorer works **attribute-major** over zero-copy column lists and memoises
    every pure leaf across the whole batch:

    * per-row trigram sets (the upper-bound filter), keyed by row index —
      no tuple hashing;
    * per-attribute cell-pair similarities, keyed by the cell values (with
      their types, mirroring the cross-type care of ``content_key``);
    * per-attribute soft-IDF weights, keyed by the cell value.

    **Bit-identity**: memoisation only short-circuits pure functions of the
    measure's fitted state, and the per-pair weighted accumulation runs in the
    same attribute order as ``explain_rows``, so every returned float is
    byte-identical to the per-pair loop.  Parity is asserted by the executor
    test suite and bench E4's columnar series.
    """

    def __init__(
        self,
        measure: DuplicateSimilarityMeasure,
        columns: Mapping[str, List],
        null_masks: Optional[Mapping[str, bytes]] = None,
    ):
        self.measure = measure
        #: per attribute: (name, values, null mask, selection weight)
        self._attributes: List[Tuple[str, List, bytes, float]] = []
        for attribute in measure._positions:
            column = columns[attribute]
            mask = null_masks.get(attribute) if null_masks else None
            if mask is None:
                mask = bytes(1 if is_null(value) else 0 for value in column)
            weight = measure.selection.weights.get(attribute, 1.0)
            self._attributes.append((attribute, column, mask, weight))
        self._similarity_caches: List[Dict] = [{} for _ in self._attributes]
        self._idf_caches: List[Dict] = [{} for _ in self._attributes]
        self._trigram_sets: Dict[int, frozenset] = {}

    # -- upper bound ---------------------------------------------------------------

    def upper_bound(self, left_index: int, right_index: int) -> float:
        """Bit-identical to :meth:`DuplicateSimilarityMeasure.upper_bound`,
        with trigram sets cached per row index (no tuple hashing)."""
        left_grams = self._trigrams(left_index)
        right_grams = self._trigrams(right_index)
        if not left_grams or not right_grams:
            return 1.0
        overlap = len(left_grams & right_grams)
        smaller = min(len(left_grams), len(right_grams))
        return min(1.0, overlap / smaller + 0.3)

    def _trigrams(self, index: int) -> frozenset:
        cached = self._trigram_sets.get(index)
        if cached is not None:
            return cached
        normalise = self.measure._normalise
        grams = set()
        for _, column, mask, _ in self._attributes:
            if mask[index]:
                continue
            text = normalise(column[index])
            padded = f"  {text} "
            grams.update(padded[i : i + 3] for i in range(len(padded) - 2))
        result = frozenset(grams)
        self._trigram_sets[index] = result
        return result

    # -- batched scoring ------------------------------------------------------------

    def similarities(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Similarity per pair, computed attribute-major over the batch."""
        per_attribute = [
            self._attribute_batch(slot, pairs) for slot in range(len(self._attributes))
        ]
        scores: List[float] = []
        for k in range(len(pairs)):
            weighted_sum = 0.0
            weight_total = 0.0
            for cells in per_attribute:
                cell = cells[k]
                if cell is None:
                    continue
                similarity, weight = cell
                weighted_sum += weight * similarity
                weight_total += weight
            scores.append(weighted_sum / weight_total if weight_total > 0 else 0.0)
        return scores

    def explain(self, pairs: Sequence[Tuple[int, int]]) -> List[PairEvidence]:
        """Per-pair :class:`PairEvidence`, attribute-major over the batch."""
        per_attribute = [
            self._attribute_batch(slot, pairs) for slot in range(len(self._attributes))
        ]
        threshold = self.measure.contradiction_threshold
        explained: List[PairEvidence] = []
        for k in range(len(pairs)):
            evidence = PairEvidence(similarity=0.0)
            weighted_sum = 0.0
            weight_total = 0.0
            for slot, cells in enumerate(per_attribute):
                attribute = self._attributes[slot][0]
                cell = cells[k]
                if cell is None:
                    evidence.missing_attributes.append(attribute)
                    continue
                similarity, weight = cell
                weighted_sum += weight * similarity
                weight_total += weight
                evidence.per_attribute[attribute] = similarity
                if similarity < threshold:
                    evidence.contradicting_attributes.append(attribute)
                else:
                    evidence.matched_attributes.append(attribute)
            evidence.similarity = weighted_sum / weight_total if weight_total > 0 else 0.0
            explained.append(evidence)
        return explained

    def _attribute_batch(
        self, slot: int, pairs: Sequence[Tuple[int, int]]
    ) -> List[Optional[Tuple[float, float]]]:
        """One attribute's ``(similarity, weight)`` per pair (``None`` = missing).

        The similarity is memoised per distinct (left value, right value)
        cell pair and the soft-IDF per distinct cell value, both keyed with
        the values' types so Python's cross-type equality (``True == 1``)
        cannot conflate cells that normalise differently.  Unhashable cells
        fall back to direct computation.
        """
        measure = self.measure
        attribute, column, mask, base_weight = self._attributes[slot]
        similarity_cache = self._similarity_caches[slot]
        idf_cache = self._idf_caches[slot]
        results: List[Optional[Tuple[float, float]]] = []
        for i, j in pairs:
            if mask[i] or mask[j]:
                results.append(None)
                continue
            left = column[i]
            right = column[j]
            try:
                pair_key = (left.__class__, left, right.__class__, right)
                similarity = similarity_cache.get(pair_key)
                if similarity is None:
                    similarity = measure._attribute_similarity(attribute, left, right)
                    similarity_cache[pair_key] = similarity
            except TypeError:  # unhashable cell value
                similarity = measure._attribute_similarity(attribute, left, right)
            idf = max(
                self._soft_idf(idf_cache, attribute, left),
                self._soft_idf(idf_cache, attribute, right),
            )
            weight = base_weight * (0.25 + 0.75 * idf)
            results.append((similarity, weight))
        return results

    def _soft_idf(self, cache: Dict, attribute: str, value) -> float:
        try:
            key = (value.__class__, value)
            cached = cache.get(key)
            if cached is None:
                cached = self.measure.soft_idf(attribute, value)
                cache[key] = cached
            return cached
        except TypeError:  # unhashable cell value
            return self.measure.soft_idf(attribute, value)
