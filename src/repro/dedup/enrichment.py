"""Enriching duplicate detection with data from related tables.

Paper §2.3: the DogmatiX method considers not only an object's own values but
also "interesting attributes from relations that have some relationship to
the current table"; §3 adds that the duplicate-detection component "can
consult the metadata repository to fetch additional tables and generate child
data to support duplicate detection".

:class:`RelationshipSpec` describes one such 1:N relationship (e.g. students
→ enrolled courses); :func:`enrich_with_children` fetches the child table
from the catalog, aggregates the child values per parent tuple into one
descriptive string column and appends it to the relation handed to the
detector.  The appended column then participates in the usual attribute
selection heuristics and the similarity measure like any other attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.engine.schema import Column
from repro.engine.types import DataType, is_null
from repro.exceptions import DedupError

__all__ = ["RelationshipSpec", "enrich_with_children"]


@dataclass
class RelationshipSpec:
    """One 1:N relationship from the main table to a child table.

    Attributes:
        child_alias: catalog alias of the child table.
        parent_key: column of the main table joined on.
        child_key: column of the child table holding the parent key.
        child_attributes: child columns whose values describe the parent
            (defaults to every non-key column).
        output_column: name of the appended description column
            (default ``"<child_alias>_description"``).
        max_values: cap on the number of child values concatenated per parent.
    """

    child_alias: str
    parent_key: str
    child_key: str
    child_attributes: Optional[Sequence[str]] = None
    output_column: Optional[str] = None
    max_values: int = 10

    @property
    def column_name(self) -> str:
        return self.output_column or f"{self.child_alias}_description"


def _normalise_key(value) -> str:
    return str(value).strip().lower()


def _child_descriptions(child: Relation, spec: RelationshipSpec) -> Dict[str, List[str]]:
    if not child.schema.has_column(spec.child_key):
        raise DedupError(
            f"child table {spec.child_alias!r} has no key column {spec.child_key!r}; "
            f"available: {', '.join(child.schema.names)}"
        )
    attributes = list(spec.child_attributes or [])
    if not attributes:
        attributes = [
            column.name
            for column in child.schema
            if column.name.lower() != spec.child_key.lower()
        ]
    key_position = child.schema.position(spec.child_key)
    positions = child.schema.positions(attributes)
    descriptions: Dict[str, List[str]] = {}
    for values in child.rows:
        key = values[key_position]
        if is_null(key):
            continue
        parts = [str(values[p]) for p in positions if not is_null(values[p])]
        if not parts:
            continue
        descriptions.setdefault(_normalise_key(key), []).append(" ".join(parts))
    return descriptions


def enrich_with_children(
    relation: Relation,
    catalog: Catalog,
    relationships: Sequence[RelationshipSpec],
) -> Relation:
    """Append one description column per relationship to *relation*.

    Each description cell concatenates (up to ``max_values``) child records of
    the corresponding parent tuple; parents without children get a null, so
    the extra evidence never counts against them (missing data is neutral in
    the similarity measure).
    """
    enriched = relation
    for spec in relationships:
        if not enriched.schema.has_column(spec.parent_key):
            raise DedupError(
                f"main table has no key column {spec.parent_key!r}; "
                f"available: {', '.join(enriched.schema.names)}"
            )
        child = catalog.fetch(spec.child_alias)
        descriptions = _child_descriptions(child, spec)
        parent_position = enriched.schema.position(spec.parent_key)

        def description_for(row, _descriptions=descriptions, _position=parent_position, _spec=spec):
            key = row[_position]
            if is_null(key):
                return None
            parts = _descriptions.get(_normalise_key(key))
            if not parts:
                return None
            return "; ".join(sorted(parts)[: _spec.max_values])

        enriched = enriched.with_column(
            Column(spec.column_name, DataType.STRING),
            [description_for(values) for values in enriched.rows],
        )
    return enriched
