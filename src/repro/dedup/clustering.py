"""Transitive closure of duplicate pairs into object clusters.

"The transitive closure over duplicate pairs is formed to obtain clusters of
objects that all represent a single real-world entity." (paper §2.3)

Implemented with a union-find (disjoint set) structure with path compression
and union by rank.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["UnionFind", "transitive_closure_clusters"]


class UnionFind:
    """Disjoint-set forest over the integers ``0 .. size-1``."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(size))
        self._rank = [0] * size

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: int) -> int:
        """Representative of *item*'s set (with path compression)."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: int, right: int) -> bool:
        """Merge the sets of *left* and *right*; returns whether a merge happened.

        Raises ``ValueError`` naming the offending pair when either index is
        out of range, instead of a bare ``IndexError`` from deep inside the
        forest.
        """
        size = len(self._parent)
        if not (0 <= left < size and 0 <= right < size):
            raise ValueError(
                f"duplicate pair ({left}, {right}) is out of range for a "
                f"relation of {size} tuples"
            )
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1
        return True

    def connected(self, left: int, right: int) -> bool:
        """Whether the two items are in the same set."""
        return self.find(left) == self.find(right)

    def groups(self) -> List[List[int]]:
        """All sets as lists of members, ordered by smallest member."""
        by_root: Dict[int, List[int]] = {}
        for item in range(len(self._parent)):
            by_root.setdefault(self.find(item), []).append(item)
        return sorted(by_root.values(), key=lambda members: members[0])


def transitive_closure_clusters(
    size: int, duplicate_pairs: Iterable[Tuple[int, int]]
) -> List[int]:
    """Assign a cluster id to each of ``size`` tuples given duplicate index pairs.

    Returns a list ``cluster_of[i]`` with dense ids ``0, 1, 2, ...`` in order
    of the first tuple of each cluster — this is exactly the ``objectID``
    column duplicate detection appends.

    Raises ``ValueError`` naming the offending pair when an index is out of
    range for *size* tuples.
    """
    union_find = UnionFind(size)
    for left, right in duplicate_pairs:
        union_find.union(left, right)
    cluster_ids: Dict[int, int] = {}
    assignment: List[int] = []
    for index in range(size):
        root = union_find.find(index)
        if root not in cluster_ids:
            cluster_ids[root] = len(cluster_ids)
        assignment.append(cluster_ids[root])
    return assignment
