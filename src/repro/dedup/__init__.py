"""Domain-independent duplicate detection (the DogmatiX method mapped to tables).

The second HumMer phase (paper §2.3).  Given the outer-unioned table produced
by schema matching:

1. :mod:`repro.dedup.descriptions` — heuristics choose the "interesting"
   attributes worth comparing (related to the object, usable by the measure,
   likely to distinguish duplicates from non-duplicates); the selection can
   be adjusted by the user.
2. :mod:`repro.dedup.blocking`, :mod:`repro.dedup.pairs` and
   :mod:`repro.dedup.filters` — a pluggable blocking strategy proposes
   candidate tuple pairs (all pairs, sorted-neighborhood windows or a token
   inverted index) which are then pruned with a cheap upper bound on the
   similarity measure, so only promising pairs are compared in full.
   :mod:`repro.dedup.executor` makes *where* the surviving pairs are scored
   pluggable too: in-process (serial) or across a process pool
   (multiprocess), with identical results either way.
3. :mod:`repro.dedup.similarity_measure` — the full measure accounts for
   matched vs. unmatched attributes, data similarity (edit / numeric
   distance), the identifying power of a value (soft IDF) and treats
   contradictions as negative evidence while missing data is neutral.
4. :mod:`repro.dedup.clustering` and :mod:`repro.dedup.graphcluster` — a
   pluggable clustering strategy groups the accepted pairs into object
   clusters: transitive closure (union-find, the paper's §2.3 baseline),
   a min-cut audited component clustering, or a maximal-biclique cover of
   the cross-source pair graph; every tuple receives an ``objectID``.
5. :mod:`repro.dedup.classification` — pairs are segmented into sure
   duplicates, unsure cases and sure non-duplicates for the demo's
   confirmation step.
"""

from repro.dedup.blocking import (
    AdaptiveBlocking,
    AllPairsBlocking,
    BlockingPlan,
    BlockingStrategy,
    SortedNeighborhoodBlocking,
    TokenBlocking,
    UnionBlocking,
    profile_relation,
    resolve_blocking,
)
from repro.dedup.descriptions import AttributeSelection, select_interesting_attributes
from repro.dedup.executor import (
    MultiprocessExecutor,
    ScoringExecutor,
    SerialExecutor,
    executor_for_workers,
    resolve_executor,
)
from repro.dedup.enrichment import RelationshipSpec, enrich_with_children
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure, PairEvidence
from repro.dedup.filters import UpperBoundFilter, FilterStatistics
from repro.dedup.pairs import CandidatePairGenerator, PairScore
from repro.dedup.clustering import UnionFind, transitive_closure_clusters
from repro.dedup.graphcluster import (
    BicliqueClustering,
    ClusteringReport,
    ClusteringResult,
    ClusteringStrategy,
    GraphClustering,
    TransitiveClustering,
    resolve_clustering,
)
from repro.dedup.classification import PairClass, classify_pairs, ClassifiedPairs
from repro.dedup.detector import DuplicateDetector, DuplicateDetectionResult, OBJECT_ID_COLUMN

__all__ = [
    "BlockingStrategy",
    "AllPairsBlocking",
    "SortedNeighborhoodBlocking",
    "TokenBlocking",
    "UnionBlocking",
    "AdaptiveBlocking",
    "BlockingPlan",
    "profile_relation",
    "resolve_blocking",
    "ScoringExecutor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "resolve_executor",
    "executor_for_workers",
    "AttributeSelection",
    "select_interesting_attributes",
    "RelationshipSpec",
    "enrich_with_children",
    "DuplicateSimilarityMeasure",
    "PairEvidence",
    "UpperBoundFilter",
    "FilterStatistics",
    "CandidatePairGenerator",
    "PairScore",
    "UnionFind",
    "transitive_closure_clusters",
    "ClusteringStrategy",
    "ClusteringReport",
    "ClusteringResult",
    "TransitiveClustering",
    "GraphClustering",
    "BicliqueClustering",
    "resolve_clustering",
    "PairClass",
    "classify_pairs",
    "ClassifiedPairs",
    "DuplicateDetector",
    "DuplicateDetectionResult",
    "OBJECT_ID_COLUMN",
]
