"""The duplicate detector: selection → filter → compare → classify → cluster.

Output matches the paper: "The output of duplicate detection is the same as
the input relation, but enriched by an objectID column for identification."
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dedup.blocking import BlockingSpec, resolve_blocking
from repro.dedup.classification import ClassifiedPairs, classify_pairs
from repro.dedup.executor import ExecutorSpec, resolve_executor
from repro.dedup.graphcluster import (
    ClusteringReport,
    ClusteringSpec,
    resolve_clustering,
)
from repro.dedup.descriptions import AttributeSelection, select_interesting_attributes
from repro.dedup.filters import FilterStatistics
from repro.dedup.pairs import CandidatePairGenerator, PairScore
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.engine.relation import Relation
from repro.engine.schema import Column
from repro.engine.types import DataType

__all__ = ["OBJECT_ID_COLUMN", "DuplicateDetectionResult", "DuplicateDetector"]

#: Name of the cluster-id column appended by duplicate detection.
OBJECT_ID_COLUMN = "objectID"

#: Source-label column of the transformed union (same default as the
#: candidate generator's ``source_column``); bipartite-aware clustering
#: strategies read it when present.
SOURCE_COLUMN = "sourceID"


@dataclass
class DuplicateDetectionResult:
    """Everything duplicate detection produces.

    Attributes:
        relation: the input relation enriched with the ``objectID`` column.
        cluster_assignment: objectID per input row, in row order.
        classified: pairs segmented into sure / unsure / non-duplicates.
        scores: all fully compared pairs.
        selection: the attribute selection that was used.
        filter_statistics: how many pairs each stage (blocking, cross-source
            rule, upper-bound filter) pruned.
        clustering_report: what the clustering strategy did to the accepted
            pair graph (``None`` only for results built by legacy callers).
    """

    relation: Relation
    cluster_assignment: List[int]
    classified: ClassifiedPairs
    scores: List[PairScore]
    selection: AttributeSelection
    filter_statistics: FilterStatistics
    clustering_report: Optional[ClusteringReport] = None

    @property
    def cluster_count(self) -> int:
        """Number of distinct real-world objects found."""
        return len(set(self.cluster_assignment))

    @property
    def duplicate_pairs(self) -> List[Tuple[int, int]]:
        """Accepted duplicate index pairs (after default handling of unsure pairs)."""
        return self.classified.accepted_pairs(accept_unsure_by_default=True)

    def clusters(self) -> Dict[int, List[int]]:
        """objectID → list of row indices."""
        grouped: Dict[int, List[int]] = {}
        for index, cluster in enumerate(self.cluster_assignment):
            grouped.setdefault(cluster, []).append(index)
        return grouped

    def multi_tuple_clusters(self) -> Dict[int, List[int]]:
        """Only the clusters with more than one tuple (the actual duplicates)."""
        return {cid: rows for cid, rows in self.clusters().items() if len(rows) > 1}


class DuplicateDetector:
    """Similarity-threshold duplicate detector with pluggable pair clustering.

    Args:
        threshold: pairs at or above this similarity are duplicates.
        uncertainty_band: width of the "unsure" band below the threshold.
        use_filter: apply the upper-bound filter before full comparison.
        cross_source_only: only compare tuples from different sources.
        selection: explicit attribute selection; when omitted the heuristics
            of :func:`select_interesting_attributes` run on the input.
        accept_unsure: whether undecided unsure pairs count as duplicates in
            the fully automatic pipeline (default True).
        keep_evidence: keep per-attribute evidence on every scored pair.
        blocking: candidate-pair blocking strategy — a
            :class:`~repro.dedup.blocking.BlockingStrategy` instance, a name
            (``"allpairs"``, ``"snm"``, ``"token"``, ``"union:snm+token"``,
            ``"adaptive"``) or ``None`` for the exact all-pairs baseline.
        clustering: duplicate-grouping strategy — a
            :class:`~repro.dedup.graphcluster.ClusteringStrategy` instance, a
            name (``"transitive"``, ``"graph"``, ``"biclique"``) or ``None``
            for the paper's transitive-closure baseline.
        executor: pair-scoring executor — a
            :class:`~repro.dedup.executor.ScoringExecutor` instance, a name
            (``"serial"``, ``"multiprocess"``) or ``None`` for the in-process
            serial baseline.

    The plain :attr:`progress_callback` attribute (not a constructor field,
    so :meth:`with_overrides` copies stay clean) is handed to the candidate
    generator: executors invoke it as scoring batches complete —
    ``("pairs_scored", cumulative_pairs, total_candidates)``.
    """

    #: Optional ``(phase, done, total)`` scoring-progress callable.
    progress_callback = None

    def __init__(
        self,
        threshold: float = 0.7,
        uncertainty_band: float = 0.1,
        use_filter: bool = True,
        cross_source_only: bool = False,
        selection: Optional[AttributeSelection] = None,
        accept_unsure: bool = True,
        keep_evidence: bool = False,
        blocking: BlockingSpec = None,
        clustering: ClusteringSpec = None,
        executor: ExecutorSpec = None,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        self.threshold = threshold
        self.uncertainty_band = uncertainty_band
        self.use_filter = use_filter
        self.cross_source_only = cross_source_only
        self.selection = selection
        self.accept_unsure = accept_unsure
        self.keep_evidence = keep_evidence
        self.blocking = resolve_blocking(blocking)
        self.clustering = resolve_clustering(clustering)
        self.executor = resolve_executor(executor)

    def with_overrides(self, **overrides) -> "DuplicateDetector":
        """A copy of this detector with the given constructor fields replaced.

        The copy carries *every* constructor field over (the field set is
        read from the constructor signature, not spelled out by hand), so a
        newly added detector knob can never be silently dropped by a caller
        that rebuilds the detector field by field — the historical source of
        latent configuration drift in ``step_duplicate_detection``.

        Raises:
            TypeError: on an override that is not a constructor field.
            AttributeError: if a constructor field is not stored under its
                own name — a loud signal to fix the new field rather than
                lose it.
        """
        parameters = [
            name
            for name in inspect.signature(type(self).__init__).parameters
            if name != "self"
        ]
        unknown = sorted(set(overrides) - set(parameters))
        if unknown:
            raise TypeError(
                f"unknown detector field(s) {', '.join(map(repr, unknown))} "
                f"(known: {', '.join(parameters)})"
            )
        settings = {name: getattr(self, name) for name in parameters}
        settings.update(overrides)
        return type(self)(**settings)

    def detect(self, relation: Relation) -> DuplicateDetectionResult:
        """Run duplicate detection on *relation* and append the objectID column."""
        selection = self.selection or select_interesting_attributes(relation)
        measure = DuplicateSimilarityMeasure(selection).fit(relation)
        generator = CandidatePairGenerator(
            measure,
            filter_threshold=self.threshold - self.uncertainty_band,
            use_filter=self.use_filter,
            cross_source_only=self.cross_source_only,
            keep_evidence=self.keep_evidence,
            blocking=self.blocking,
            executor=self.executor,
            progress_callback=self.progress_callback,
        )
        scores = generator.score_pairs(relation)
        classified = classify_pairs(scores, self.threshold, self.uncertainty_band)
        assignment, report = self._cluster_accepted(relation, classified)
        enriched = relation.with_column(
            Column(OBJECT_ID_COLUMN, DataType.INTEGER), assignment
        )
        return DuplicateDetectionResult(
            relation=enriched,
            cluster_assignment=assignment,
            classified=classified,
            scores=scores,
            selection=selection,
            filter_statistics=generator.filter.statistics,
            clustering_report=report,
        )

    def redetect_with_decisions(
        self, relation: Relation, result: DuplicateDetectionResult
    ) -> DuplicateDetectionResult:
        """Re-cluster after the user decided some unsure pairs (demo step 4).

        Comparison scores are reused; only the clustering and the objectID
        column are recomputed.
        """
        assignment, report = self._cluster_accepted(relation, result.classified)
        enriched = relation.with_column(
            Column(OBJECT_ID_COLUMN, DataType.INTEGER), assignment
        )
        return DuplicateDetectionResult(
            relation=enriched,
            cluster_assignment=assignment,
            classified=result.classified,
            scores=result.scores,
            selection=result.selection,
            filter_statistics=result.filter_statistics,
            clustering_report=report,
        )

    def _cluster_accepted(
        self, relation: Relation, classified: ClassifiedPairs
    ) -> Tuple[List[int], ClusteringReport]:
        """Group the accepted pairs with the configured clustering strategy."""
        scored = classified.accepted_scored_pairs(
            accept_unsure_by_default=self.accept_unsure
        )
        edges = [
            (pair.left_index, pair.right_index, pair.similarity) for pair in scored
        ]
        sources = (
            relation.column(SOURCE_COLUMN)
            if relation.schema.has_column(SOURCE_COLUMN)
            else None
        )
        result = self.clustering.cluster(len(relation), edges, sources)
        return result.assignment, result.report
