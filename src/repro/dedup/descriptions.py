"""Heuristic selection of "interesting" attributes for duplicate detection.

Paper §2.3: attributes are interesting when they are (i) related to the
object under consideration, (ii) usable by the similarity measure and
(iii) likely to distinguish duplicates from non-duplicates.  The heuristics
below operationalise (ii) and (iii) on profiling statistics; (i) is a given
for columns of the fused table itself and an opt-in for columns contributed
by related tables.  The resulting :class:`AttributeSelection` can be adjusted
by the user before detection runs (the demo's step 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.engine.relation import Relation
from repro.engine.statistics import profile_relation

__all__ = ["AttributeSelection", "select_interesting_attributes"]

#: Columns that are bookkeeping, never evidence of identity.
_SYSTEM_COLUMNS = {"sourceid", "objectid"}


@dataclass
class AttributeSelection:
    """The attributes duplicate detection will compare, with optional weights.

    Attributes:
        attributes: selected attribute names, in schema order.
        weights: optional per-attribute weight overrides (defaults to the
            soft-IDF weighting computed by the similarity measure).
        rejected: attributes considered and rejected, with the reason —
            surfaced to the user so the selection can be adjusted.
    """

    attributes: List[str]
    weights: Dict[str, float] = field(default_factory=dict)
    rejected: Dict[str, str] = field(default_factory=dict)

    def add(self, attribute: str, weight: Optional[float] = None) -> None:
        """User adjustment: force an attribute into the selection."""
        if attribute not in self.attributes:
            self.attributes.append(attribute)
        if weight is not None:
            self.weights[attribute] = weight
        self.rejected.pop(attribute, None)

    def remove(self, attribute: str) -> None:
        """User adjustment: drop an attribute from the selection."""
        if attribute in self.attributes:
            self.attributes.remove(attribute)
            self.rejected[attribute] = "removed by user"

    def __contains__(self, attribute: object) -> bool:
        return attribute in self.attributes

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)


def select_interesting_attributes(
    relation: Relation,
    max_null_ratio: float = 0.9,
    min_distinctness: float = 0.05,
    exclude: Iterable[str] = (),
    always_include: Iterable[str] = (),
) -> AttributeSelection:
    """Apply the selection heuristics to *relation*.

    Heuristics (each rejection is recorded with its reason):

    * system columns (``sourceID``, ``objectID``) are never evidence;
    * attributes that are almost always null cannot distinguish anything
      (completeness below ``1 - max_null_ratio``);
    * near-constant attributes (distinctness below *min_distinctness*) do not
      separate duplicates from non-duplicates;
    * everything else is kept, weighted by distinctness so that highly
      identifying attributes (names, titles, identifiers) count more.
    """
    statistics = profile_relation(relation)
    excluded = {name.lower() for name in exclude} | _SYSTEM_COLUMNS
    forced = {name.lower() for name in always_include}
    selected: List[str] = []
    weights: Dict[str, float] = {}
    rejected: Dict[str, str] = {}

    for column in relation.schema:
        name = column.name
        key = name.lower()
        stats = statistics.column(name)
        if key in forced:
            selected.append(name)
            weights[name] = max(stats.distinctness, 0.1)
            continue
        if key in excluded:
            rejected[name] = "system or explicitly excluded column"
            continue
        if stats.row_count > 0 and stats.null_ratio > max_null_ratio:
            rejected[name] = f"too sparse ({stats.null_ratio:.0%} null)"
            continue
        if stats.row_count > 1 and stats.distinct_count > 0 and stats.distinctness < min_distinctness:
            rejected[name] = f"near-constant (distinctness {stats.distinctness:.2f})"
            continue
        selected.append(name)
        weights[name] = max(stats.distinctness, 0.1)

    return AttributeSelection(attributes=selected, weights=weights, rejected=rejected)
