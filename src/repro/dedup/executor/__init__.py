"""Pluggable execution of candidate-pair scoring.

Blocking (PR 1) decides *which* pairs duplicate detection looks at; this
package decides *where* the surviving pairs are filtered and scored — the
second pluggable axis of the dedup pipeline:

* :class:`SerialExecutor` — the in-process baseline (default), byte-identical
  to the seed scoring loop;
* :class:`MultiprocessExecutor` — stdlib ``ProcessPoolExecutor`` fan-out over
  contiguous candidate batches, with deterministic merge and an automatic
  serial fallback below a pair-count threshold.

Executors never change *what* is scored: the same pairs get the same
similarities and the same :class:`FilterStatistics`, in the same order.  See
``docs/parallel_scoring.md`` for selection and tuning guidance.
"""

from __future__ import annotations

from typing import Union

from repro.dedup.executor.base import (
    BatchScores,
    ScoringBatch,
    ScoringExecutor,
    score_batch,
)
from repro.dedup.executor.multiprocess import MultiprocessExecutor
from repro.dedup.executor.serial import SerialExecutor

__all__ = [
    "ScoringExecutor",
    "ExecutorSpec",
    "SerialExecutor",
    "MultiprocessExecutor",
    "ScoringBatch",
    "BatchScores",
    "score_batch",
    "SCORING_EXECUTORS",
    "resolve_executor",
    "executor_for_workers",
]

#: CLI / config name → executor class.
SCORING_EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    MultiprocessExecutor.name: MultiprocessExecutor,
}

#: What every ``executor=`` parameter accepts: an executor name, an instance
#: or ``None`` (→ the serial baseline).
ExecutorSpec = Union[str, ScoringExecutor, None]


def resolve_executor(spec: ExecutorSpec, **options) -> ScoringExecutor:
    """Turn an executor name, instance or ``None`` into a :class:`ScoringExecutor`.

    Args:
        spec: ``None`` (→ serial baseline), a name from
            :data:`SCORING_EXECUTORS` (``"serial"``, ``"multiprocess"``), or
            an already-constructed executor.
        options: keyword arguments for the executor constructor when *spec*
            is a name (e.g. ``workers=``, ``chunk_size=`` for multiprocess).
            Rejected when *spec* is an instance.
    """
    if spec is None:
        spec = SerialExecutor.name
    if isinstance(spec, ScoringExecutor):
        if options:
            raise ValueError(
                "executor options cannot be combined with an already-constructed executor"
            )
        return spec
    try:
        executor_class = SCORING_EXECUTORS[spec]
    except KeyError:
        known = ", ".join(sorted(SCORING_EXECUTORS))
        raise ValueError(f"unknown scoring executor {spec!r} (known: {known})") from None
    return executor_class(**options)


def executor_for_workers(workers, chunk_size=None) -> ScoringExecutor:
    """The executor implied by a ``--workers N`` style setting.

    ``None`` or ``workers <= 1`` selects the serial baseline; anything larger
    selects :class:`MultiprocessExecutor` with that worker count (and the
    optional *chunk_size*).
    """
    if workers is None or workers <= 1:
        return SerialExecutor()
    return MultiprocessExecutor(workers=workers, chunk_size=chunk_size)
