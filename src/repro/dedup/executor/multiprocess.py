"""Multiprocess scoring — fan candidate batches out over a process pool.

Scoring a candidate pair touches nothing but the fitted measure and the two
tuples' selected cells, so the work partitions perfectly: the parent
enumerates candidates (blocking + cross-source rule, cheap and sequential),
slices them into contiguous batches, and ships each batch to a
``ProcessPoolExecutor`` worker.  Workers receive the columnar
:class:`~repro.dedup.executor.base.ScoringBatch` snapshot once, through the
pool initializer, so the measure and the selected columns are pickled per
*worker*, not per batch — and nothing but the selected columns ships at all.

Determinism: batches are contiguous slices of the candidate stream and
results are merged in batch order (``Executor.map`` preserves it), so the
returned score list — and the merged filter counters — are identical to a
serial run regardless of worker scheduling.

Small inputs fall back to the serial path: below
``min_parallel_pairs`` candidates the fork/pickle overhead dwarfs the scoring
work, and the fallback keeps tiny interactive runs free of it entirely.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.dedup.executor.base import (
    BatchScores,
    ScoringBatch,
    ScoringExecutor,
    score_batch,
    score_with_filter,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.dedup.pairs import CandidatePairGenerator, PairScore
    from repro.engine.relation import Relation

__all__ = ["MultiprocessExecutor"]

#: Snapshot installed once per worker process by the pool initializer.
_worker_batch: Optional[ScoringBatch] = None


def _initialise_worker(batch: ScoringBatch) -> None:
    global _worker_batch
    _worker_batch = batch


def _score_chunk(pairs: Sequence[Tuple[int, int]]) -> BatchScores:
    assert _worker_batch is not None, "worker used before initialisation"
    return score_batch(_worker_batch, pairs)


class MultiprocessExecutor(ScoringExecutor):
    """Scores candidate batches across worker processes (stdlib only).

    Args:
        workers: worker process count; defaults to ``os.cpu_count()``.
        chunk_size: pairs per batch.  ``None`` (default) slices the candidate
            list into roughly four batches per worker — large enough to
            amortise per-batch dispatch, small enough to keep the pool busy
            when batch runtimes vary (blocks of near-duplicates filter less
            and score slower than random pairs).
        min_parallel_pairs: below this many candidate pairs the executor
            scores serially in-process; forking a pool for a few hundred
            pairs costs more than it saves.  Set to 0 to force the pool
            (useful in tests).
        mp_context: optional :mod:`multiprocessing` context (e.g. the
            ``"spawn"`` context on platforms where ``fork`` is unsafe);
            ``None`` uses the platform default.
    """

    name = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        min_parallel_pairs: int = 2048,
        mp_context=None,
    ):
        resolved_workers = workers if workers is not None else os.cpu_count() or 1
        if resolved_workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1 when given")
        if min_parallel_pairs < 0:
            raise ValueError("min_parallel_pairs must not be negative")
        self.workers = resolved_workers
        self.chunk_size = chunk_size
        self.min_parallel_pairs = min_parallel_pairs
        self.mp_context = mp_context

    def effective_chunk_size(self, pair_count: int) -> int:
        """Batch size for *pair_count* candidates (≈ 4 batches per worker)."""
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(pair_count / (self.workers * 4)))

    def snapshot(
        self, generator: "CandidatePairGenerator", relation: "Relation"
    ) -> ScoringBatch:
        """The picklable worker payload for one scoring run.

        Columnar: only the measure's selected columns (plus cached null
        masks) ship to the workers, not the full row tuples.
        """
        return ScoringBatch.from_generator(generator, relation)

    def score_pairs(
        self, generator: "CandidatePairGenerator", relation: "Relation"
    ) -> List["PairScore"]:
        pairs = list(generator.candidate_indices(relation))
        if self.workers == 1 or len(pairs) < max(self.min_parallel_pairs, 2):
            return score_with_filter(generator, relation, pairs)

        chunk = self.effective_chunk_size(len(pairs))
        chunks = [pairs[start : start + chunk] for start in range(0, len(pairs), chunk)]
        pool_size = min(self.workers, len(chunks))
        batch = self.snapshot(generator, relation)
        statistics = generator.statistics
        callback = getattr(generator, "progress_callback", None)
        scored: List["PairScore"] = []
        done = 0
        # Merge inside the pool context and in batch order (``Executor.map``
        # preserves it), emitting cumulative progress per merged batch:
        # ``("pairs_scored", pairs_done_so_far, total_candidates)``.
        with ProcessPoolExecutor(
            max_workers=pool_size,
            mp_context=self.mp_context,
            initializer=_initialise_worker,
            initargs=(batch,),
        ) as pool:
            for result in pool.map(_score_chunk, chunks):
                statistics.considered += result.considered
                statistics.pruned += result.pruned
                scored.extend(result.scores)
                done += result.considered
                if callback is not None:
                    callback("pairs_scored", done, len(pairs))
        return scored

    def __repr__(self) -> str:
        return (
            f"MultiprocessExecutor(workers={self.workers}, "
            f"chunk_size={self.chunk_size!r}, "
            f"min_parallel_pairs={self.min_parallel_pairs})"
        )
