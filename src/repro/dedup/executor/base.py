"""The scoring-executor contract.

Blocking (PR 1) made candidate *generation* near-linear, which leaves
full-measure scoring of the surviving pairs as the dedup hot path.  Scoring
is embarrassingly parallel — each pair is filtered and compared independently
of every other pair — so this package turns the scoring loop into a strategy,
the second pluggable axis of the dedup pipeline after blocking.

A :class:`ScoringExecutor` receives the fully configured
:class:`~repro.dedup.pairs.CandidatePairGenerator` and the relation and
returns the list of :class:`~repro.dedup.pairs.PairScore` for every candidate
pair that survives the upper-bound filter.  The contract:

* the returned scores are **identical** (same pairs, same similarities, same
  order) to what the serial loop produces — executors change *where* pairs
  are scored, never *what* is scored;
* the generator's shared :class:`~repro.dedup.filters.FilterStatistics` ends
  up with the same counter values as a serial run (parallel executors merge
  their workers' partial counts back deterministically);
* candidate enumeration (blocking + cross-source rule) always happens in the
  calling process — only filtering and scoring fan out.

:class:`ScoringBatch`/:func:`score_batch` are the shared primitives: a
picklable snapshot of everything one worker needs, and the pure function that
scores a slice of pairs against it.  Every path — the serial executor, the
multiprocess fallback and the pool workers — funnels through
:func:`score_batch`, which is what makes byte-identical results structural
rather than a matter of keeping parallel loops in sync.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.dedup.pairs import CandidatePairGenerator, PairScore
    from repro.engine.relation import Relation

__all__ = ["ScoringBatch", "BatchScores", "ScoringExecutor", "score_batch", "score_with_filter"]


@dataclass
class ScoringBatch:
    """Everything a worker needs to filter and score candidate pairs.

    The snapshot is **columnar**: it ships only the measure's selected
    columns (zero-copy value lists off the relation's
    :class:`~repro.engine.columnar.ColumnStore`) plus their cached null
    masks, not the full row tuples — the worker pickle shrinks to exactly
    the cells scoring reads.  It is built once per ``score_pairs`` call and
    shipped to every worker through the process-pool initializer, so it is
    pickled once per worker rather than once per batch.  ``measure`` must be
    fitted; its transient trigram cache is dropped during pickling
    (:meth:`DuplicateSimilarityMeasure.__getstate__`).

    Attributes:
        measure: the fitted similarity measure (picklable snapshot).
        columns: selected attribute → full values list, in row-index order.
        null_masks: selected attribute → cached null mask (1 = null).
        filter_threshold: upper-bound filter threshold.
        use_filter: whether the upper-bound filter is applied at all.
        keep_evidence: retain per-attribute evidence on every scored pair.
    """

    measure: "object"
    columns: Dict[str, List]
    null_masks: Dict[str, bytes]
    filter_threshold: float
    use_filter: bool
    keep_evidence: bool
    #: Lazily built per-process :class:`ColumnarPairScorer`; its memo tables
    #: (trigram sets, cell-pair similarities, soft-IDF weights) persist
    #: across the chunks a worker scores.  Never pickled.
    _scorer: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_generator(
        cls, generator: "CandidatePairGenerator", relation: "Relation"
    ) -> "ScoringBatch":
        """Snapshot *generator*'s scoring configuration over *relation*."""
        measure = generator.measure
        attributes = measure.fitted_attributes
        return cls(
            measure=measure,
            columns={attribute: relation.column(attribute) for attribute in attributes},
            null_masks={
                attribute: relation.null_mask(attribute) for attribute in attributes
            },
            filter_threshold=generator.filter.threshold,
            use_filter=generator.filter.enabled,
            keep_evidence=generator.keep_evidence,
        )

    def scorer(self):
        """The batch scorer, built on first use and cached per process."""
        if self._scorer is None:
            self._scorer = self.measure.columnar_scorer(self.columns, self.null_masks)
        return self._scorer

    def __getstate__(self) -> dict:
        # The scorer holds per-process memo tables; workers rebuild it
        # lazily for exactly the rows they touch.
        state = self.__dict__.copy()
        state["_scorer"] = None
        return state


@dataclass
class BatchScores:
    """One worker's result for one batch: scores plus partial filter counters."""

    scores: List["PairScore"] = field(default_factory=list)
    considered: int = 0
    pruned: int = 0


def score_batch(batch: ScoringBatch, pairs: Iterable[Tuple[int, int]]) -> BatchScores:
    """Filter and score one slice of candidate pairs against a snapshot.

    Pure function of its arguments — safe to run in any process.  This is
    the single scoring path: the serial executor, the multiprocess fallback
    and the pool workers all call it, which is what makes executor parity
    structural rather than a matter of keeping copies in sync.

    The chunk is scored through the measure's columnar batch kernels: the
    upper-bound filter runs over per-row cached trigram sets, and the
    surviving pairs are scored attribute-major in one
    :meth:`ColumnarPairScorer.similarities` / :meth:`~ColumnarPairScorer.explain`
    call.  Counters mirror :meth:`UpperBoundFilter.passes` exactly
    (considered counts every pair, pruned counts filter rejections) so
    partial counters merge into the generator's :class:`FilterStatistics`
    without drift, and scores come back in candidate order — both
    bit-identical to the per-pair reference loop.
    """
    from repro.dedup.pairs import PairScore

    scorer = batch.scorer()
    result = BatchScores()
    pairs = list(pairs)
    result.considered = len(pairs)
    if batch.use_filter:
        threshold = batch.filter_threshold
        survivors = [
            pair for pair in pairs if scorer.upper_bound(pair[0], pair[1]) >= threshold
        ]
        result.pruned = result.considered - len(survivors)
    else:
        survivors = pairs
    if batch.keep_evidence:
        for (i, j), evidence in zip(survivors, scorer.explain(survivors)):
            result.scores.append(PairScore(i, j, evidence.similarity, evidence))
    else:
        for (i, j), similarity in zip(survivors, scorer.similarities(survivors)):
            result.scores.append(PairScore(i, j, similarity))
    return result


def score_with_filter(
    generator: "CandidatePairGenerator",
    relation: "Relation",
    pairs: Iterable[Tuple[int, int]],
) -> List["PairScore"]:
    """Score *pairs* in-process and merge the counters into the generator.

    The serial executor and the multiprocess executor's small-input fallback
    run the same :func:`score_batch` path the pool workers do — against the
    generator's live measure, with the filter counters folded into the shared
    :class:`FilterStatistics` afterwards.  The generator's optional
    ``progress_callback`` fires once for the whole (single-batch) run:
    ``("pairs_scored", considered, considered)``.
    """
    result = score_batch(ScoringBatch.from_generator(generator, relation), pairs)
    statistics = generator.statistics
    statistics.considered += result.considered
    statistics.pruned += result.pruned
    callback = getattr(generator, "progress_callback", None)
    if callback is not None:
        callback("pairs_scored", result.considered, result.considered)
    return result.scores


class ScoringExecutor(ABC):
    """Runs the filter + full-measure scoring stage over candidate pairs.

    Subclasses implement :meth:`score_pairs`.  Candidate enumeration stays in
    the calling process; only the per-pair work (upper-bound filter, full
    comparison) may fan out.  Results and statistics must match the serial
    loop exactly — see the module docstring for the full contract.
    """

    #: Short machine name, used by the CLI and ``resolve_executor``.
    name: str = "base"

    @abstractmethod
    def score_pairs(
        self, generator: "CandidatePairGenerator", relation: "Relation"
    ) -> List["PairScore"]:
        """Filter and score every candidate pair of *relation*.

        Args:
            generator: the configured generator (measure, filter, blocking).
            relation: the combined relation being deduplicated.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
