"""Serial scoring — the in-process baseline, byte-identical to the seed loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.dedup.executor.base import ScoringExecutor, score_with_filter

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.dedup.pairs import CandidatePairGenerator, PairScore
    from repro.engine.relation import Relation

__all__ = ["SerialExecutor"]


class SerialExecutor(ScoringExecutor):
    """Scores every candidate pair in the calling process (the default).

    This is the seed behaviour exactly: pairs stream straight from candidate
    enumeration through the generator's shared filter into the score list, so
    there is no materialisation overhead and statistics accumulate in place.
    """

    name = "serial"

    def score_pairs(
        self, generator: "CandidatePairGenerator", relation: "Relation"
    ) -> List["PairScore"]:
        return score_with_filter(
            generator, relation, generator.candidate_indices(relation)
        )
