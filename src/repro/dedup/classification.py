"""Segmentation of compared pairs into sure / unsure / non-duplicates.

"The results of duplicate detection are visualized in three segments: sure
duplicates, sure non-duplicates, and unsure cases, all of which users can
decide upon individually or in summary." (paper §3)

The segmentation uses two thresholds around the duplicate threshold θ: pairs
scoring at or above θ are duplicates; pairs within an uncertainty band just
below θ are "unsure" and presented for confirmation; everything lower is a
sure non-duplicate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dedup.pairs import PairScore

__all__ = ["PairClass", "ClassifiedPairs", "classify_pairs"]


class PairClass(enum.Enum):
    """Outcome of classifying one compared pair."""

    SURE_DUPLICATE = "sure_duplicate"
    UNSURE = "unsure"
    SURE_NON_DUPLICATE = "sure_non_duplicate"


@dataclass
class ClassifiedPairs:
    """Compared pairs grouped into the three demo segments."""

    sure_duplicates: List[PairScore] = field(default_factory=list)
    unsure: List[PairScore] = field(default_factory=list)
    sure_non_duplicates: List[PairScore] = field(default_factory=list)
    #: User decisions on unsure pairs: index pair → accepted as duplicate?
    decisions: Dict[Tuple[int, int], bool] = field(default_factory=dict)

    def confirm(self, pair: Tuple[int, int], is_duplicate: bool) -> None:
        """Record a user decision for an unsure pair (demo step 4)."""
        self.decisions[tuple(sorted(pair))] = is_duplicate

    def confirm_all(self, is_duplicate: bool) -> None:
        """Decide all unsure pairs at once ("in summary")."""
        for pair in self.unsure:
            self.decisions[pair.as_tuple()] = is_duplicate

    def accepted_pairs(self, accept_unsure_by_default: bool = False) -> List[Tuple[int, int]]:
        """Index pairs that count as duplicates after applying user decisions.

        Unsure pairs without an explicit decision follow
        *accept_unsure_by_default* (the fully automatic pipeline accepts
        them, matching a single-threshold detector).
        """
        accepted = [pair.as_tuple() for pair in self.sure_duplicates]
        for pair in self.unsure:
            decision = self.decisions.get(pair.as_tuple(), accept_unsure_by_default)
            if decision:
                accepted.append(pair.as_tuple())
        return accepted

    def accepted_scored_pairs(
        self, accept_unsure_by_default: bool = False
    ) -> List[PairScore]:
        """Like :meth:`accepted_pairs`, but keeping the full scored pairs.

        Clustering strategies consume these: the similarities become the
        edge weights of the accepted pair graph.
        """
        accepted = list(self.sure_duplicates)
        for pair in self.unsure:
            decision = self.decisions.get(pair.as_tuple(), accept_unsure_by_default)
            if decision:
                accepted.append(pair)
        return accepted

    @property
    def counts(self) -> Dict[str, int]:
        """Segment sizes, keyed by segment name."""
        return {
            "sure_duplicates": len(self.sure_duplicates),
            "unsure": len(self.unsure),
            "sure_non_duplicates": len(self.sure_non_duplicates),
        }


def classify_pairs(
    scores: Sequence[PairScore],
    threshold: float,
    uncertainty_band: float = 0.1,
) -> ClassifiedPairs:
    """Classify compared pairs around *threshold*.

    * similarity ≥ threshold → sure duplicate
    * threshold - band ≤ similarity < threshold → unsure
    * otherwise → sure non-duplicate
    """
    if uncertainty_band < 0:
        raise ValueError("uncertainty_band must be non-negative")
    result = ClassifiedPairs()
    lower = threshold - uncertainty_band
    for score in scores:
        if score.similarity >= threshold:
            result.sure_duplicates.append(score)
        elif score.similarity >= lower:
            result.unsure.append(score)
        else:
            result.sure_non_duplicates.append(score)
    return result
