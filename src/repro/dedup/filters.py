"""Comparison-pruning filter.

"The number of pairwise comparisons are reduced by applying a filter (upper
bound to the similarity measure) and comparing only the remaining pairs."
(paper §2.3)

:class:`UpperBoundFilter` wraps the measure's cheap upper bound and keeps
statistics so experiment E2 can report how many full comparisons the filter
saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dedup.similarity_measure import DuplicateSimilarityMeasure

__all__ = ["FilterStatistics", "UpperBoundFilter"]


@dataclass
class FilterStatistics:
    """Counts of pairs seen and pruned by the filter."""

    considered: int = 0
    pruned: int = 0

    @property
    def compared(self) -> int:
        """Pairs that passed the filter and were fully compared."""
        return self.considered - self.pruned

    @property
    def pruning_ratio(self) -> float:
        """Fraction of candidate pairs the filter removed."""
        if self.considered == 0:
            return 0.0
        return self.pruned / self.considered

    def reset(self) -> None:
        """Zero the counters."""
        self.considered = 0
        self.pruned = 0


class UpperBoundFilter:
    """Prunes candidate pairs whose upper-bound similarity is below the threshold.

    Because the bound is an over-estimate of the true similarity, pruning a
    pair can never remove a true duplicate that the full measure would have
    accepted at the same threshold.
    """

    def __init__(self, measure: DuplicateSimilarityMeasure, threshold: float, enabled: bool = True):
        self.measure = measure
        self.threshold = threshold
        self.enabled = enabled
        self.statistics = FilterStatistics()

    def passes(self, left: Sequence, right: Sequence) -> bool:
        """Whether the pair survives the filter (True = compare it in full)."""
        self.statistics.considered += 1
        if not self.enabled:
            return True
        if self.measure.upper_bound(left, right) >= self.threshold:
            return True
        self.statistics.pruned += 1
        return False
