"""Comparison-pruning filter.

"The number of pairwise comparisons are reduced by applying a filter (upper
bound to the similarity measure) and comparing only the remaining pairs."
(paper §2.3)

:class:`UpperBoundFilter` wraps the measure's cheap upper bound and keeps
statistics so experiment E2 can report how many full comparisons the filter
saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.dedup.similarity_measure import DuplicateSimilarityMeasure

__all__ = ["FilterStatistics", "UpperBoundFilter"]


@dataclass
class FilterStatistics:
    """Counts of pairs at every pruning stage of candidate generation.

    Pairs flow through three gates, each cheaper than the next stage::

        all i<j pairs --blocking--> candidates --cross-source--> considered
                      --upper-bound filter--> compared in full

    Attributes:
        total_pairs: every ``i < j`` pair of the input relation.
        blocking_candidates: pairs proposed by the blocking strategy.
        cross_source_skipped: proposed pairs dropped because both tuples came
            from the same source (``cross_source_only``).
        considered: pairs that reached the upper-bound filter.
        pruned: pairs the upper-bound filter removed.
        blocking_plan: the plan report of a deciding blocking strategy (the
            adaptive planner, union blocking), or ``None`` for fixed
            strategies.  Set during candidate enumeration so summaries and
            the CLI can show *why* the candidates look the way they do.
    """

    total_pairs: int = 0
    blocking_candidates: int = 0
    cross_source_skipped: int = 0
    considered: int = 0
    pruned: int = 0
    blocking_plan: Optional[Dict[str, Any]] = None

    @property
    def compared(self) -> int:
        """Pairs that passed the filter and were fully compared."""
        return self.considered - self.pruned

    @property
    def pruning_ratio(self) -> float:
        """Fraction of considered pairs the upper-bound filter removed."""
        if self.considered == 0:
            return 0.0
        return self.pruned / self.considered

    @property
    def blocking_pruned(self) -> int:
        """Pairs the blocking strategy never proposed."""
        return max(0, self.total_pairs - self.blocking_candidates)

    @property
    def blocking_ratio(self) -> float:
        """Fraction of all pairs removed by blocking alone."""
        if self.total_pairs == 0:
            return 0.0
        return self.blocking_pruned / self.total_pairs

    def as_dict(self) -> dict:
        """All counters and ratios, for summaries and the experiment harness."""
        return {
            "total_pairs": self.total_pairs,
            "blocking_candidates": self.blocking_candidates,
            "blocking_pruned": self.blocking_pruned,
            "cross_source_skipped": self.cross_source_skipped,
            "considered": self.considered,
            "pruned": self.pruned,
            "compared": self.compared,
            "blocking_plan": self.blocking_plan,
        }

    def reset(self) -> None:
        """Zero the counters."""
        self.total_pairs = 0
        self.blocking_candidates = 0
        self.cross_source_skipped = 0
        self.considered = 0
        self.pruned = 0
        self.blocking_plan = None


class UpperBoundFilter:
    """Prunes candidate pairs whose upper-bound similarity is below the threshold.

    Because the bound is an over-estimate of the true similarity, pruning a
    pair can never remove a true duplicate that the full measure would have
    accepted at the same threshold.
    """

    def __init__(self, measure: DuplicateSimilarityMeasure, threshold: float, enabled: bool = True):
        self.measure = measure
        self.threshold = threshold
        self.enabled = enabled
        self.statistics = FilterStatistics()

    def passes(self, left: Sequence, right: Sequence) -> bool:
        """Whether the pair survives the filter (True = compare it in full)."""
        self.statistics.considered += 1
        if not self.enabled:
            return True
        if self.measure.upper_bound(left, right) >= self.threshold:
            return True
        self.statistics.pruned += 1
        return False
