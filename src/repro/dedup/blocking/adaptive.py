"""Adaptive blocking — a profiling-driven planner over the fixed strategies.

PRs 1–2 made pair *enumeration* and pair *scoring* pluggable, but choosing
the strategy (and its ``window`` / block-cap knobs) was still the caller's
blind guess.  :class:`AdaptiveBlocking` closes that loop: it profiles the
relation once — tuple count, per-attribute cardinality and null rate, and
the token distribution of the existing :class:`TokenBlocking` inverted
index — and *plans*:

* **small inputs** fall back to the exact :class:`AllPairsBlocking`
  baseline (quadratic is affordable, and only it has perfect
  candidate-stage recall);
* otherwise the sorted-neighborhood ``window`` is **escalated** along a
  ladder until the proposed-pair count plateaus (a wider window that barely
  proposes new pairs is pure cost), then stepped back down if the proposal
  count blows the pair budget;
* when the per-attribute **corruption estimates** are high — values rarely
  share even one identifying token with any other row, so single-evidence
  strategies will drop true duplicates — the plan escalates to
  :class:`~repro.dedup.blocking.union.UnionBlocking` over ``snm + token``,
  proposing from both kinds of cheap index and letting the full measure
  verify.

The chosen plan is a :class:`BlockingPlan` report (strategy, knobs, profile
statistics, human-readable reasons) that threads through
``CandidatePairGenerator`` → ``FilterStatistics`` → pipeline summaries →
the CLI, so every run can show *why* its candidates look the way they do.

The corruption estimate is a heuristic, not a measurement: an attribute
whose non-null values mostly share no sub-cap token block with any other
row either has no duplicates or has duplicates whose token evidence was
destroyed — and in both cases single-index blocking is unsafe, which is
exactly when the union escalation is worth its extra candidates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dedup.blocking.allpairs import AllPairsBlocking
from repro.dedup.blocking.base import BlockingStrategy, attribute_positions
from repro.dedup.blocking.sorted_neighborhood import SortedNeighborhoodBlocking
from repro.dedup.blocking.token import TokenBlocking
from repro.dedup.blocking.union import UnionBlocking
from repro.engine.relation import Relation
from repro.engine.types import is_null

__all__ = [
    "AttributeProfile",
    "RelationProfile",
    "BlockingPlan",
    "AdaptiveBlocking",
    "profile_relation",
    "format_plan_report",
]


@dataclass
class AttributeProfile:
    """Profiling statistics of one blocking attribute.

    Attributes:
        attribute: the column name.
        null_rate: fraction of tuples with a null value.
        distinct_ratio: distinct non-null values / non-null tuples — near 1.0
            for identifying attributes, near 0.0 for category-like ones.
        corruption_estimate: fraction of non-null tuples that share **no**
            sub-cap token block with any other tuple on this attribute.  High
            values mean token evidence is absent (unique data or corrupted
            duplicates) — either way, single-index blocking is risky here.
    """

    attribute: str
    null_rate: float
    distinct_ratio: float
    corruption_estimate: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "attribute": self.attribute,
            "null_rate": round(self.null_rate, 4),
            "distinct_ratio": round(self.distinct_ratio, 4),
            "corruption_estimate": round(self.corruption_estimate, 4),
        }


@dataclass
class RelationProfile:
    """Everything the planner knows about a relation before deciding.

    Attributes:
        tuple_count: number of tuples.
        total_pairs: ``n·(n-1)/2`` — the all-pairs baseline cost.
        attributes: per-attribute statistics for the profiled (highest
            identifying power) blocking attributes.
        token_count: distinct index tokens across the profiled attributes.
        dropped_block_count: token blocks larger than the frequency cap
            (stop-tokens carrying no identifying power).
        mean_block_size: mean tuples per kept token block.
    """

    tuple_count: int
    total_pairs: int
    attributes: List[AttributeProfile] = field(default_factory=list)
    token_count: int = 0
    dropped_block_count: int = 0
    mean_block_size: float = 0.0

    @property
    def corruption_estimate(self) -> float:
        """Mean per-attribute corruption estimate, weighted by presence.

        Attributes that are mostly null contribute little evidence either
        way, so each attribute's estimate is weighted by ``1 - null_rate``.
        An all-null profile (no usable attributes) counts as fully corrupted:
        there is no token evidence to block on.
        """
        weights = [(1.0 - profile.null_rate) for profile in self.attributes]
        total = sum(weights)
        if total <= 0.0:
            return 1.0
        weighted = sum(
            weight * profile.corruption_estimate
            for weight, profile in zip(weights, self.attributes)
        )
        return weighted / total

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tuple_count": self.tuple_count,
            "total_pairs": self.total_pairs,
            "corruption_estimate": round(self.corruption_estimate, 4),
            "token_count": self.token_count,
            "dropped_block_count": self.dropped_block_count,
            "mean_block_size": round(self.mean_block_size, 2),
            "attributes": [profile.as_dict() for profile in self.attributes],
        }


@dataclass
class BlockingPlan:
    """The planner's decision plus everything needed to explain it.

    Attributes:
        strategy: the constructed strategy the plan delegates to.
        profile: the relation profile the decision was based on.
        options: the knobs the planner chose (e.g. ``{"window": 16}``).
        reasons: human-readable decision trail, one sentence per step.
        proposed_pairs: candidate count of the chosen strategy, counted
            during planning (for all-pairs this equals ``total_pairs``).
        proposals: the pairs enumerated while counting, kept so
            :meth:`AdaptiveBlocking.pairs` can replay them instead of
            enumerating the chosen strategy a second time.  Excluded from
            :meth:`as_dict`; may be stripped to ``None`` (older cached plans
            drop theirs to bound memory), in which case the strategy is
            simply re-enumerated.
    """

    strategy: BlockingStrategy
    profile: RelationProfile
    options: Dict[str, Any] = field(default_factory=dict)
    reasons: List[str] = field(default_factory=list)
    proposed_pairs: Optional[int] = None
    proposals: Optional[List[Tuple[int, int]]] = None

    @property
    def strategy_name(self) -> str:
        return self.strategy.name

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable report for ``FilterStatistics`` and the CLI."""
        return {
            "strategy": self.strategy_name,
            "options": dict(self.options),
            "reasons": list(self.reasons),
            "proposed_pairs": self.proposed_pairs,
            "profile": self.profile.as_dict(),
        }

    def describe(self) -> str:
        """Multi-line human rendering of the plan."""
        return "\n".join(format_plan_report(self.as_dict()))


def format_plan_report(report: Dict[str, Any]) -> List[str]:
    """Render a plan-report dict (``BlockingPlan.as_dict``) as display lines.

    Shared by the CLI commands so library callers, ``hummer fuse`` and
    ``hummer demo`` all print plans the same way.  Tolerates the smaller
    report shape :class:`UnionBlocking` emits (no profile / reasons).
    """
    options = dict(report.get("options") or {})
    # both report shapes name union children: UnionBlocking at the top level,
    # the adaptive planner inside the chosen options — render them the same
    children = report.get("children") or options.pop("children", None)
    rendered_options = ", ".join(f"{key}={value}" for key, value in sorted(options.items()))
    headline = f"blocking plan: {report.get('strategy', '?')}"
    if rendered_options:
        headline += f" ({rendered_options})"
    if children:
        headline += f" over {'+'.join(children)}"
    lines = [headline]
    profile = report.get("profile")
    if profile:
        proposed = report.get("proposed_pairs")
        total = profile.get("total_pairs") or 0
        if proposed is not None and total:
            lines.append(
                f"  proposals: {proposed} of {total} pairs "
                f"({100.0 * proposed / total:.1f}%)"
            )
        lines.append(
            f"  profile: {profile.get('tuple_count')} tuples, "
            f"corruption estimate {profile.get('corruption_estimate')}, "
            f"{profile.get('token_count')} index tokens "
            f"({profile.get('dropped_block_count')} blocks over cap)"
        )
    for reason in report.get("reasons") or []:
        lines.append(f"  - {reason}")
    return lines


def profile_relation(
    relation: Relation,
    attributes: Sequence[str],
    token_strategy: Optional[TokenBlocking] = None,
    max_attributes: int = 4,
) -> RelationProfile:
    """Profile *relation* for the planner.

    Args:
        relation: the combined relation to be deduplicated.
        attributes: blocking attributes, most identifying first (the order
            ``CandidatePairGenerator.blocking_attributes`` produces); only
            the first *max_attributes* are profiled.
        token_strategy: the :class:`TokenBlocking` whose tokenisation and
            frequency cap the profile mirrors (default: a stock instance).
        max_attributes: how many attributes to profile — profiling costs one
            tokenisation pass per attribute, and the low-weight tail adds
            little signal.
    """
    token_strategy = token_strategy or TokenBlocking()
    size = len(relation)
    profile = RelationProfile(tuple_count=size, total_pairs=size * (size - 1) // 2)
    cap = token_strategy.effective_cap(size)
    positions = attribute_positions(relation, attributes)[:max_attributes]
    merged_blocks: Dict[str, Set[int]] = {}
    for attribute, position in positions:
        non_null = 0
        distinct: Set[str] = set()
        index = token_strategy.build_index(relation, [attribute])
        for token, members in index.items():
            merged_blocks.setdefault(token, set()).update(members)
        covered: Set[int] = set()
        for members in index.values():
            if 2 <= len(members) <= cap:
                covered.update(members)
        for values in relation.rows:
            value = values[position]
            if is_null(value):
                continue
            non_null += 1
            distinct.add(str(value))
        null_rate = 1.0 - (non_null / size) if size else 0.0
        distinct_ratio = len(distinct) / non_null if non_null else 0.0
        # fewer than two non-null values can never share a block; treat the
        # attribute as evidence-free rather than dividing by zero
        corruption = 1.0 - (len(covered) / non_null) if non_null >= 2 else 1.0
        profile.attributes.append(
            AttributeProfile(
                attribute=attribute,
                null_rate=null_rate,
                distinct_ratio=distinct_ratio,
                corruption_estimate=corruption,
            )
        )
    profile.token_count = len(merged_blocks)
    profile.dropped_block_count = sum(
        1 for members in merged_blocks.values() if len(members) > cap
    )
    kept_sizes = [len(members) for members in merged_blocks.values() if len(members) <= cap]
    profile.mean_block_size = (sum(kept_sizes) / len(kept_sizes)) if kept_sizes else 0.0
    return profile


class AdaptiveBlocking(BlockingStrategy):
    """Profiles the relation, then delegates to the planned strategy.

    Args:
        small_threshold: tuple count at or below which the plan is the exact
            all-pairs baseline.  The default (400 tuples ≈ 80k pairs) keeps
            interactive inputs exact; the E4 students scenario crosses it
            between ~256 and ~1000 entities.
        corruption_threshold: profile corruption estimate at or above which
            the plan escalates to union blocking over ``snm + token``.
        window_ladder: ascending sorted-neighborhood windows the planner
            walks while escalating.
        plateau_ratio: stop escalating when the next window proposes fewer
            than ``(1 + plateau_ratio)×`` the current window's pairs — the
            wider window is mostly re-proposing known pairs.
        max_pair_fraction: candidate budget as a fraction of all pairs; the
            window steps back down the ladder while its proposal count
            exceeds the budget (the union escalation may exceed it — recall
            under corruption is worth the extra candidates, and the overrun
            is recorded in the plan reasons).
        max_profile_attributes: attributes to profile (see
            :func:`profile_relation`).
        snm_options: extra :class:`SortedNeighborhoodBlocking` knobs
            (``max_keys``, ``key_style``, …); ``window`` is the planner's to
            choose and is rejected here.
        token_options: :class:`TokenBlocking` knobs used for profiling and
            for the union escalation's token child.
    """

    name = "adaptive"

    def __init__(
        self,
        small_threshold: int = 400,
        corruption_threshold: float = 0.35,
        window_ladder: Sequence[int] = (8, 16, 32),
        plateau_ratio: float = 0.2,
        max_pair_fraction: float = 0.3,
        max_profile_attributes: int = 4,
        snm_options: Optional[Dict[str, Any]] = None,
        token_options: Optional[Dict[str, Any]] = None,
    ):
        if small_threshold < 0:
            raise ValueError("small_threshold must be non-negative")
        ladder = [int(window) for window in window_ladder]
        if not ladder or any(window < 2 for window in ladder):
            raise ValueError("window_ladder needs at least one window, each at least 2")
        if sorted(ladder) != ladder or len(set(ladder)) != len(ladder):
            raise ValueError("window_ladder must be strictly ascending")
        if plateau_ratio <= 0.0:
            raise ValueError("plateau_ratio must be positive")
        if not 0.0 < max_pair_fraction <= 1.0:
            raise ValueError("max_pair_fraction must lie in (0, 1]")
        if snm_options and "window" in snm_options:
            raise ValueError("the planner chooses the snm window; pass other knobs only")
        self.small_threshold = small_threshold
        self.corruption_threshold = corruption_threshold
        self.window_ladder = ladder
        self.plateau_ratio = plateau_ratio
        self.max_pair_fraction = max_pair_fraction
        self.max_profile_attributes = max_profile_attributes
        self.snm_options = dict(snm_options or {})
        self.token_options = dict(token_options or {})
        # shared token strategy, used for profiling and (under the union
        # escalation) candidate proposal; the prepared-source layer installs
        # its merged-index provider on it alongside the profile provider
        self._token = TokenBlocking(**self.token_options)
        #: Optional hook consulted before profiling: given the relation, the
        #: blocking attributes, the token strategy and the attribute cap,
        #: return a ready :class:`RelationProfile` or ``None`` (→ profile
        #: cold).  The prepared-source layer installs one that merges
        #: per-source profile artifacts at query time.
        self.profile_provider: Optional[
            Callable[
                [Relation, Sequence[str], TokenBlocking, int],
                Optional[RelationProfile],
            ]
        ] = None
        #: the most recently computed plan, for tests and interactive callers
        self.last_plan: Optional[BlockingPlan] = None
        # (relation content key, attribute tuple) → plan; bounded LRU, same
        # shape (and same collision-proof content keying) as TokenBlocking's
        # index cache
        self._plan_cache: "OrderedDict[Tuple, BlockingPlan]" = OrderedDict()
        self._plan_cache_size = 4

    # -- planning -----------------------------------------------------------------

    def plan(self, relation: Relation, attributes: Sequence[str]) -> BlockingPlan:
        """The plan for *relation*, memoised per (content key, attributes)."""
        key = (relation.content_key(), tuple(attributes))
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache.move_to_end(key)
            self.last_plan = cached
            return cached
        plan = self._build_plan(relation, attributes)
        self._plan_cache[key] = plan
        self._plan_cache.move_to_end(key)
        while len(self._plan_cache) > self._plan_cache_size:
            self._plan_cache.popitem(last=False)
        # only the newest plan keeps its materialised proposal list; older
        # plans fall back to re-enumerating their strategy, bounding the
        # cache to one O(candidates) list rather than one per entry
        for other in self._plan_cache.values():
            if other is not plan:
                other.proposals = None
        self.last_plan = plan
        return plan

    def _build_plan(self, relation: Relation, attributes: Sequence[str]) -> BlockingPlan:
        profile: Optional[RelationProfile] = None
        if self.profile_provider is not None:
            profile = self.profile_provider(
                relation, attributes, self._token, self.max_profile_attributes
            )
        if profile is None:
            profile = profile_relation(
                relation,
                attributes,
                token_strategy=self._token,
                max_attributes=self.max_profile_attributes,
            )
        reasons: List[str] = []
        if profile.tuple_count <= self.small_threshold:
            reasons.append(
                f"{profile.tuple_count} tuples <= small_threshold "
                f"{self.small_threshold}: exact all-pairs is affordable and the "
                f"only strategy with perfect candidate recall"
            )
            return BlockingPlan(
                strategy=AllPairsBlocking(),
                profile=profile,
                options={},
                reasons=reasons,
                proposed_pairs=profile.total_pairs,
            )

        window, window_proposals = self._escalate_window(
            relation, attributes, profile, reasons
        )
        snm = SortedNeighborhoodBlocking(window=window, **self.snm_options)

        corruption = profile.corruption_estimate
        if corruption >= self.corruption_threshold:
            reasons.append(
                f"corruption estimate {corruption:.2f} >= threshold "
                f"{self.corruption_threshold:.2f}: union snm+token proposes from "
                f"both indexes so pairs whose token evidence broke are recovered"
            )
            strategy: BlockingStrategy = UnionBlocking([snm, self._token])
            proposals = list(strategy.pairs(relation, attributes))
            budget = int(self.max_pair_fraction * profile.total_pairs)
            if len(proposals) > budget:
                reasons.append(
                    f"union proposes {len(proposals)} pairs, over the budget of "
                    f"{budget}: accepted — recall under corruption outweighs the "
                    f"pair budget"
                )
            return BlockingPlan(
                strategy=strategy,
                profile=profile,
                options={"window": window, "children": ["snm", "token"]},
                reasons=reasons,
                proposed_pairs=len(proposals),
                proposals=proposals,
            )

        reasons.append(
            f"corruption estimate {corruption:.2f} below threshold "
            f"{self.corruption_threshold:.2f}: sorted-neighborhood passes over the "
            f"identifying attributes suffice"
        )
        proposals = window_proposals[window]
        return BlockingPlan(
            strategy=snm,
            profile=profile,
            options={"window": window},
            reasons=reasons,
            proposed_pairs=len(proposals),
            proposals=proposals,
        )

    def _escalate_window(
        self,
        relation: Relation,
        attributes: Sequence[str],
        profile: RelationProfile,
        reasons: List[str],
    ) -> Tuple[int, Dict[int, List[Tuple[int, int]]]]:
        """Walk the window ladder until the proposal count plateaus, then
        step back down while the count exceeds the pair budget.

        The enumerated proposal lists are returned so the chosen window's
        pairs can be replayed at scoring time instead of enumerated again.
        """
        proposals: Dict[int, List[Tuple[int, int]]] = {}

        def count_for(window: int) -> int:
            if window not in proposals:
                strategy = SortedNeighborhoodBlocking(window=window, **self.snm_options)
                proposals[window] = list(strategy.pairs(relation, attributes))
            return len(proposals[window])

        ladder = self.window_ladder
        chosen = ladder[0]
        for next_window in ladder[1:]:
            current_count = count_for(chosen)
            next_count = count_for(next_window)
            if next_count <= current_count * (1.0 + self.plateau_ratio):
                reasons.append(
                    f"snm window {next_window} proposes {next_count} pairs, within "
                    f"{self.plateau_ratio:.0%} of window {chosen}'s {current_count}: "
                    f"proposal count plateaued, stopping escalation"
                )
                break
            chosen = next_window
        else:
            reasons.append(
                f"snm window escalated to the ladder maximum {chosen} "
                f"({count_for(chosen)} proposals, still growing)"
            )

        budget = int(self.max_pair_fraction * profile.total_pairs)
        while count_for(chosen) > budget and chosen != ladder[0]:
            lower = ladder[ladder.index(chosen) - 1]
            reasons.append(
                f"window {chosen} proposes {count_for(chosen)} pairs, over the "
                f"budget of {budget} ({self.max_pair_fraction:.0%} of all pairs): "
                f"stepping down to window {lower}"
            )
            chosen = lower
        if count_for(chosen) > budget:
            reasons.append(
                f"window {chosen} still proposes {count_for(chosen)} pairs, over "
                f"the budget of {budget} even at the ladder minimum: accepted — "
                f"no smaller window is available"
            )
        return chosen, proposals

    # -- the BlockingStrategy contract ----------------------------------------------

    def pairs(self, relation: Relation, attributes: Sequence[str]):
        plan = self.plan(relation, attributes)
        if plan.proposals is not None:
            # replay the pairs already enumerated during planning — same
            # pairs in the same order, without running the strategy twice
            return iter(plan.proposals)
        return plan.strategy.pairs(relation, attributes)

    def plan_report(
        self, relation: Relation, attributes: Sequence[str]
    ) -> Dict[str, Any]:
        return self.plan(relation, attributes).as_dict()

    def __repr__(self) -> str:
        return (
            f"AdaptiveBlocking(small_threshold={self.small_threshold}, "
            f"corruption_threshold={self.corruption_threshold}, "
            f"window_ladder={tuple(self.window_ladder)}, "
            f"plateau_ratio={self.plateau_ratio}, "
            f"max_pair_fraction={self.max_pair_fraction})"
        )
