"""Union blocking — merge the pair proposals of several child strategies.

A single lossy strategy misses a true duplicate pair when its one kind of
evidence is destroyed: heavy typos break whole-token sharing (token
blocking), leading-character corruption breaks sort locality (sorted
neighborhood).  Those failure modes are largely independent, so the union of
several cheap proposers recovers pairs any one of them would drop — the
propose-from-cheap-indexes, verify-with-the-full-measure shape of sparse
bipartite enumeration.  The price is the union of the candidate counts, so
this is the high-corruption escalation, not the default.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Set, Tuple

from repro.dedup.blocking.base import BlockingStrategy
from repro.engine.relation import Relation

__all__ = ["UnionBlocking"]

#: Child strategies used when ``UnionBlocking()`` is constructed bare (the
#: ``--blocking union`` CLI spelling): one sort-based and one index-based
#: proposer, covering complementary corruption modes.
DEFAULT_CHILDREN = ("snm", "token")


class UnionBlocking(BlockingStrategy):
    """Proposes every pair that at least one child strategy proposes.

    Args:
        children: the child strategies, each anything ``resolve_blocking``
            accepts (a name, an instance, or ``None``).  Defaults to
            ``("snm", "token")``.  The CLI spelling ``union:snm+token``
            resolves to this class with the named children.
    """

    name = "union"

    def __init__(self, children: Sequence = DEFAULT_CHILDREN):
        # imported here: the package __init__ imports this module
        from repro.dedup.blocking import resolve_blocking

        resolved: List[BlockingStrategy] = [resolve_blocking(child) for child in children]
        if not resolved:
            raise ValueError(
                "union blocking needs at least one child strategy, e.g. "
                "UnionBlocking(['snm', 'token'])"
            )
        self.children = resolved

    def pairs(self, relation: Relation, attributes: Sequence[str]) -> Iterator[Tuple[int, int]]:
        seen: Set[Tuple[int, int]] = set()
        for child in self.children:
            for pair in child.pairs(relation, attributes):
                if pair in seen:
                    continue
                seen.add(pair)
                yield pair

    def plan_report(
        self, relation: Relation, attributes: Sequence[str]
    ) -> Dict[str, Any]:
        return {
            "strategy": self.name,
            "children": [child.name for child in self.children],
        }

    def __repr__(self) -> str:
        return f"UnionBlocking(children={self.children!r})"
