"""Pluggable candidate-pair blocking for duplicate detection.

The seed detector enumerated every ``i < j`` tuple pair, which grows
quadratically and dominates pipeline runtime (experiment E4).  This package
turns pair enumeration into a strategy:

* :class:`AllPairsBlocking` — the exact quadratic baseline (default);
* :class:`SortedNeighborhoodBlocking` — multi-pass merge/purge windowing,
  ``O(n log n + n·w)`` per pass;
* :class:`TokenBlocking` — a frequency-capped token inverted index; a pair
  is a candidate iff it shares at least one block;
* :class:`UnionBlocking` — the merged proposals of several child strategies
  (``union:snm+token`` on the CLI), for inputs where one kind of evidence
  is not enough;
* :class:`AdaptiveBlocking` — a profiling-driven planner that picks one of
  the above (and its knobs) per relation and reports the chosen
  :class:`BlockingPlan` through ``FilterStatistics``.

Strategies only *propose* pairs; scoring, filtering and clustering are
unchanged.  See ``docs/blocking.md`` for selection guidance.
"""

from __future__ import annotations

from typing import Union

from repro.dedup.blocking.adaptive import (
    AdaptiveBlocking,
    AttributeProfile,
    BlockingPlan,
    RelationProfile,
    format_plan_report,
    profile_relation,
)
from repro.dedup.blocking.allpairs import AllPairsBlocking
from repro.dedup.blocking.base import BlockingStrategy
from repro.dedup.blocking.sorted_neighborhood import SortedNeighborhoodBlocking
from repro.dedup.blocking.token import TokenBlocking
from repro.dedup.blocking.union import UnionBlocking

__all__ = [
    "BlockingStrategy",
    "BlockingSpec",
    "AllPairsBlocking",
    "SortedNeighborhoodBlocking",
    "TokenBlocking",
    "UnionBlocking",
    "AdaptiveBlocking",
    "AttributeProfile",
    "RelationProfile",
    "BlockingPlan",
    "profile_relation",
    "format_plan_report",
    "BLOCKING_STRATEGIES",
    "resolve_blocking",
]

#: CLI / config name → strategy class.
BLOCKING_STRATEGIES = {
    AllPairsBlocking.name: AllPairsBlocking,
    SortedNeighborhoodBlocking.name: SortedNeighborhoodBlocking,
    TokenBlocking.name: TokenBlocking,
    UnionBlocking.name: UnionBlocking,
    AdaptiveBlocking.name: AdaptiveBlocking,
}

#: What every ``blocking=`` parameter accepts: a strategy name (including the
#: composite ``"union:child+child"`` spelling), an instance or ``None``
#: (→ the all-pairs baseline).
BlockingSpec = Union[str, BlockingStrategy, None]


def resolve_blocking(spec: BlockingSpec, **options) -> BlockingStrategy:
    """Turn a strategy name, instance or ``None`` into a :class:`BlockingStrategy`.

    Args:
        spec: ``None`` (→ all-pairs baseline), a name from
            :data:`BLOCKING_STRATEGIES` (``"allpairs"``, ``"snm"``,
            ``"token"``, ``"union"``, ``"adaptive"``), a composite
            ``"union:snm+token"`` spelling naming the union's children, or
            an already-constructed strategy.
        options: keyword arguments for the strategy constructor when *spec*
            is a name (e.g. ``window=`` for SNM, ``max_block_size=`` for
            token blocking, ``small_threshold=`` for the adaptive planner).
            Rejected when *spec* is an instance.
    """
    if spec is None:
        spec = AllPairsBlocking.name
    if isinstance(spec, BlockingStrategy):
        if options:
            raise ValueError(
                "blocking options cannot be combined with an already-constructed strategy"
            )
        return spec
    if isinstance(spec, str) and spec.startswith("union:"):
        child_names = [name.strip() for name in spec.split(":", 1)[1].split("+") if name.strip()]
        if not child_names:
            raise ValueError(
                "a union blocking spec names its children after the colon, "
                "e.g. 'union:snm+token'"
            )
        children = [resolve_blocking(name) for name in child_names]
        if options:
            raise ValueError(
                "blocking options cannot be combined with a composite union spec; "
                "construct UnionBlocking([...]) with configured child instances instead"
            )
        return UnionBlocking(children)
    try:
        strategy_class = BLOCKING_STRATEGIES[spec]
    except KeyError:
        known = ", ".join(sorted(BLOCKING_STRATEGIES))
        raise ValueError(f"unknown blocking strategy {spec!r} (known: {known})") from None
    return strategy_class(**options)
