"""Token blocking — an inverted index over the interesting attributes.

Every non-null value of every interesting attribute is split into tokens
(optionally q-grams of those tokens for typo robustness); each token is a
*block* listing the tuples containing it, and a pair is a candidate iff the
two tuples share at least one block.  Tokens that occur in a large fraction
of the tuples ("the", a shared city, a constant label) would re-create the
quadratic blow-up inside a single block, so blocks are frequency-capped: any
block larger than the cap is dropped entirely.  Such stop-tokens carry no
identifying power, which is the same soft-IDF intuition the similarity
measure itself uses.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.dedup.blocking.base import BlockingStrategy
from repro.engine.relation import Relation
from repro.similarity.tokenize import qgrams, tokenize

__all__ = ["TokenBlocking"]


class TokenBlocking(BlockingStrategy):
    """Candidate pairs share at least one (frequency-capped) token block.

    Args:
        qgram: when set, index the q-grams of each token instead of whole
            tokens, so single-character typos still land the pair in shared
            blocks.  ``None`` (default) indexes whole word tokens, which is
            cheaper and sufficient when several attributes are compared.
        max_block_size: absolute cap on a block's tuple count; larger blocks
            are dropped as stop-tokens.
        max_block_fraction: relative cap — a block is also dropped when it
            holds more than this fraction of all tuples.  The effective cap
            is the smaller of the two (but never below 2).
        min_token_length: tokens shorter than this are ignored; one- and
            two-character fragments ("a", "de") are near-stopwords and only
            inflate blocks.
    """

    name = "token"

    def __init__(
        self,
        qgram: Optional[int] = None,
        max_block_size: int = 50,
        max_block_fraction: float = 0.5,
        min_token_length: int = 3,
    ):
        if qgram is not None and qgram < 2:
            raise ValueError("qgram must be at least 2 when given")
        if max_block_size < 2:
            raise ValueError("max_block_size must be at least 2")
        if not 0.0 < max_block_fraction <= 1.0:
            raise ValueError("max_block_fraction must lie in (0, 1]")
        if min_token_length < 1:
            raise ValueError("min_token_length must be at least 1")
        self.qgram = qgram
        self.max_block_size = max_block_size
        self.max_block_fraction = max_block_fraction
        self.min_token_length = min_token_length
        #: Optional hook consulted before tokenising: given the relation and
        #: the attributes, return a ready inverted index or ``None`` (→ build
        #: cold).  The prepared-source layer (:mod:`repro.prepare`) installs
        #: one that unions per-source postings at query time — this replaces
        #: the private per-strategy LRU earlier revisions kept, moving index
        #: reuse to where invalidation is actually known: the catalog's
        #: artifact store.
        self.index_provider: Optional[
            Callable[[Relation, Sequence[str]], Optional[Dict[str, List[int]]]]
        ] = None

    def effective_cap(self, row_count: int) -> int:
        """The block-size cap for a relation of *row_count* tuples."""
        relative = math.ceil(row_count * self.max_block_fraction)
        return max(2, min(self.max_block_size, relative))

    def tokens(self, value) -> Set[str]:
        """The index tokens of one cell value.

        Tokenisation shares :mod:`repro.similarity.tokenize` with the
        similarity measures, so blocking sees values (accent stripping
        included) exactly as the measure will compare them.
        """
        words = [
            token
            for token in tokenize(str(value))
            if len(token) >= self.min_token_length
        ]
        if self.qgram is None:
            return set(words)
        grams: Set[str] = set()
        for word in words:
            grams.update(qgrams(word, size=self.qgram, pad=False))
        return grams

    def build_index(
        self, relation: Relation, attributes: Sequence[str]
    ) -> Dict[str, List[int]]:
        """Token → sorted tuple indices, before frequency capping.

        Columnar build: the blocking attributes are fetched once as zero-copy
        column lists (with their cached null masks) — no row tuple or
        :class:`Row` view is materialised per tuple.  Iteration stays
        rows-outer so token postings (and therefore candidate emission order)
        are identical to the row-at-a-time build, and tokenisation is
        memoised per distinct cell value: repeated values — the norm in
        real columns — tokenise once per relation instead of once per row.
        """
        index: Dict[str, List[int]] = {}
        positions = self.key_values(relation, attributes)
        columns = [relation.column_at(position) for _, position in positions]
        masks = [relation.null_mask(attribute) for attribute, _ in positions]
        token_cache: Dict = {}
        for row_index in range(len(relation)):
            row_tokens: Set[str] = set()
            for column, mask in zip(columns, masks):
                if mask[row_index]:
                    continue
                value = column[row_index]
                try:
                    # Type-aware key: True == 1 but str(True) != str(1), so
                    # cross-type equal cells must not share a cache entry.
                    key = (value.__class__, value)
                    cached = token_cache.get(key)
                    if cached is None:
                        cached = self.tokens(value)
                        token_cache[key] = cached
                except TypeError:  # unhashable cell value
                    cached = self.tokens(value)
                row_tokens.update(cached)
            for token in row_tokens:
                index.setdefault(token, []).append(row_index)
        return index

    def indexed_blocks(
        self, relation: Relation, attributes: Sequence[str]
    ) -> Dict[str, List[int]]:
        """The inverted index for *relation* — prepared when available.

        When an :attr:`index_provider` is installed (the prepared-source
        layer does this for the duration of a pipeline's detection step), it
        is consulted first; a served index is the union of per-source
        postings built once per registered source, shifted to the combined
        relation's row offsets — member-identical to what :meth:`build_index`
        would tokenise from scratch.  Without a provider (standalone use)
        the index is always built cold: reuse lives in the catalog's
        artifact store, which knows when a source's data changed, not in a
        per-strategy cache that has to guess.
        """
        if self.index_provider is not None:
            prepared = self.index_provider(relation, attributes)
            if prepared is not None:
                return prepared
        return self.build_index(relation, attributes)

    def pairs(self, relation: Relation, attributes: Sequence[str]) -> Iterator[Tuple[int, int]]:
        index = self.indexed_blocks(relation, attributes)
        cap = self.effective_cap(len(relation))
        seen: Set[Tuple[int, int]] = set()
        for members in index.values():
            if len(members) < 2 or len(members) > cap:
                continue
            # members are in insertion order = ascending row index
            for left_position in range(len(members)):
                left = members[left_position]
                for right in members[left_position + 1 :]:
                    pair = (left, right)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    yield pair

    def __repr__(self) -> str:
        return (
            f"TokenBlocking(qgram={self.qgram!r}, max_block_size={self.max_block_size}, "
            f"max_block_fraction={self.max_block_fraction}, "
            f"min_token_length={self.min_token_length})"
        )
