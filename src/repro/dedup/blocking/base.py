"""The blocking-strategy contract.

Blocking decides *which* tuple pairs duplicate detection looks at.  The seed
implementation enumerated every ``i < j`` pair, which grows quadratically in
the number of tuples and dominates pipeline runtime (experiment E4).  A
blocking strategy replaces that double loop with a cheap index that proposes
only plausible pairs; the upper-bound filter and the full similarity measure
then run on the proposed pairs exactly as before.

A strategy is a pure pair proposer: it receives the relation and the
"interesting" attributes the similarity measure will compare, and yields
index pairs ``(i, j)`` with ``i < j``, each pair at most once.  Everything
downstream (cross-source filtering, upper-bound filtering, scoring,
classification, clustering) is unchanged, so swapping strategies can only
change *recall of the candidate stage*, never the score of a pair that is
proposed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.relation import Relation
from repro.similarity.tokenize import normalize_text

__all__ = ["BlockingStrategy", "normalise_value", "attribute_positions"]


def normalise_value(value) -> str:
    """Canonical text form of a cell value for key building.

    Uses the same accent-stripping normalisation as the similarity measures
    (:func:`repro.similarity.tokenize.normalize_text`), so blocking keys
    agree wherever the measure's value comparison would — e.g. ``"Jörg"``
    and ``"Jorg"`` build identical keys.
    """
    return normalize_text(str(value))


def attribute_positions(relation: Relation, attributes: Sequence[str]) -> List[Tuple[str, int]]:
    """(attribute, column position) for every attribute present in *relation*."""
    return [
        (attribute, relation.schema.position(attribute))
        for attribute in attributes
        if relation.schema.has_column(attribute)
    ]


class BlockingStrategy(ABC):
    """Proposes the candidate tuple pairs duplicate detection will compare.

    Subclasses implement :meth:`pairs`.  The contract:

    * every yielded pair satisfies ``i < j``;
    * no pair is yielded twice;
    * a pair that is not yielded is never compared — a strategy trades
      candidate-stage recall for speed, so only skip pairs that share no
      evidence of being duplicates.
    """

    #: Short machine name, used by the CLI and ``resolve_blocking``.
    name: str = "base"

    @abstractmethod
    def pairs(self, relation: Relation, attributes: Sequence[str]) -> Iterator[Tuple[int, int]]:
        """Yield candidate index pairs for *relation*.

        Args:
            relation: the combined (outer-unioned) relation to deduplicate.
            attributes: the "interesting" attributes selected for comparison;
                strategies derive their blocking keys from these.
        """

    def key_values(
        self, relation: Relation, attributes: Sequence[str]
    ) -> List[Tuple[str, int]]:
        """Helper shared by key-based strategies: resolved attribute positions."""
        return attribute_positions(relation, attributes)

    def plan_report(
        self, relation: Relation, attributes: Sequence[str]
    ) -> Optional[Dict[str, Any]]:
        """A JSON-serialisable report of how this strategy will block *relation*.

        Fixed strategies return ``None`` — their behaviour is fully described
        by their constructor arguments.  Deciding strategies (the adaptive
        planner, union blocking) override this so the chosen plan threads
        through :class:`~repro.dedup.filters.FilterStatistics` into pipeline
        summaries and the CLI.  Must be cheap to call right before
        :meth:`pairs` on the same arguments (planners memoise).
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
