"""Sorted-neighborhood blocking (Hernández & Stolfo's merge/purge method).

Sort the tuples on a cheap blocking key, slide a fixed-size window over the
sorted order and propose only the pairs that co-occur in some window.  One
pass costs ``O(n log n + n·w)`` instead of ``O(n²)``; duplicates whose key
values sort far apart in one pass are recovered by running *multiple passes*
over different keys (one per interesting attribute by default) and taking the
union of the proposed pairs.

The default sort key is *rarest token first*: the words of a value are
reordered by ascending corpus frequency before sorting, so
``"Freie Berlin Universitaet"`` and ``"Freie Universitaet Berlin"`` map to
the same key (word-order corruption is canonicalised away) and the most
identifying token — the one the similarity measure weighs highest via soft
IDF — leads the sort order.  Classic raw-value keys are available with
``key_style="value"``.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.dedup.blocking.base import BlockingStrategy, normalise_value
from repro.engine.relation import Relation

__all__ = ["SortedNeighborhoodBlocking"]

#: Valid ``key_style`` values: frequency-canonicalised vs. plain text keys.
_KEY_STYLES = ("rare-first", "value")


class SortedNeighborhoodBlocking(BlockingStrategy):
    """Multi-pass sorted-neighborhood candidate generation.

    Args:
        window: number of consecutive tuples (in sorted order) each tuple is
            paired with; a tuple at sorted position ``p`` is paired with the
            tuples at positions ``p+1 .. p+window-1``.  Must be ≥ 2 — a
            window of 2 pairs only immediate neighbours.
        keys: attributes to sort on, one pass per key.  Defaults to the
            interesting attributes handed in by the detector (most
            identifying first), so a duplicate pair is proposed as long as
            *any* high-weight attribute sorts the two tuples close together.
        max_keys: cap on the number of passes when *keys* is defaulted
            (default 5).  The attributes arrive ordered by identifying
            power, so the cap drops the weakest passes — typically short
            numeric attributes whose windows propose many pairs the
            upper-bound filter cannot prune.
        key_style: ``"rare-first"`` (default) reorders each value's words by
            ascending corpus frequency before sorting, canonicalising word
            swaps and clustering tuples by their most identifying token;
            ``"value"`` sorts on the plain normalised value.
    """

    name = "snm"

    def __init__(
        self,
        window: int = 10,
        keys: Optional[Sequence[str]] = None,
        max_keys: Optional[int] = 5,
        key_style: str = "rare-first",
    ):
        if window < 2:
            raise ValueError("sorted-neighborhood window must be at least 2")
        if max_keys is not None and max_keys < 1:
            raise ValueError("max_keys must be at least 1 when given")
        if key_style not in _KEY_STYLES:
            raise ValueError(f"key_style must be one of {_KEY_STYLES}, got {key_style!r}")
        self.window = window
        self.keys = list(keys) if keys is not None else None
        self.max_keys = max_keys
        self.key_style = key_style

    def pass_keys(self, attributes: Sequence[str]) -> List[str]:
        """The attributes to run passes over.

        Explicit *keys* are used as given; the defaulted attribute list is
        capped at *max_keys* (it arrives most-identifying-first).
        """
        if self.keys is not None:
            return list(self.keys)
        keys = list(attributes)
        if self.max_keys is not None:
            keys = keys[: self.max_keys]
        return keys

    def pass_order(self, relation: Relation, position: int) -> List[int]:
        """Row indices of one pass, sorted by blocking key.

        Tuples with a null key sit the pass out: after the outer union many
        attributes are null for entire sources, and windowing a block of
        key-less tuples only proposes junk pairs.  A null-keyed tuple is
        recovered by the passes over its non-null attributes.
        """
        # Columnar pass: one zero-copy column fetch plus its cached null mask
        # instead of materialising every row tuple to read a single cell.
        column = relation.column_at(position)
        mask = relation.store.null_mask(position)
        tokenised: List[Optional[List[str]]] = []
        frequencies: Counter = Counter()
        for value, null in zip(column, mask):
            if null:
                tokenised.append(None)
                continue
            tokens = normalise_value(value).split()
            tokenised.append(tokens)
            frequencies.update(set(tokens))
        keyed: List[Tuple[str, int]] = []
        for index, tokens in enumerate(tokenised):
            if tokens is None:
                continue
            if self.key_style == "rare-first":
                key = " ".join(sorted(tokens, key=lambda token: (frequencies[token], token)))
            else:
                key = " ".join(tokens)
            keyed.append((key, index))
        keyed.sort()
        return [index for _, index in keyed]

    def pairs(self, relation: Relation, attributes: Sequence[str]) -> Iterator[Tuple[int, int]]:
        seen: Set[Tuple[int, int]] = set()
        for attribute, position in self.key_values(relation, self.pass_keys(attributes)):
            order = self.pass_order(relation, position)
            for start, left in enumerate(order):
                for right in order[start + 1 : start + self.window]:
                    pair = (left, right) if left < right else (right, left)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    yield pair

    def __repr__(self) -> str:
        return (
            f"SortedNeighborhoodBlocking(window={self.window}, "
            f"keys={self.keys!r}, max_keys={self.max_keys!r}, "
            f"key_style={self.key_style!r})"
        )
