"""Exhaustive pair enumeration — the baseline blocking strategy.

This is the seed behaviour of ``CandidatePairGenerator`` factored out behind
the :class:`~repro.dedup.blocking.base.BlockingStrategy` interface: every
``i < j`` pair is a candidate.  It is the only strategy with perfect
candidate-stage recall, and therefore the default; its cost is
``n·(n-1)/2`` pair proposals, which dominates runtime beyond a few hundred
tuples (experiment E4).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.dedup.blocking.base import BlockingStrategy
from repro.engine.relation import Relation

__all__ = ["AllPairsBlocking"]


class AllPairsBlocking(BlockingStrategy):
    """Every ``i < j`` pair is a candidate (exact, quadratic)."""

    name = "allpairs"

    def pairs(self, relation: Relation, attributes: Sequence[str]) -> Iterator[Tuple[int, int]]:
        size = len(relation)
        for i in range(size):
            for j in range(i + 1, size):
                yield (i, j)
