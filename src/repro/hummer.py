"""The HumMer facade: one object that registers sources and answers fusion queries.

This is the public one-stop API mirroring the two querying modes of the demo
(paper §3): the SQL interface (:meth:`HumMer.query`) and the step-by-step
pipeline (:meth:`HumMer.fuse` / :meth:`HumMer.session` /
:meth:`HumMer.pipeline`).

Configuration is one declarative tree (:class:`repro.config.FusionConfig`)
instead of the historical pile of keyword arguments::

    from repro import DedupConfig, FusionConfig, HumMer, PrepareConfig

    hummer = HumMer(config=FusionConfig(
        dedup=DedupConfig(threshold=0.8, blocking="adaptive", workers=4),
        prepare=PrepareConfig(mode="lazy"),
    ))
    hummer.register("EE_Students", ee_rows)
    hummer.register("CS_Students", cs_rows)
    result = hummer.query(
        "SELECT Name, RESOLVE(Age, max) "
        "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
    )
    print(result.to_text())

Object injection (``matcher=`` / ``detector=``) remains the escape hatch for
already-constructed strategy instances; every other knob lives on the config
tree.  See ``docs/api.md`` for the full surface and ``docs/service.md`` for
the HTTP service built on top of it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.config import FusionConfig
from repro.core.fusion import FusionSpec, ResolutionSpec
from repro.core.pipeline import FusionPipeline, PipelineResult
from repro.core.resolution.base import (
    ResolutionFunction,
    ResolutionRegistry,
    default_registry,
)
from repro.core.session import FusionSession
from repro.dedup.detector import DuplicateDetector
from repro.engine.catalog import Catalog
from repro.engine.io.base import DataSource
from repro.engine.relation import Relation
from repro.exceptions import ConfigError
from repro.prepare.preparer import SourcePreparer, token_strategy_for
from repro.fuseby.executor import QueryExecutor
from repro.matching.dumas import DumasMatcher

__all__ = ["HumMer"]


class HumMer:
    """Ad-hoc, declarative data fusion over registered sources.

    Args:
        config: the declarative configuration tree
            (:class:`repro.config.FusionConfig`) — matching knobs, dedup
            threshold / blocking / executor, preparation mode and artifact
            directory, default resolutions.  Defaults to a stock tree.
        matcher: schema-matcher *instance* override (object injection; wins
            over ``config.matching``).
        detector: duplicate-detector *instance* override (object injection;
            wins over ``config.dedup``).
        registry: resolution-function registry; defaults to a process-wide
            registry holding every built-in function.
    """

    def __init__(
        self,
        matcher: Optional[DumasMatcher] = None,
        detector: Optional[DuplicateDetector] = None,
        registry: Optional[ResolutionRegistry] = None,
        config: Optional[FusionConfig] = None,
    ):
        config = config if config is not None else FusionConfig()
        self.config = config
        self.catalog = Catalog(artifact_dir=config.prepare.artifact_dir)
        self.registry = registry or default_registry()
        self.matcher = matcher or config.matching.build_matcher()
        self.detector = detector or config.dedup.build_detector()
        self._executor = QueryExecutor(
            self.catalog,
            registry=self.registry,
            matcher=self.matcher,
            detector=self.detector,
            preparer_factory=lambda: (
                self._preparer() if self.prepare_mode is not None else None
            ),
        )

    # -- configuration -------------------------------------------------------------

    @property
    def prepare_mode(self) -> Optional[str]:
        """The instance-wide preparation mode (``config.prepare.mode``)."""
        return self.config.prepare.mode

    def enable_prepare(self, mode: str = "lazy") -> None:
        """Explicitly switch on per-source artifact preparation.

        This is the one spelling that flips the instance-wide mode (the
        historical implicit promotions through ``register(prepare=...)`` and
        :meth:`prepare` are gone): subsequent queries build, reuse and
        merge per-source artifacts in *mode* (``"lazy"`` or ``"eager"``).

        Four artifact kinds are prepared per source — the blocking token
        index, the TF-IDF seeding statistics, the planner profile and the
        SoftTFIDF field corpus — so on a warm run both duplicate detection
        *and* schema matching skip their per-source tokenisation entirely
        (see ``docs/matching.md`` for the matching half).
        """
        if mode is None:
            raise ConfigError('enable_prepare needs "lazy" or "eager"')
        self.config = self.config.merged({"prepare": {"mode": mode}})

    # -- source management ---------------------------------------------------------

    def register(
        self,
        alias: str,
        source: Union[DataSource, Relation, Iterable[dict]],
        description: str = "",
        replace: bool = False,
        prepare: Optional[str] = None,
    ) -> None:
        """Register a data source (relation, DataSource or iterable of dicts) under *alias*.

        *prepare* overrides the instance's preparation mode for this source:
        ``"eager"`` builds the per-source artifacts immediately, ``"lazy"``
        defers them to the first fusion query.  Replacing a source
        invalidates its artifacts; with an eager mode they are rebuilt on
        the spot.

        The override never flips the instance-wide mode: on an instance
        configured without one (``config.prepare.mode is None``) a
        *prepare* override would build artifacts no query merges, so it
        raises :class:`ConfigError` — configure ``PrepareConfig(mode=...)``
        or call :meth:`enable_prepare` first.
        """
        if prepare not in (None, "lazy", "eager"):
            raise ConfigError('prepare must be None, "lazy" or "eager"')
        if prepare is not None and self.prepare_mode is None:
            raise ConfigError(
                f"register(prepare={prepare!r}) needs an instance-wide "
                "preparation mode (the per-source override refines it, it "
                "does not enable it); configure PrepareConfig(mode=...) or "
                "call enable_prepare() first"
            )
        self.catalog.register(alias, source, description=description, replace=replace)
        mode = prepare or self.prepare_mode
        if mode == "eager":
            self._prepare_now([alias])

    def unregister(self, alias: str) -> None:
        """Remove a registered source (and its prepared artifacts)."""
        self.catalog.unregister(alias)

    def prepare(self, aliases: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Build (or validate) per-source artifacts now; returns the report.

        With no *aliases*, every registered source is prepared.  Requires an
        instance-wide preparation mode (otherwise the built artifacts would
        never be merged by queries): configure ``PrepareConfig(mode=...)``
        or call :meth:`enable_prepare` first — the historical implicit
        switch to ``"lazy"`` is gone.
        """
        if self.prepare_mode is None:
            raise ConfigError(
                "prepare() needs an instance-wide preparation mode so the "
                "built artifacts are actually merged by queries; configure "
                "PrepareConfig(mode=...) or call enable_prepare() first"
            )
        return self._prepare_now(aliases)

    def _prepare_now(self, aliases: Optional[Sequence[str]]) -> Dict[str, Any]:
        prepared = self._preparer().prepare(
            list(aliases) if aliases is not None else self.catalog.aliases()
        )
        return prepared.report()

    def _preparer(self) -> SourcePreparer:
        return SourcePreparer(
            self.catalog,
            token_strategy=token_strategy_for(self.detector.blocking),
            seed_sample_limit=self.matcher.seeder.max_tuples_per_relation,
        )

    def sources(self) -> List[str]:
        """Aliases of all registered sources."""
        return self.catalog.aliases()

    def relation(self, alias: str) -> Relation:
        """The relational form of one registered source."""
        return self.catalog.fetch(alias)

    # -- resolution functions ----------------------------------------------------------

    def register_resolution_function(self, function: ResolutionFunction, replace: bool = False) -> None:
        """Add a custom conflict-resolution function (HumMer is extensible)."""
        self.registry.register(function, replace=replace)

    def resolution_functions(self) -> List[str]:
        """Names of every available resolution function."""
        return self.registry.names()

    # -- querying ----------------------------------------------------------------------

    def query(self, query_text: str) -> Relation:
        """Run a Fuse By / SQL statement and return the result relation."""
        return self._executor.execute(query_text)

    def explain(self, query_text: str):
        """Parse and plan a statement without executing it."""
        return self._executor.explain(query_text)

    def fuse(
        self,
        aliases: Sequence[str],
        resolutions: Optional[
            Dict[str, Union[str, Tuple[str, Sequence[Any]], ResolutionFunction]]
        ] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> PipelineResult:
        """Run the fully automatic pipeline over *aliases* and return all artefacts.

        ``resolutions`` maps column names (of the preferred schema) to
        resolution functions; unmentioned columns use Coalesce.  Without
        *resolutions*, the config's ``resolution`` section (if any) applies.
        """
        return self.pipeline().run(
            aliases, spec=self._fusion_spec(resolutions), metadata=metadata
        )

    def session(
        self,
        aliases: Sequence[str],
        resolutions: Optional[
            Dict[str, Union[str, Tuple[str, Sequence[Any]], ResolutionFunction]]
        ] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> FusionSession:
        """A step-by-step :class:`~repro.core.session.FusionSession` over *aliases*.

        The session walks the paper's six wizard steps one
        :meth:`~repro.core.session.FusionSession.advance` at a time; adjust
        the intermediate artefacts between calls and subscribe to
        :class:`~repro.core.session.StageEvent` progress.  Advancing it to
        completion is bit-identical to :meth:`fuse`.
        """
        return self.pipeline().session(
            aliases, spec=self._fusion_spec(resolutions), metadata=metadata
        )

    def restore_session(self, snapshot: Dict[str, Any]) -> FusionSession:
        """Rebuild a session from a :meth:`FusionSession.to_dict` snapshot.

        The snapshot's completed steps are replayed against this instance's
        catalog and settings (deterministically, so a resumed run is
        bit-identical to an uninterrupted one); recorded duplicate decisions
        are restored along the way.  The snapshotted sources must be
        registered with unchanged content — a digest mismatch raises
        :class:`~repro.exceptions.HummerError`.

        Both restore paths build on this: client-held snapshots posted to
        the service, and server-side recovery of journaled sessions from a
        durable service's data dir (:meth:`ServiceState.recover`).
        """
        return FusionSession.from_dict(self.pipeline(), snapshot)

    def _fusion_spec(self, resolutions) -> Optional[FusionSpec]:
        if resolutions:
            specs = [
                ResolutionSpec(column, function)
                for column, function in resolutions.items()
            ]
            return FusionSpec(resolutions=specs)
        return self.config.resolution.build_spec()

    def pipeline(self, **overrides) -> FusionPipeline:
        """A :class:`FusionPipeline` bound to this instance's catalog and settings.

        Keyword overrides are passed through to the pipeline constructor
        (mid-run adjustment lives on :meth:`session`, not on constructor
        hooks).
        """
        options = {
            "matcher": self.matcher,
            "detector": self.detector,
            "registry": self.registry,
            "use_name_fallback": self.config.matching.use_name_fallback,
            "prepare": self._preparer() if self.prepare_mode is not None else None,
        }
        options.update(overrides)
        return FusionPipeline(self.catalog, **options)
