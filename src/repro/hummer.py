"""The HumMer facade: one object that registers sources and answers fusion queries.

This is the public one-stop API mirroring the two querying modes of the demo
(paper §3): the SQL interface (:meth:`HumMer.query`) and the step-by-step
pipeline (:meth:`HumMer.fuse` / :meth:`HumMer.pipeline`).

Example::

    from repro import HumMer

    hummer = HumMer()
    hummer.register("EE_Students", ee_rows)
    hummer.register("CS_Students", cs_rows)
    result = hummer.query(
        "SELECT Name, RESOLVE(Age, max) "
        "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
    )
    print(result.to_text())
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.fusion import FusionSpec, ResolutionSpec
from repro.core.pipeline import FusionPipeline, PipelineResult
from repro.core.resolution.base import (
    ResolutionFunction,
    ResolutionRegistry,
    default_registry,
)
from repro.dedup.blocking import BlockingSpec
from repro.dedup.detector import DuplicateDetector
from repro.dedup.executor import ExecutorSpec
from repro.engine.catalog import Catalog
from repro.engine.io.base import DataSource
from repro.engine.relation import Relation
from repro.prepare.preparer import SourcePreparer, token_strategy_for
from repro.fuseby.executor import QueryExecutor
from repro.matching.dumas import DumasMatcher

__all__ = ["HumMer"]


class HumMer:
    """Ad-hoc, declarative data fusion over registered sources.

    Args:
        duplicate_threshold: similarity at or above which tuples are duplicates.
        matcher: schema matcher to use (default DUMAS).
        registry: resolution-function registry; defaults to a process-wide
            registry holding every built-in function.
        blocking: candidate-pair blocking strategy for duplicate detection —
            a strategy instance, a name (``"allpairs"``, ``"snm"``,
            ``"token"``, ``"union:snm+token"``, ``"adaptive"``) or ``None``
            for the exact all-pairs baseline.
            Mutually exclusive with an explicit *detector* (configure
            ``DuplicateDetector(blocking=...)`` instead).
        executor: pair-scoring executor for duplicate detection — an
            executor instance, a name (``"serial"``, ``"multiprocess"``) or
            ``None`` for the in-process serial baseline.  Mutually exclusive
            with an explicit *detector* (configure
            ``DuplicateDetector(executor=...)`` instead).
        prepare: default per-source preparation mode (see
            :mod:`repro.prepare`): ``None`` disables artifacts, ``"lazy"``
            builds them on the first fusion query that needs them,
            ``"eager"`` builds them at registration time.  Individual
            ``register(..., prepare=...)`` calls may override the mode per
            source; calling :meth:`prepare` explicitly also switches an
            unprepared instance to ``"lazy"`` so the built artifacts are
            used.
        artifact_dir: optional directory for on-disk artifact persistence —
            a restarted process with the same directory serves its first
            query warm.
    """

    def __init__(
        self,
        duplicate_threshold: float = 0.7,
        matcher: Optional[DumasMatcher] = None,
        detector: Optional[DuplicateDetector] = None,
        registry: Optional[ResolutionRegistry] = None,
        blocking: BlockingSpec = None,
        executor: ExecutorSpec = None,
        prepare: Optional[str] = None,
        artifact_dir: Optional[str] = None,
    ):
        if detector is not None and blocking is not None:
            raise ValueError(
                "pass blocking via DuplicateDetector(blocking=...) when an "
                "explicit detector is given"
            )
        if detector is not None and executor is not None:
            raise ValueError(
                "pass the executor via DuplicateDetector(executor=...) when an "
                "explicit detector is given"
            )
        if prepare not in (None, "lazy", "eager"):
            raise ValueError('prepare must be None, "lazy" or "eager"')
        self.catalog = Catalog(artifact_dir=artifact_dir)
        self.registry = registry or default_registry()
        self.matcher = matcher or DumasMatcher()
        self.detector = detector or DuplicateDetector(
            threshold=duplicate_threshold, blocking=blocking, executor=executor
        )
        self._prepare_mode = prepare
        self._executor = QueryExecutor(
            self.catalog,
            registry=self.registry,
            matcher=self.matcher,
            detector=self.detector,
            preparer_factory=lambda: (
                self._preparer() if self._prepare_mode is not None else None
            ),
        )

    # -- source management ---------------------------------------------------------

    def register(
        self,
        alias: str,
        source: Union[DataSource, Relation, Iterable[dict]],
        description: str = "",
        replace: bool = False,
        prepare: Optional[str] = None,
    ) -> None:
        """Register a data source (relation, DataSource or iterable of dicts) under *alias*.

        *prepare* overrides the instance's preparation mode for this source:
        ``"eager"`` builds the per-source artifacts immediately, ``"lazy"``
        defers them to the first fusion query.  Passing either also enables
        artifact use for subsequent queries when the instance was created
        without a mode.  Replacing a source invalidates its artifacts; with
        an eager mode they are rebuilt on the spot.
        """
        if prepare not in (None, "lazy", "eager"):
            raise ValueError('prepare must be None, "lazy" or "eager"')
        self.catalog.register(alias, source, description=description, replace=replace)
        mode = prepare or self._prepare_mode
        if prepare is not None and self._prepare_mode is None:
            self._prepare_mode = prepare
        if mode == "eager":
            self.prepare([alias])

    def unregister(self, alias: str) -> None:
        """Remove a registered source (and its prepared artifacts)."""
        self.catalog.unregister(alias)

    def prepare(self, aliases: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Build (or validate) per-source artifacts now; returns the report.

        With no *aliases*, every registered source is prepared.  An instance
        created without a preparation mode switches to ``"lazy"`` so the
        artifacts built here are actually merged by subsequent queries.
        """
        if self._prepare_mode is None:
            self._prepare_mode = "lazy"
        prepared = self._preparer().prepare(
            list(aliases) if aliases is not None else self.catalog.aliases()
        )
        return prepared.report()

    def _preparer(self) -> SourcePreparer:
        return SourcePreparer(
            self.catalog,
            token_strategy=token_strategy_for(self.detector.blocking),
            seed_sample_limit=self.matcher.seeder.max_tuples_per_relation,
        )

    def sources(self) -> List[str]:
        """Aliases of all registered sources."""
        return self.catalog.aliases()

    def relation(self, alias: str) -> Relation:
        """The relational form of one registered source."""
        return self.catalog.fetch(alias)

    # -- resolution functions ----------------------------------------------------------

    def register_resolution_function(self, function: ResolutionFunction, replace: bool = False) -> None:
        """Add a custom conflict-resolution function (HumMer is extensible)."""
        self.registry.register(function, replace=replace)

    def resolution_functions(self) -> List[str]:
        """Names of every available resolution function."""
        return self.registry.names()

    # -- querying ----------------------------------------------------------------------

    def query(self, query_text: str) -> Relation:
        """Run a Fuse By / SQL statement and return the result relation."""
        return self._executor.execute(query_text)

    def explain(self, query_text: str):
        """Parse and plan a statement without executing it."""
        return self._executor.explain(query_text)

    def fuse(
        self,
        aliases: Sequence[str],
        resolutions: Optional[
            Dict[str, Union[str, Tuple[str, Sequence[Any]], ResolutionFunction]]
        ] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> PipelineResult:
        """Run the fully automatic pipeline over *aliases* and return all artefacts.

        ``resolutions`` maps column names (of the preferred schema) to
        resolution functions; unmentioned columns use Coalesce.
        """
        specs = [
            ResolutionSpec(column, function)
            for column, function in (resolutions or {}).items()
        ]
        spec = FusionSpec(resolutions=specs) if specs else None
        return self.pipeline().run(aliases, spec=spec, metadata=metadata)

    def pipeline(self, **overrides) -> FusionPipeline:
        """A :class:`FusionPipeline` bound to this instance's catalog and settings.

        Keyword overrides are passed through to the pipeline constructor
        (e.g. ``adjust_matching=...`` hooks for the interactive flow).
        """
        options = {
            "matcher": self.matcher,
            "detector": self.detector,
            "registry": self.registry,
            "prepare": self._preparer() if self._prepare_mode is not None else None,
        }
        options.update(overrides)
        return FusionPipeline(self.catalog, **options)
