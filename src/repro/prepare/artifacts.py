"""The four per-source artifact kinds and their builders.

An artifact captures the *per-source* half of a pipeline computation — the
half that reads cell values and therefore dominates preparation-bound phase
cost.  Each builder is a pure function of one relation plus the consumer's
parameters; :mod:`repro.prepare.preparer` merges artifacts across sources at
query time.

Builders deliberately reuse the consumers' own primitives
(:meth:`TokenBlocking.build_index`,
:func:`~repro.matching.duplicate_seed.compute_seed_statistics`) instead of
re-implementing tokenisation, so an artifact can never drift from what the
cold code path would compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dedup.blocking.token import TokenBlocking
from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.matching.duplicate_seed import SeedStatistics, compute_seed_statistics
from repro.similarity.tokenize import tokenize

__all__ = [
    "TOKEN_KIND",
    "SEED_KIND",
    "PROFILE_KIND",
    "FIELD_KIND",
    "TokenPostingsArtifact",
    "AttributeStatistics",
    "SourceProfileArtifact",
    "FieldCorpusArtifact",
    "build_token_postings",
    "build_seed_statistics",
    "build_source_profile",
    "build_field_corpus",
    "token_params_key",
    "seed_params_key",
    "field_params_key",
]

#: Artifact kind names, used as store keys and counter labels.
TOKEN_KIND = "token_index"
SEED_KIND = "seed_statistics"
PROFILE_KIND = "profile"
FIELD_KIND = "field_corpus"


def token_params_key(strategy: TokenBlocking) -> Tuple:
    """The tokenisation knobs an index artifact depends on.

    The block-size caps are applied at pair-enumeration time, not index
    time, so they are deliberately *not* part of the key — one artifact
    serves every cap setting.
    """
    return (strategy.qgram, strategy.min_token_length)


def seed_params_key(sample_limit: Optional[int]) -> Tuple:
    """The seeding knobs a statistics artifact depends on."""
    return (sample_limit,)


def field_params_key() -> Tuple:
    """The knobs a field-corpus artifact depends on.

    The corpus is tokenised with the stock :func:`tokenize` —
    the only tokenizer :class:`~repro.similarity.soft_tfidf.SoftTfIdfSimilarity`
    constructs in the DUMAS default measure — so there is nothing to key on.
    """
    return ()


@dataclass
class TokenPostingsArtifact:
    """Per-attribute token inverted index of one relation.

    ``postings[attribute]`` maps each token to the ascending row indices
    whose value of *attribute* contains it — exactly what
    :meth:`TokenBlocking.build_index` produces for that single attribute.
    Keeping attributes separate (rather than the row-level union the
    combined index needs) is what makes merging possible: at query time only
    the attributes that survived schema matching and attribute selection are
    unioned, per source, under the combined relation's row offsets.

    Attributes:
        row_count: tuples in the indexed relation.
        params: the tokenisation knobs (see :func:`token_params_key`).
        postings: lower-cased attribute name → token → ascending row indices.
    """

    row_count: int
    params: Tuple
    postings: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)

    def attribute_postings(self, attribute: str) -> Optional[Dict[str, List[int]]]:
        """The token index of one attribute (``None`` when not indexed)."""
        return self.postings.get(attribute.lower())


@dataclass
class AttributeStatistics:
    """Value statistics of one attribute, mergeable across sources.

    ``distinct`` stores the *string forms* of distinct non-null values —
    the same ``str(value)`` folding the adaptive planner's profiling uses —
    so merged distinct counts equal what profiling the combined relation
    would count.
    """

    attribute: str
    non_null: int
    distinct: Set[str] = field(default_factory=set)


@dataclass
class SourceProfileArtifact:
    """Per-attribute value statistics of one relation for planner profiling.

    Token-level profiling inputs (block coverage, token counts) come from
    the :class:`TokenPostingsArtifact` instead of being duplicated here.
    """

    row_count: int
    attributes: Dict[str, AttributeStatistics] = field(default_factory=dict)

    def attribute_statistics(self, attribute: str) -> Optional[AttributeStatistics]:
        return self.attributes.get(attribute.lower())


@dataclass
class FieldCorpusArtifact:
    """Term/document frequencies of one relation's non-null cell strings.

    This is the per-source half of the field corpus
    :meth:`DumasMatcher._default_measure` fits SoftTFIDF on: every non-null
    cell value, rendered with ``str``, is one document.  The artifact stores
    the reduction :meth:`TfIdfVectorizer.fit` performs over that corpus —
    per-term document frequency plus the document count — so match time only
    has to *add* the two sides' counts (frequencies add, corpus sizes add)
    and feed them to :meth:`TfIdfVectorizer.fit_counts`, which is
    bit-identical to fitting on the concatenated corpora.

    Attributes:
        document_count: non-null cells in the relation.
        document_frequency: term → number of cells whose string contains it.
    """

    document_count: int
    document_frequency: Dict[str, int] = field(default_factory=dict)


def build_field_corpus(relation: Relation) -> FieldCorpusArtifact:
    """Reduce *relation*'s non-null cell strings to field-corpus statistics.

    Mirrors the corpus construction of ``DumasMatcher._default_measure``
    (every non-null cell, in row-major order, via ``str``) composed with the
    reduction inside :meth:`TfIdfVectorizer.fit` (one count per document,
    document frequency over the *set* of its tokens).
    """
    document_frequency: Dict[str, int] = {}
    count = 0
    for values in relation.rows:
        for value in values:
            if is_null(value):
                continue
            count += 1
            for term in set(tokenize(str(value))):
                document_frequency[term] = document_frequency.get(term, 0) + 1
    return FieldCorpusArtifact(
        document_count=count, document_frequency=document_frequency
    )


def build_token_postings(
    relation: Relation, strategy: TokenBlocking
) -> TokenPostingsArtifact:
    """Index every attribute of *relation* with *strategy*'s tokenisation."""
    postings: Dict[str, Dict[str, List[int]]] = {}
    for column in relation.schema:
        postings[column.name.lower()] = strategy.build_index(relation, [column.name])
    return TokenPostingsArtifact(
        row_count=len(relation),
        params=token_params_key(strategy),
        postings=postings,
    )


def build_seed_statistics(
    relation: Relation, sample_limit: Optional[int]
) -> SeedStatistics:
    """Whole-tuple TF-IDF statistics for DUMAS seeding (delegates to matching)."""
    return compute_seed_statistics(relation, sample_limit)


def build_source_profile(relation: Relation) -> SourceProfileArtifact:
    """Per-attribute null counts and distinct string values of *relation*."""
    artifact = SourceProfileArtifact(row_count=len(relation))
    rows = relation.rows
    for position, column in enumerate(relation.schema):
        non_null = 0
        distinct: Set[str] = set()
        for values in rows:
            value = values[position]
            if is_null(value):
                continue
            non_null += 1
            distinct.add(str(value))
        artifact.attributes[column.name.lower()] = AttributeStatistics(
            attribute=column.name, non_null=non_null, distinct=distinct
        )
    return artifact
