"""Building per-source artifacts and merging them at query time.

:class:`SourcePreparer` drives the build side: for each alias it fetches the
relation from the catalog and obtains the three artifact kinds from the
catalog's :class:`~repro.prepare.store.ArtifactStore` (reusing valid entries,
rebuilding stale ones).  The result is a :class:`PreparedSources` bundle.

The merge side is :class:`PreparedQueryView`, created per query once the
combined (outer-unioned) relation exists.  It knows the row offset of every
source inside the union and the column mapping schema matching induced, and
merges per-source artifacts into exactly the structures the cold code paths
would compute over the combined relation:

* the blocking token index — per-source per-attribute postings are unioned
  under the combined attributes and shifted by the row offsets;
* the planner's :class:`RelationProfile` — null counts add, distinct string
  sets union, block coverage is recomputed from the merged postings.

Merged structures are *member-identical* to their cold counterparts (same
sets, same ascending orders, same float operands), so preparing can change
runtimes but never results.  Cross-source seeding statistics merge inside
:meth:`DuplicateSeeder.find_seeds` itself; the view only resolves the
per-source halves.

Providers are installed on the consumers (``TokenBlocking.index_provider``,
``AdaptiveBlocking.profile_provider``,
``DuplicateSeeder.statistics_provider``) for the duration of one pipeline
step via context managers, so shared strategy instances are never left
pointing at a finished query's view.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.dedup.blocking.adaptive import (
    AdaptiveBlocking,
    AttributeProfile,
    RelationProfile,
)
from repro.dedup.blocking.base import BlockingStrategy
from repro.dedup.blocking.token import TokenBlocking
from repro.dedup.blocking.union import UnionBlocking
from repro.engine.relation import Relation
from repro.matching.correspondences import CorrespondenceSet
from repro.matching.duplicate_seed import DuplicateSeeder, SeedStatistics
from repro.matching.transform import SOURCE_ID_COLUMN, apply_correspondences
from repro.prepare.artifacts import (
    FIELD_KIND,
    PROFILE_KIND,
    SEED_KIND,
    TOKEN_KIND,
    FieldCorpusArtifact,
    SourceProfileArtifact,
    TokenPostingsArtifact,
    build_field_corpus,
    build_seed_statistics,
    build_source_profile,
    build_token_postings,
    field_params_key,
    seed_params_key,
    token_params_key,
)
from repro.prepare.store import ArtifactCounters

__all__ = [
    "SourceArtifacts",
    "SourcePreparer",
    "PreparedSources",
    "PreparedQueryView",
    "token_strategy_for",
]


def token_strategy_for(strategy: Optional[BlockingStrategy]) -> TokenBlocking:
    """The token strategy whose parameters artifact building should mirror.

    Walks the blocking graph: a :class:`TokenBlocking` is taken directly, an
    :class:`AdaptiveBlocking` contributes its internal token strategy, a
    :class:`UnionBlocking` the first token child.  Any other (or no)
    strategy yields a stock :class:`TokenBlocking` — artifacts are then
    still useful for profiling and default token blocking.
    """
    if isinstance(strategy, TokenBlocking):
        return strategy
    if isinstance(strategy, AdaptiveBlocking):
        return strategy._token
    if isinstance(strategy, UnionBlocking):
        for child in strategy.children:
            if isinstance(child, (TokenBlocking, AdaptiveBlocking, UnionBlocking)):
                return token_strategy_for(child)
    return TokenBlocking()


@dataclass
class SourceArtifacts:
    """The four prepared artifacts of one registered source."""

    alias: str
    relation: Relation
    digest: str
    token: TokenPostingsArtifact
    seeds: SeedStatistics
    profile: SourceProfileArtifact
    field_corpus: FieldCorpusArtifact


class SourcePreparer:
    """Builds (or reuses) the artifacts of registered sources.

    All four artifact kinds are built regardless of the strategy the
    *current* query uses: artifacts are a per-source investment for an
    online service, and the next query may block differently (``--blocking
    adaptive`` after ``snm``) or match a different source pair — gating on
    today's strategy would just turn those into cold starts.  Callers that
    know better can prepare a store directly via
    :meth:`ArtifactStore.get_or_build` with only the kinds they want.

    Args:
        catalog: the catalog whose :attr:`~repro.engine.catalog.Catalog.artifacts`
            store holds the artifacts.
        token_strategy: the :class:`TokenBlocking` whose tokenisation the
            index artifacts must mirror (default: a stock instance — the
            parameters every default pipeline uses).
        seed_sample_limit: the seeder's ``max_tuples_per_relation`` the
            seeding statistics are sampled with.
    """

    def __init__(
        self,
        catalog,
        token_strategy: Optional[TokenBlocking] = None,
        seed_sample_limit: Optional[int] = 500,
    ):
        self.catalog = catalog
        self.token_strategy = token_strategy or TokenBlocking()
        self.seed_sample_limit = seed_sample_limit

    def prepare(self, aliases: Sequence[str]) -> "PreparedSources":
        """Ensure all four artifacts exist and are current for every alias."""
        store = self.catalog.artifacts
        before = store.counters.snapshot()
        bundles: List[SourceArtifacts] = []
        for alias in aliases:
            relation = self.catalog.fetch(alias)
            digest = relation.content_digest()
            token = store.get_or_build(
                alias,
                TOKEN_KIND,
                token_params_key(self.token_strategy),
                relation,
                lambda relation=relation: build_token_postings(relation, self.token_strategy),
                digest=digest,
            )
            seeds = store.get_or_build(
                alias,
                SEED_KIND,
                seed_params_key(self.seed_sample_limit),
                relation,
                lambda relation=relation: build_seed_statistics(
                    relation, self.seed_sample_limit
                ),
                digest=digest,
            )
            profile = store.get_or_build(
                alias,
                PROFILE_KIND,
                (),
                relation,
                lambda relation=relation: build_source_profile(relation),
                digest=digest,
            )
            field_corpus = store.get_or_build(
                alias,
                FIELD_KIND,
                field_params_key(),
                relation,
                lambda relation=relation: build_field_corpus(relation),
                digest=digest,
            )
            bundles.append(
                SourceArtifacts(
                    alias=alias,
                    relation=relation,
                    digest=digest,
                    token=token,
                    seeds=seeds,
                    profile=profile,
                    field_corpus=field_corpus,
                )
            )
        return PreparedSources(
            bundles=bundles,
            counters=store.counters.diff(before),
            token_params=token_params_key(self.token_strategy),
        )


@dataclass
class PreparedSources:
    """The artifacts of one query's sources, plus this prepare pass's counters."""

    bundles: List[SourceArtifacts]
    counters: ArtifactCounters
    token_params: Tuple = ()
    _by_relation_id: Dict[int, SourceArtifacts] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_relation_id = {id(bundle.relation): bundle for bundle in self.bundles}

    def bundle_for(self, relation: Relation) -> Optional[SourceArtifacts]:
        """The bundle whose source relation is *relation* (object identity)."""
        return self._by_relation_id.get(id(relation))

    def report(self) -> Dict[str, Any]:
        """JSON-serialisable summary for the pipeline result and the CLI."""
        report = {"sources": [bundle.alias for bundle in self.bundles]}
        report.update(self.counters.as_dict())
        return report

    # -- seeding ------------------------------------------------------------------

    def seed_statistics(
        self, relation: Relation, sample_limit: Optional[int]
    ) -> Optional[SeedStatistics]:
        """Prebuilt seeding statistics for *relation*, when valid for *sample_limit*."""
        bundle = self.bundle_for(relation)
        if bundle is None or bundle.seeds.sample_limit != sample_limit:
            return None
        return bundle.seeds

    @contextmanager
    def seeding(self, seeder: DuplicateSeeder):
        """Serve this bundle's statistics from *seeder* for the duration."""
        previous = seeder.statistics_provider
        seeder.statistics_provider = self.seed_statistics
        try:
            yield
        finally:
            seeder.statistics_provider = previous

    # -- field matching -----------------------------------------------------------

    def field_corpus(
        self, left: Relation, right: Relation
    ) -> Optional[Tuple[Dict[str, int], int]]:
        """Merged field-corpus statistics for a (*left*, *right*) match pair.

        Document frequencies add and corpus sizes add, so feeding the merge
        to :meth:`TfIdfVectorizer.fit_counts` reproduces bit for bit the
        model a fresh fit over both relations' concatenated cell strings
        would learn.  Returns ``None`` (→ the matcher builds cold) when
        either relation is not a prepared source of this bundle.
        """
        left_bundle = self.bundle_for(left)
        right_bundle = self.bundle_for(right)
        if left_bundle is None or right_bundle is None:
            return None
        document_frequency = dict(left_bundle.field_corpus.document_frequency)
        for term, frequency in right_bundle.field_corpus.document_frequency.items():
            document_frequency[term] = document_frequency.get(term, 0) + frequency
        document_count = (
            left_bundle.field_corpus.document_count
            + right_bundle.field_corpus.document_count
        )
        return document_frequency, document_count

    @contextmanager
    def matching(self, matcher):
        """Serve merged field corpora from *matcher* for the duration.

        Matchers without a ``field_corpus_provider`` hook (custom
        non-DUMAS implementations) are left untouched.
        """
        if not hasattr(matcher, "field_corpus_provider"):
            yield
            return
        previous = matcher.field_corpus_provider
        matcher.field_corpus_provider = self.field_corpus
        try:
            yield
        finally:
            matcher.field_corpus_provider = previous

    # -- the per-query merge view -------------------------------------------------

    def view(
        self,
        combined: Relation,
        correspondences: Optional[CorrespondenceSet] = None,
        preferred: Optional[str] = None,
    ) -> Optional["PreparedQueryView"]:
        """A merge view over *combined*, or ``None`` when rows do not line up.

        *combined* must be the outer union of the bundles' relations in
        bundle order (what :func:`~repro.matching.transform.transform_sources`
        produced for the same sources and *correspondences*).
        """
        if len(combined) != sum(len(bundle.relation) for bundle in self.bundles):
            return None
        return PreparedQueryView(
            prepared=self,
            combined=combined,
            correspondences=correspondences or CorrespondenceSet(),
            preferred=preferred
            or (self.bundles[0].relation.name if self.bundles else ""),
        )


class PreparedQueryView:
    """Merges per-source artifacts into combined-relation structures."""

    def __init__(
        self,
        prepared: PreparedSources,
        combined: Relation,
        correspondences: CorrespondenceSet,
        preferred: str,
    ):
        self.prepared = prepared
        self.combined = combined
        # row offset of each source inside the union, and the column mapping
        # schema matching induced: combined attribute → source attribute
        self._offsets: List[int] = []
        self._mappings: List[Dict[str, str]] = []
        offset = 0
        for bundle in prepared.bundles:
            self._offsets.append(offset)
            offset += len(bundle.relation)
            renamed = apply_correspondences(bundle.relation, correspondences, preferred)
            mapping = {
                renamed_name.lower(): original_name.lower()
                for renamed_name, original_name in zip(
                    renamed.schema.names, bundle.relation.schema.names
                )
            }
            self._mappings.append(mapping)

    # -- merged structures --------------------------------------------------------

    def token_index(
        self, relation: Relation, attributes: Sequence[str]
    ) -> Optional[Dict[str, List[int]]]:
        """The combined token inverted index, merged from per-source postings.

        Returns ``None`` (→ the caller builds cold) when the request is not
        for this view's combined relation, the artifacts were tokenised with
        different parameters, or an attribute the artifacts cannot cover
        (the synthetic ``sourceID``) is requested.
        """
        plan = self._merge_plan(relation, attributes)
        if plan is None:
            return None
        merged: Dict[str, List[int]] = {}
        for source_index, mapped_attributes in enumerate(plan):
            bundle = self.prepared.bundles[source_index]
            offset = self._offsets[source_index]
            rows_by_token: Dict[str, Set[int]] = {}
            for mapped in mapped_attributes:
                if mapped is None:
                    continue
                postings = bundle.token.attribute_postings(mapped)
                if not postings:
                    continue
                for token, members in postings.items():
                    rows_by_token.setdefault(token, set()).update(members)
            for token, members in rows_by_token.items():
                merged.setdefault(token, []).extend(
                    member + offset for member in sorted(members)
                )
        return merged

    def merged_profile(
        self,
        relation: Relation,
        attributes: Sequence[str],
        token_strategy: TokenBlocking,
        max_attributes: int,
    ) -> Optional[RelationProfile]:
        """The planner's :class:`RelationProfile`, merged from stored artifacts.

        Mirrors :func:`repro.dedup.blocking.adaptive.profile_relation`
        operation for operation (same float operands, same attribute order),
        so a plan built from a merged profile equals the cold plan.
        """
        present = [
            attribute
            for attribute in attributes
            if relation.schema.has_column(attribute)
        ][:max_attributes]
        plan = self._merge_plan(relation, present, token_strategy=token_strategy)
        if plan is None:
            return None
        size = len(relation)
        profile = RelationProfile(
            tuple_count=size, total_pairs=size * (size - 1) // 2
        )
        cap = token_strategy.effective_cap(size)
        merged_blocks: Dict[str, Set[int]] = {}
        for position, attribute in enumerate(present):
            index = self._merged_attribute_index(attribute, position, plan)
            covered: Set[int] = set()
            for token, members in index.items():
                merged_blocks.setdefault(token, set()).update(members)
                if 2 <= len(members) <= cap:
                    covered.update(members)
            non_null = 0
            distinct: Set[str] = set()
            for source_index, mapped_attributes in enumerate(plan):
                mapped = mapped_attributes[position]
                if mapped is None:
                    continue
                statistics = self.prepared.bundles[source_index].profile.attribute_statistics(
                    mapped
                )
                if statistics is None:
                    continue
                non_null += statistics.non_null
                distinct |= statistics.distinct
            null_rate = 1.0 - (non_null / size) if size else 0.0
            distinct_ratio = len(distinct) / non_null if non_null else 0.0
            corruption = 1.0 - (len(covered) / non_null) if non_null >= 2 else 1.0
            profile.attributes.append(
                AttributeProfile(
                    attribute=attribute,
                    null_rate=null_rate,
                    distinct_ratio=distinct_ratio,
                    corruption_estimate=corruption,
                )
            )
        profile.token_count = len(merged_blocks)
        profile.dropped_block_count = sum(
            1 for members in merged_blocks.values() if len(members) > cap
        )
        kept_sizes = [
            len(members) for members in merged_blocks.values() if len(members) <= cap
        ]
        profile.mean_block_size = (
            (sum(kept_sizes) / len(kept_sizes)) if kept_sizes else 0.0
        )
        return profile

    def _merged_attribute_index(
        self, attribute: str, position: int, plan: List[List[Optional[str]]]
    ) -> Dict[str, List[int]]:
        """Single-attribute combined index (profiling granularity)."""
        merged: Dict[str, List[int]] = {}
        for source_index, mapped_attributes in enumerate(plan):
            mapped = mapped_attributes[position]
            if mapped is None:
                continue
            postings = self.prepared.bundles[source_index].token.attribute_postings(mapped)
            if not postings:
                continue
            offset = self._offsets[source_index]
            for token, members in postings.items():
                merged.setdefault(token, []).extend(
                    member + offset for member in members
                )
        return merged

    def _merge_plan(
        self,
        relation: Relation,
        attributes: Sequence[str],
        token_strategy: Optional[TokenBlocking] = None,
    ) -> Optional[List[List[Optional[str]]]]:
        """Per source, the mapped source attribute of every requested attribute.

        ``None`` signals "serve nothing, build cold": foreign relation,
        parameter mismatch, or an unservable attribute.
        """
        if relation is not self.combined:
            return None
        params = (
            token_params_key(token_strategy)
            if token_strategy is not None
            else self.prepared.token_params
        )
        if params != self.prepared.token_params:
            return None
        requested = [attribute.lower() for attribute in attributes]
        if SOURCE_ID_COLUMN.lower() in requested:
            # sourceID is synthesised during transformation; the per-source
            # artifacts have never seen it, so the merge cannot serve it.
            return None
        return [
            [mapping.get(attribute) for attribute in requested]
            for mapping in self._mappings
        ]

    # -- provider installation ----------------------------------------------------

    @contextmanager
    def blocking(self, strategy: BlockingStrategy):
        """Serve merged indexes/profiles from *strategy* for the duration.

        Walks the strategy graph: :class:`TokenBlocking` gets the merged
        index provider, :class:`AdaptiveBlocking` gets the merged profile
        provider (plus the index provider on its internal token strategy),
        :class:`UnionBlocking` recurses into its children.
        """
        restore: List[Tuple[Any, str, Any]] = []
        self._install(strategy, restore)
        try:
            yield
        finally:
            for target, attribute, previous in reversed(restore):
                setattr(target, attribute, previous)

    def _install(self, strategy: BlockingStrategy, restore: List[Tuple[Any, str, Any]]):
        if isinstance(strategy, TokenBlocking):
            restore.append((strategy, "index_provider", strategy.index_provider))
            strategy.index_provider = self.token_index
        elif isinstance(strategy, AdaptiveBlocking):
            restore.append((strategy, "profile_provider", strategy.profile_provider))
            strategy.profile_provider = self.merged_profile
            self._install(strategy._token, restore)
        elif isinstance(strategy, UnionBlocking):
            for child in strategy.children:
                self._install(child, restore)
