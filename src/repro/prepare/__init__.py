"""Prepared-source artifacts: build per-source indexes once, merge at query time.

HumMer's demo workload is an *online service*: sources are registered once
and then queried repeatedly.  Before this package existed, every
``fuse()``/``query()`` re-tokenised relations for blocking, re-fitted TF-IDF
from scratch for DUMAS seeding and re-profiled inputs for the adaptive
planner — all per-source work whose result never changes while the source
data does not.

This package is the preparation layer between the
:class:`~repro.engine.catalog.Catalog` and the pipeline.  Per registered
relation it builds four **artifacts**, each keyed on the relation's stable
content digest:

* :class:`TokenPostingsArtifact` — the per-attribute token inverted index
  that :class:`~repro.dedup.blocking.token.TokenBlocking` (and the adaptive
  planner's profiling) otherwise rebuilds from cell values;
* :class:`~repro.matching.duplicate_seed.SeedStatistics` — whole-tuple
  TF-IDF term statistics for DUMAS seed discovery;
* :class:`SourceProfileArtifact` — per-attribute null counts and distinct
  values feeding the adaptive planner's :class:`RelationProfile`;
* :class:`FieldCorpusArtifact` — term/document frequencies over every
  non-null cell string, the corpus DUMAS's SoftTFIDF field measure is
  otherwise refitted on per source pair.

At query time the artifacts of the participating sources are **merged** —
postings are unioned with row offsets, document frequencies add into a
cross-source IDF, profiles combine — reproducing the cold computations bit
for bit without touching a single cell value.  The
:class:`~repro.prepare.store.ArtifactStore` lives on the catalog (one per
catalog, invalidated with the sources) and optionally persists to disk, so a
freshly started process can serve its first query warm.

See ``docs/architecture.md`` for the register → prepare → match → dedup →
fuse flow.
"""

from repro.prepare.artifacts import (
    FIELD_KIND,
    PROFILE_KIND,
    SEED_KIND,
    TOKEN_KIND,
    AttributeStatistics,
    FieldCorpusArtifact,
    SourceProfileArtifact,
    TokenPostingsArtifact,
    build_field_corpus,
    build_seed_statistics,
    build_source_profile,
    build_token_postings,
)
from repro.prepare.preparer import (
    PreparedQueryView,
    PreparedSources,
    SourceArtifacts,
    SourcePreparer,
)
from repro.prepare.store import ArtifactCounters, ArtifactStore

__all__ = [
    "TOKEN_KIND",
    "SEED_KIND",
    "PROFILE_KIND",
    "FIELD_KIND",
    "TokenPostingsArtifact",
    "SourceProfileArtifact",
    "AttributeStatistics",
    "FieldCorpusArtifact",
    "build_token_postings",
    "build_seed_statistics",
    "build_source_profile",
    "build_field_corpus",
    "ArtifactStore",
    "ArtifactCounters",
    "SourcePreparer",
    "PreparedSources",
    "PreparedQueryView",
    "SourceArtifacts",
]
