"""Content-addressed artifact store, owned by the catalog.

One :class:`ArtifactStore` lives on each
:class:`~repro.engine.catalog.Catalog`.  Entries are keyed by
``(alias, kind, params)`` and validated against the registered relation's
stable content digest on every lookup, so a source whose data changed —
``register(replace=True)``, ``invalidate()`` followed by a reload that
returned different rows, or an entirely new source under the old alias —
can never be served a stale artifact: the digest mismatch forces a rebuild.

With an ``artifact_dir`` the store also persists artifacts as pickle files,
one per entry, so a freshly started process serves its first query warm.
Disk entries go through the same digest validation as in-memory ones.
"""

from __future__ import annotations

import hashlib
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.relation import Relation

__all__ = ["ArtifactCounters", "ArtifactStore"]


@dataclass
class ArtifactCounters:
    """How often artifacts were served from the store vs rebuilt, per kind."""

    reused: Dict[str, int] = field(default_factory=dict)
    rebuilt: Dict[str, int] = field(default_factory=dict)

    @property
    def total_reused(self) -> int:
        return sum(self.reused.values())

    @property
    def total_rebuilt(self) -> int:
        return sum(self.rebuilt.values())

    def record(self, kind: str, reused: bool) -> None:
        bucket = self.reused if reused else self.rebuilt
        bucket[kind] = bucket.get(kind, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reused": self.total_reused,
            "rebuilt": self.total_rebuilt,
            "reused_by_kind": dict(self.reused),
            "rebuilt_by_kind": dict(self.rebuilt),
        }

    def diff(self, earlier: "ArtifactCounters") -> "ArtifactCounters":
        """Counters accumulated since *earlier* (a snapshot of this object)."""
        result = ArtifactCounters()
        for kind, count in self.reused.items():
            delta = count - earlier.reused.get(kind, 0)
            if delta:
                result.reused[kind] = delta
        for kind, count in self.rebuilt.items():
            delta = count - earlier.rebuilt.get(kind, 0)
            if delta:
                result.rebuilt[kind] = delta
        return result

    def snapshot(self) -> "ArtifactCounters":
        return ArtifactCounters(reused=dict(self.reused), rebuilt=dict(self.rebuilt))


@dataclass
class _Entry:
    digest: str
    artifact: Any


class ArtifactStore:
    """Per-source derived structures, validated by content digest.

    Args:
        artifact_dir: optional directory for on-disk persistence.  Created
            on first write.  Files are pickles named
            ``{alias}__{kind}__{params digest}.pkl``; unreadable or
            mismatching files are treated as misses and overwritten.
    """

    def __init__(self, artifact_dir: Optional[str] = None) -> None:
        self._entries: Dict[Tuple[str, str, str], _Entry] = {}
        self._directory = Path(artifact_dir) if artifact_dir else None
        self.counters = ArtifactCounters()

    @property
    def directory(self) -> Optional[Path]:
        """The on-disk persistence directory, if configured."""
        return self._directory

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup / build -----------------------------------------------------------

    def get_or_build(
        self,
        alias: str,
        kind: str,
        params: Tuple,
        relation: "Relation",
        builder: Callable[[], Any],
        digest: Optional[str] = None,
    ) -> Any:
        """The artifact for ``(alias, kind, params)``, rebuilt if stale.

        *digest* may be passed when the caller already computed the
        relation's content digest (one digest validates all three artifact
        kinds of a source during a prepare pass).
        """
        key = self._key(alias, kind, params)
        digest = digest or relation.content_digest()
        entry = self._entries.get(key)
        if entry is not None and entry.digest == digest:
            self.counters.record(kind, reused=True)
            return entry.artifact
        entry = self._load(key, digest)
        if entry is not None:
            self._entries[key] = entry
            self.counters.record(kind, reused=True)
            return entry.artifact
        artifact = builder()
        entry = _Entry(digest=digest, artifact=artifact)
        self._entries[key] = entry
        self._dump(key, entry)
        self.counters.record(kind, reused=False)
        return artifact

    def peek(self, alias: str, kind: str, params: Tuple) -> Optional[Any]:
        """The stored artifact without validation or counting (tests, tooling)."""
        entry = self._entries.get(self._key(alias, kind, params))
        return entry.artifact if entry is not None else None

    # -- invalidation -------------------------------------------------------------

    def invalidate(self, alias: Optional[str] = None) -> None:
        """Drop artifacts of one alias (or all).

        Digest validation already guarantees staleness safety; dropping
        eagerly additionally frees memory and removes persisted files whose
        source is gone.  Persisted files are matched by the alias's file
        prefix, not the in-memory entries, so a fresh process that replaces
        or unregisters a source before ever preparing it still cleans up the
        previous process's files.
        """
        if alias is None:
            keys = list(self._entries)
        else:
            lowered = alias.lower()
            keys = [key for key in self._entries if key[0] == lowered]
        for key in keys:
            del self._entries[key]
        if self._directory is not None and self._directory.exists():
            pattern = "*.pkl" if alias is None else f"{self._alias_prefix(alias.lower())}__*.pkl"
            for path in self._directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- persistence --------------------------------------------------------------

    @staticmethod
    def _key(alias: str, kind: str, params: Tuple) -> Tuple[str, str, str]:
        params_digest = hashlib.sha256(repr(params).encode("utf-8")).hexdigest()[:12]
        return (alias.lower(), kind, params_digest)

    @staticmethod
    def _alias_prefix(alias: str) -> str:
        # readable prefix + alias digest, so sanitised aliases cannot collide
        safe_alias = re.sub(r"[^a-z0-9_.-]", "_", alias)[:40]
        alias_digest = hashlib.sha256(alias.encode("utf-8")).hexdigest()[:8]
        return f"{safe_alias}-{alias_digest}"

    def _path(self, key: Tuple[str, str, str]) -> Optional[Path]:
        if self._directory is None:
            return None
        alias, kind, params_digest = key
        return self._directory / f"{self._alias_prefix(alias)}__{kind}__{params_digest}.pkl"

    def _load(self, key: Tuple[str, str, str], digest: str) -> Optional[_Entry]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            if payload.get("digest") != digest:
                return None
            return _Entry(digest=digest, artifact=payload["artifact"])
        except Exception:
            return None

    def _dump(self, key: Tuple[str, str, str], entry: _Entry) -> None:
        path = self._path(key)
        if path is None:
            return
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            with path.open("wb") as handle:
                pickle.dump({"digest": entry.digest, "artifact": entry.artifact}, handle)
        except OSError:
            # Persistence is an optimisation; an unwritable directory must
            # never fail the query.
            pass

