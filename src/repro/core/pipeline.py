"""The HumMer fusion pipeline (Fig. 2 of the paper).

The six wizard steps are modelled as an explicit, inspectable pipeline:

1. *Choose sources* — fetch the relational form of each alias from the
   catalog.
2. *Adjust matching* — instance-based schema matching proposes attribute
   correspondences; the caller may add/remove correspondences before
   continuing.
3. *Adjust duplicate definition* — heuristics select the "interesting"
   attributes; the caller may add/remove attributes.
4. *Confirm duplicates* — duplicate detection classifies pairs into sure /
   unsure / non-duplicates; the caller may decide unsure pairs.
5. *Specify resolution functions* — conflicts are sampled; the fusion spec
   (per-column resolution functions) is applied.
6. *Browse result set* — the clean, consistent result with value lineage.

:class:`FusionPipeline.run` executes all steps automatically (the "usual
case" of the paper) by advancing one
:class:`~repro.core.session.FusionSession` to completion; the session is
also the interactive flow — advance step by step, adjust the intermediate
artefacts in place, continue (see :mod:`repro.core.session`).  The
``step_*`` methods remain the underlying per-step primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.baselines.name_matcher import NameBasedMatcher
from repro.core.conflicts import ConflictReport, find_conflicts
from repro.core.fusion import FusionOperator, FusionResult, FusionSpec
from repro.core.resolution.base import ResolutionRegistry, default_registry
from repro.dedup.descriptions import AttributeSelection, select_interesting_attributes
from repro.dedup.detector import DuplicateDetectionResult, DuplicateDetector, OBJECT_ID_COLUMN
from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.exceptions import ConfigError, HummerError
from repro.matching.correspondences import CorrespondenceSet
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher, MultiMatchingResult
from repro.matching.transform import transform_sources
from repro.prepare import FIELD_KIND, PreparedQueryView, PreparedSources, SourcePreparer
from repro.prepare.artifacts import SEED_KIND
from repro.prepare.preparer import token_strategy_for

__all__ = ["PipelineTimings", "PipelineResult", "FusionPipeline"]

#: The artifact kinds the matching phase consumes — the ``match`` slice of
#: the reuse/rebuild counters in :meth:`PipelineResult.summary`.
MATCH_ARTIFACT_KINDS = (SEED_KIND, FIELD_KIND)


@dataclass
class PipelineTimings:
    """Wall-clock seconds spent in each phase (experiment E4).

    ``prepare`` is the artifact build/validate pass of a prepared run (zero
    for unprepared pipelines).  On a warm run over unchanged sources it
    collapses to digest validation, and the matching / candidate-generation
    shares of the later phases shrink because they merge prepared artifacts
    instead of recomputing.
    """

    fetch: float = 0.0
    prepare: float = 0.0
    matching: float = 0.0
    duplicate_detection: float = 0.0
    fusion: float = 0.0

    @property
    def total(self) -> float:
        """Total time across all phases."""
        return (
            self.fetch
            + self.prepare
            + self.matching
            + self.duplicate_detection
            + self.fusion
        )

    def as_dict(self) -> Dict[str, float]:
        """Phase → seconds mapping (plus the total)."""
        return {
            "fetch": self.fetch,
            "prepare": self.prepare,
            "matching": self.matching,
            "duplicate_detection": self.duplicate_detection,
            "fusion": self.fusion,
            "total": self.total,
        }


@dataclass
class PipelineResult:
    """Everything a full pipeline run produces (the demo's intermediate artefacts).

    ``attribute_selection`` / ``detection`` / ``conflicts`` are ``None``
    only for runs that fused directly on natural keys (``FUSE BY (key)``)
    and therefore skipped duplicate detection.
    """

    sources: List[Relation]
    matching: Optional[MultiMatchingResult]
    transformed: Relation
    attribute_selection: Optional[AttributeSelection]
    detection: Optional[DuplicateDetectionResult]
    conflicts: Optional[ConflictReport]
    fusion: FusionResult
    timings: PipelineTimings
    #: Prepared-artifact report of this run (``None`` for unprepared runs):
    #: the participating aliases plus how many artifacts were reused vs
    #: rebuilt, per kind — see :meth:`PreparedSources.report`.
    prepared: Optional[Dict[str, Any]] = None

    @property
    def relation(self) -> Relation:
        """The clean and consistent result set (step 6)."""
        return self.fusion.relation

    @property
    def correspondences(self) -> CorrespondenceSet:
        """The attribute correspondences used (empty when only one source)."""
        if self.matching is None:
            return CorrespondenceSet()
        return self.matching.correspondences

    def summary(self) -> Dict[str, Any]:
        """Compact run summary for logging and the experiment harness."""
        summary = {
            "sources": len(self.sources),
            "input_tuples": sum(len(source) for source in self.sources),
            "correspondences": len(self.correspondences),
            "output_tuples": len(self.fusion.relation),
            "seconds": self.timings.total,
        }
        if self.detection is not None:
            summary["clusters"] = self.detection.cluster_count
            summary["duplicate_pairs"] = len(self.detection.duplicate_pairs)
            summary["candidate_pairs"] = self.detection.filter_statistics.blocking_candidates
            summary["compared_pairs"] = self.detection.filter_statistics.compared
            plan = self.detection.filter_statistics.blocking_plan
            if plan is not None:
                summary["blocking_plan"] = plan.get("strategy")
            report = self.detection.clustering_report
            if report is not None:
                summary["clustering"] = report.strategy
                summary["largest_cluster"] = report.largest_cluster
                summary["chains_split"] = report.chains_split
        if self.conflicts is not None:
            summary["contradictions"] = self.conflicts.contradiction_count
            summary["uncertainties"] = self.conflicts.uncertainty_count
        if self.prepared is not None:
            summary["artifacts_reused"] = self.prepared.get("reused", 0)
            summary["artifacts_rebuilt"] = self.prepared.get("rebuilt", 0)
            # Matching-phase artifacts broken out, so warm matching is as
            # observable as warm dedup: seeding statistics + field corpora.
            reused_by_kind = self.prepared.get("reused_by_kind", {})
            rebuilt_by_kind = self.prepared.get("rebuilt_by_kind", {})
            summary["match_artifacts_reused"] = sum(
                reused_by_kind.get(kind, 0) for kind in MATCH_ARTIFACT_KINDS
            )
            summary["match_artifacts_rebuilt"] = sum(
                rebuilt_by_kind.get(kind, 0) for kind in MATCH_ARTIFACT_KINDS
            )
        return summary


class FusionPipeline:
    """Automatic (and optionally interactive) data-fusion pipeline.

    The pipeline is now a thin layer over one
    :class:`~repro.core.session.FusionSession` per run: :meth:`run` builds a
    session and advances it to completion, :meth:`session` hands the session
    out for step-by-step (adjust-then-continue) use, and the ``step_*``
    methods remain the underlying per-step primitives.

    Args:
        catalog: metadata repository holding the registered sources.
        config: a :class:`repro.config.FusionConfig` describing matcher,
            detector and preparation declaratively.  Explicit *matcher* /
            *detector* / *prepare* objects override the corresponding
            config sections (object injection for advanced use).
        matcher: pairwise schema matcher (default: from config / DUMAS).
        detector: duplicate detector (default: from config).
        registry: resolution-function registry (default: all built-ins).
        use_name_fallback: when instance-based matching finds nothing for a
            relation, fall back to label-based matching instead of failing
            (``None`` → from config, default ``True``).
        prepare: per-source artifact preparation (see :mod:`repro.prepare`) —
            ``True`` builds a :class:`SourcePreparer` against the catalog's
            artifact store (token parameters mirrored from the detector's
            blocking strategy, seeding sample limit from the matcher), a
            ready :class:`SourcePreparer` is used as-is, ``None``/``False``
            disables preparation.  ``None`` with a config whose
            ``prepare.mode`` is set builds a preparer from the config.

    Mid-run adjustment lives on the session (adjust-then-continue):
    :meth:`session`, then mutate ``session.matching`` / ``session.selection``
    / ``session.detection`` between
    :meth:`~repro.core.session.FusionSession.advance` calls.
    """

    def __init__(
        self,
        catalog: Catalog,
        matcher: Optional[DumasMatcher] = None,
        detector: Optional[DuplicateDetector] = None,
        registry: Optional[ResolutionRegistry] = None,
        use_name_fallback: Optional[bool] = None,
        prepare: Union[bool, SourcePreparer, None] = None,
        config=None,
    ):
        self.catalog = catalog
        self.config = config
        if config is not None:
            matcher = matcher or config.matching.build_matcher()
            detector = detector or config.dedup.build_detector()
            if use_name_fallback is None:
                use_name_fallback = config.matching.use_name_fallback
            if prepare is None and config.prepare.mode is not None:
                prepare = True
            # The artifact store lives on the caller-supplied catalog, so a
            # config artifact_dir the catalog does not match would be
            # silently ignored — fail loudly instead of dropping the field.
            if config.prepare.artifact_dir is not None:
                if catalog.artifacts.directory != Path(config.prepare.artifact_dir):
                    raise ConfigError(
                        "config.prepare.artifact_dir "
                        f"({config.prepare.artifact_dir!r}) does not match the "
                        "catalog's artifact directory "
                        f"({str(catalog.artifacts.directory)!r}); construct the "
                        "catalog with Catalog(artifact_dir=...) — "
                        "HumMer(config=...) does this automatically"
                    )
        self.matcher = matcher or DumasMatcher()
        self.detector = detector or DuplicateDetector()
        self.registry = registry or default_registry()
        self.use_name_fallback = True if use_name_fallback is None else use_name_fallback
        if isinstance(prepare, SourcePreparer):
            self.preparer: Optional[SourcePreparer] = prepare
        elif prepare:
            self.preparer = SourcePreparer(
                catalog,
                token_strategy=token_strategy_for(self.detector.blocking),
                seed_sample_limit=self.matcher.seeder.max_tuples_per_relation,
            )
        else:
            self.preparer = None

    # -- individual steps ---------------------------------------------------------

    def step_choose_sources(self, aliases: Sequence[str]) -> List[Relation]:
        """Step 1: fetch the relational form of every alias."""
        if not aliases:
            raise HummerError("a fusion query needs at least one source alias")
        return self.catalog.fetch_many(aliases)

    def step_prepare(self, aliases: Sequence[str]) -> Optional[PreparedSources]:
        """Step 1b: build/validate the per-source artifacts (prepared runs only)."""
        if self.preparer is None:
            return None
        return self.preparer.prepare(aliases)

    def step_schema_matching(
        self,
        sources: List[Relation],
        prepared: Optional[PreparedSources] = None,
    ) -> Optional[MultiMatchingResult]:
        """Step 2: instance-based schema matching over all sources.

        With *prepared* artifacts, seed discovery reads each source's stored
        TF-IDF statistics, the SoftTFIDF field corpus is merged from stored
        per-source document frequencies, and only the cross-source merges
        and pair scoring run per query.
        """
        if len(sources) < 2:
            return None
        fallback = NameBasedMatcher() if self.use_name_fallback else None
        multi = MultiMatcher(self.matcher, fallback=fallback)
        if prepared is not None:
            with prepared.seeding(self.matcher.seeder), prepared.matching(self.matcher):
                result = multi.match(sources)
        else:
            result = multi.match(sources)
        return result

    def step_transform(
        self, sources: List[Relation], matching: Optional[MultiMatchingResult]
    ) -> Relation:
        """Step 2b: rename, add sourceID and outer-union the sources."""
        correspondences = matching.correspondences if matching else CorrespondenceSet()
        return transform_sources(sources, correspondences)

    def step_attribute_selection(self, transformed: Relation) -> AttributeSelection:
        """Step 3: heuristics select the attributes for duplicate detection."""
        return select_interesting_attributes(transformed)

    def step_duplicate_detection(
        self,
        transformed: Relation,
        selection: AttributeSelection,
        prepared_view: Optional[PreparedQueryView] = None,
        progress_callback: Optional[Callable[[str, int, int], None]] = None,
    ) -> DuplicateDetectionResult:
        """Steps 3+4: detect duplicates, then let the caller confirm unsure pairs.

        With a *prepared_view*, token indexes and planner profiles are merged
        from the per-source artifacts instead of being rebuilt from cell
        values (providers are installed on the blocking strategy only for
        the duration of this step).

        *progress_callback* is invoked by the scoring executor as candidate
        batches complete — ``("pairs_scored", done, total)``, cumulative over
        the run — mirroring the fusion operator's group-at-a-time stream.
        """
        # with_overrides carries every detector field over automatically, so
        # a newly added knob can no longer be silently dropped here.
        detector = self.detector.with_overrides(selection=selection)
        detector.progress_callback = progress_callback
        if prepared_view is not None:
            with prepared_view.blocking(detector.blocking):
                result = detector.detect(transformed)
        else:
            result = detector.detect(transformed)
        return result

    def step_conflicts(self, detection: DuplicateDetectionResult) -> ConflictReport:
        """Step 5a: sample the conflicts among detected duplicates."""
        return find_conflicts(detection.relation)

    def step_fusion(
        self,
        detection: DuplicateDetectionResult,
        spec: Optional[FusionSpec] = None,
        metadata: Optional[Dict[str, Any]] = None,
        progress_callback: Optional[Callable[[str, int, int], None]] = None,
    ) -> FusionResult:
        """Steps 5b+6: fuse each cluster into one tuple under the given spec.

        *progress_callback* is forwarded to the operator's group-at-a-time
        stream (``("groups_resolved", done, total)`` per fused cluster).
        """
        fusion_spec = spec or FusionSpec(key_columns=[OBJECT_ID_COLUMN])
        operator = FusionOperator(
            fusion_spec,
            registry=self.registry,
            table_name="fused",
            metadata=metadata,
        )
        operator.progress_callback = progress_callback
        return operator.fuse(detection.relation)

    # -- the automatic end-to-end run -----------------------------------------------

    def session(
        self,
        aliases: Sequence[str],
        spec: Optional[FusionSpec] = None,
        metadata: Optional[Dict[str, Any]] = None,
        skip_detection: bool = False,
        skip_conflicts: bool = False,
        transform_filter=None,
    ):
        """A single-use :class:`~repro.core.session.FusionSession` over *aliases*.

        The session exposes the wizard steps one
        :meth:`~repro.core.session.FusionSession.advance` at a time, with
        adjust-then-continue in between and subscribe-able
        :class:`~repro.core.session.StageEvent` progress.
        """
        from repro.core.session import FusionSession

        return FusionSession(
            self,
            aliases,
            spec=spec,
            metadata=metadata,
            skip_detection=skip_detection,
            skip_conflicts=skip_conflicts,
            transform_filter=transform_filter,
        )

    def run(
        self,
        aliases: Sequence[str],
        spec: Optional[FusionSpec] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> PipelineResult:
        """Run all six steps automatically and return every intermediate artefact.

        Equivalent to advancing a fresh :meth:`session` to completion — the
        two spellings execute the same code path and produce bit-identical
        results.
        """
        return self.session(aliases, spec=spec, metadata=metadata).run()
