"""Metadata-driven resolution functions: Choose(source) and Most Recent.

These are the functions that genuinely need the *query context* beyond the
conflicting values — the source of each tuple, or another attribute of the
corresponding tuples (a timestamp for recency).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.resolution.base import ResolutionContext, ResolutionFunction
from repro.engine.types import DataType, coerce, is_null
from repro.exceptions import ResolutionError, TypeCoercionError

__all__ = ["Choose", "MostRecent", "ChooseSourceOrder"]


class Choose(ResolutionFunction):
    """Returns the value supplied by the specific source.

    ``RESOLVE(price, choose('cheap_store'))`` — the CD-shopping scenario's
    "favoring the data of the cheapest store".  Falls back to the first
    non-null value when the preferred source did not supply one (configurable
    with ``strict=True`` to return null instead).
    """

    name = "choose"

    def __init__(self, source: str, strict: bool = False):
        if not source:
            raise ResolutionError("choose() needs a source alias")
        self.source = source
        self.strict = strict

    def resolve(self, context: ResolutionContext) -> Any:
        for value, source in zip(context.values, context.sources):
            if source == self.source and not is_null(value):
                return value
        if self.strict:
            return None
        for value in context.values:
            if not is_null(value):
                return value
        return None


class ChooseSourceOrder(ResolutionFunction):
    """Returns the value from the highest-priority source in a preference list."""

    name = "choose_source_order"

    def __init__(self, *sources: str):
        if not sources:
            raise ResolutionError("choose_source_order() needs at least one source alias")
        self.sources = list(sources)

    def resolve(self, context: ResolutionContext) -> Any:
        for preferred in self.sources:
            for value, source in zip(context.values, context.sources):
                if source == preferred and not is_null(value):
                    return value
        for value in context.values:
            if not is_null(value):
                return value
        return None


class MostRecent(ResolutionFunction):
    """Recency is evaluated with the help of another attribute or other metadata.

    ``RESOLVE(status, most_recent('last_updated'))`` returns the value of the
    tuple whose *recency_column* is largest (dates are coerced; tuples without
    a usable recency value are considered oldest).
    """

    name = "most_recent"

    def __init__(self, recency_column: Optional[str] = None):
        self.recency_column = recency_column

    def resolve(self, context: ResolutionContext) -> Any:
        recency_column = self.recency_column or context.metadata.get("recency_column")
        if not recency_column:
            raise ResolutionError(
                "most_recent needs a recency column, e.g. RESOLVE(status, most_recent('updated'))"
            )
        best_value: Any = None
        best_recency = None
        for value, row in zip(context.values, context.rows):
            if is_null(value):
                continue
            recency_raw = row.get(recency_column)
            recency = self._as_sortable(recency_raw)
            if recency is None:
                continue
            if best_recency is None or recency > best_recency:
                best_recency = recency
                best_value = value
        if best_value is not None:
            return best_value
        # no tuple had a usable recency value: fall back to coalesce
        for value in context.values:
            if not is_null(value):
                return value
        return None

    @staticmethod
    def _as_sortable(value: Any):
        if is_null(value):
            return None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        try:
            coerced = coerce(value, DataType.DATE)
        except TypeCoercionError:
            return None
        import datetime as _dt

        if isinstance(coerced, _dt.datetime):
            return coerced.timestamp()
        if isinstance(coerced, _dt.date):
            return _dt.datetime(coerced.year, coerced.month, coerced.day).timestamp()
        return None
