"""Content-based resolution functions: Vote, Group, Concat, Shortest, Longest.

These cover the paper's list of strategies that look only at the conflicting
values themselves (plus, for the annotated variant, the source metadata).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List

from repro.core.resolution.base import ResolutionContext, ResolutionFunction
from repro.engine.types import is_null

__all__ = ["Vote", "Group", "Concat", "AnnotatedConcat", "Shortest", "Longest"]


class Vote(ResolutionFunction):
    """Returns the value that appears most often among the present values.

    Ties are broken deterministically in favour of the value that appears
    first (the paper notes ties "could be broken by a variety of strategies,
    e.g., choosing randomly"; a deterministic rule keeps query results
    reproducible).
    """

    name = "vote"

    def resolve(self, context: ResolutionContext) -> Any:
        values = context.non_null_values
        if not values:
            return None
        counts: Counter = Counter()
        first_position = {}
        for position, value in enumerate(values):
            key = ResolutionContext._value_key(value)
            counts[key] += 1
            first_position.setdefault(key, (position, value))
        best_key = max(counts, key=lambda key: (counts[key], -first_position[key][0]))
        return first_position[best_key][1]


class Group(ResolutionFunction):
    """Returns a set of all conflicting values and leaves resolution to the user.

    The "set" is materialised as a sorted tuple of the distinct values so the
    result is hashable, printable and deterministic.
    """

    name = "group"

    def resolve(self, context: ResolutionContext) -> Any:
        distinct = context.distinct_values
        if not distinct:
            return None
        if len(distinct) == 1:
            return distinct[0]
        return tuple(sorted(distinct, key=str))


class Concat(ResolutionFunction):
    """Returns the concatenated distinct values."""

    name = "concat"

    def __init__(self, separator: str = ", "):
        self.separator = separator

    def resolve(self, context: ResolutionContext) -> Any:
        distinct = context.distinct_values
        if not distinct:
            return None
        if len(distinct) == 1:
            return distinct[0]
        return self.separator.join(str(value) for value in distinct)


class AnnotatedConcat(ResolutionFunction):
    """Returns the concatenated values annotated with the data source of each.

    Example result: ``"9.99 [cd_planet], 10.49 [discount_cds]"``.
    """

    name = "annotated_concat"

    def __init__(self, separator: str = ", "):
        self.separator = separator

    def resolve(self, context: ResolutionContext) -> Any:
        parts: List[str] = []
        seen = set()
        for value, source in zip(context.values, context.sources):
            if is_null(value):
                continue
            label = source if source is not None else "?"
            rendered = f"{value} [{label}]"
            if rendered in seen:
                continue
            seen.add(rendered)
            parts.append(rendered)
        if not parts:
            return None
        return self.separator.join(parts)


class Shortest(ResolutionFunction):
    """Chooses the value of minimum length according to a length measure (string length)."""

    name = "shortest"

    def resolve(self, context: ResolutionContext) -> Any:
        values = context.non_null_values
        if not values:
            return None
        return min(values, key=lambda value: (len(str(value)), str(value)))


class Longest(ResolutionFunction):
    """Chooses the value of maximum length according to a length measure (string length)."""

    name = "longest"

    def resolve(self, context: ResolutionContext) -> Any:
        values = context.non_null_values
        if not values:
            return None
        return max(values, key=lambda value: (len(str(value)), str(value)))
