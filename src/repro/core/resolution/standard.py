"""Positional and null-handling resolution functions.

Implements the paper's Coalesce (the Fuse By default), First and Last.
"""

from __future__ import annotations

from typing import Any

from repro.core.resolution.base import ResolutionContext, ResolutionFunction
from repro.engine.types import is_null

__all__ = ["Coalesce", "First", "Last"]


class Coalesce(ResolutionFunction):
    """Takes the first non-null value appearing (the Fuse By default function)."""

    name = "coalesce"

    def resolve(self, context: ResolutionContext) -> Any:
        for value in context.values:
            if not is_null(value):
                return value
        return None


class First(ResolutionFunction):
    """Takes the first value of all values, even if it is a null value."""

    name = "first"

    def resolve(self, context: ResolutionContext) -> Any:
        return context.values[0] if context.values else None


class Last(ResolutionFunction):
    """Takes the last value of all values, even if it is a null value."""

    name = "last"

    def resolve(self, context: ResolutionContext) -> Any:
        return context.values[-1] if context.values else None
