"""Numeric resolution strategies beyond the standard SQL aggregates.

The paper states that HumMer is extensible and new functions can be added;
these are the numeric strategies repeatedly mentioned in the conflict
resolution literature the paper points to (taking an average excluding
outliers, preferring the most precise value, ...).
"""

from __future__ import annotations

from typing import Any, List

from repro.core.resolution.base import ResolutionContext, ResolutionFunction

__all__ = ["TrimmedMean", "MostPrecise", "Midrange"]


def _numeric_values(context: ResolutionContext) -> List[float]:
    values = []
    for value in context.non_null_values:
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            values.append(float(value))
        else:
            try:
                values.append(float(str(value)))
            except ValueError:
                continue
    return values


class TrimmedMean(ResolutionFunction):
    """Average of the values after dropping the smallest and largest (when ≥ 3 values)."""

    name = "trimmed_mean"

    def resolve(self, context: ResolutionContext) -> Any:
        values = _numeric_values(context)
        if not values:
            return None
        if len(values) < 3:
            return sum(values) / len(values)
        trimmed = sorted(values)[1:-1]
        return sum(trimmed) / len(trimmed)


class Midrange(ResolutionFunction):
    """Midpoint between the smallest and largest value."""

    name = "midrange"

    def resolve(self, context: ResolutionContext) -> Any:
        values = _numeric_values(context)
        if not values:
            return None
        return (min(values) + max(values)) / 2.0


class MostPrecise(ResolutionFunction):
    """Chooses the value with the most decimal places (assumed most accurate)."""

    name = "most_precise"

    def resolve(self, context: ResolutionContext) -> Any:
        best_value = None
        best_precision = -1
        for value in context.non_null_values:
            precision = self._precision(value)
            if precision > best_precision:
                best_precision = precision
                best_value = value
        return best_value

    @staticmethod
    def _precision(value: Any) -> int:
        text = str(value)
        if "." not in text:
            return 0
        return len(text.split(".", 1)[1].rstrip("0"))
