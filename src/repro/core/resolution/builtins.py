"""Assembly of the default resolution-function registry.

Covers every function the paper lists in §2.4 — Choose(source), Coalesce,
First/Last, Vote, Group, (Annotated) Concat, Shortest/Longest, Most Recent —
plus the standard SQL aggregates (min, max, sum, avg, count, ...) and a few
numeric extensions, all under one extensible registry.
"""

from __future__ import annotations

from repro.core.resolution.base import ResolutionRegistry
from repro.core.resolution.content import (
    AnnotatedConcat,
    Concat,
    Group,
    Longest,
    Shortest,
    Vote,
)
from repro.core.resolution.metadata_based import Choose, ChooseSourceOrder, MostRecent
from repro.core.resolution.numeric import Midrange, MostPrecise, TrimmedMean
from repro.core.resolution.standard import Coalesce, First, Last
from repro.engine.operators.aggregates import AGGREGATE_FUNCTIONS

__all__ = ["build_default_registry"]


def build_default_registry() -> ResolutionRegistry:
    """Build a registry holding every built-in resolution function."""
    registry = ResolutionRegistry()

    # Paper §2.4 functions.
    registry.register(Coalesce())
    registry.register(First())
    registry.register(Last())
    registry.register(Vote())
    registry.register(Group())
    registry.register(Concat())
    registry.register(AnnotatedConcat())
    registry.register(Shortest())
    registry.register(Longest())
    registry.register_factory("choose", lambda source, strict=False: Choose(source, strict))
    registry.register_factory("choose_source_order", ChooseSourceOrder)
    registry.register_factory("most_recent", MostRecent)
    # most_recent can also run without arguments if the pipeline supplies the
    # recency column via context metadata.
    registry.register(MostRecent(), replace=False)

    # Standard SQL aggregates usable as resolution functions (paper: "In
    # addition to the standard aggregation functions already available in SQL").
    for name in ("min", "max", "sum", "avg", "median", "count", "stddev", "variance"):
        registry.register_callable(
            name,
            AGGREGATE_FUNCTIONS[name],
            doc=f"Standard SQL aggregate {name.upper()} over the non-null conflicting values.",
        )

    # Numeric extensions (HumMer is extensible; new functions can be added).
    registry.register(TrimmedMean())
    registry.register(Midrange())
    registry.register(MostPrecise())
    return registry
