"""Conflict-resolution functions (paper §2.4).

The registry exposes every strategy the paper lists plus the standard SQL
aggregates; new strategies are added by registering a
:class:`ResolutionFunction` subclass or a plain callable.
"""

from repro.core.resolution.base import (
    FunctionResolution,
    ResolutionContext,
    ResolutionFunction,
    ResolutionRegistry,
    default_registry,
)
from repro.core.resolution.builtins import build_default_registry
from repro.core.resolution.content import (
    AnnotatedConcat,
    Concat,
    Group,
    Longest,
    Shortest,
    Vote,
)
from repro.core.resolution.metadata_based import Choose, ChooseSourceOrder, MostRecent
from repro.core.resolution.numeric import Midrange, MostPrecise, TrimmedMean
from repro.core.resolution.standard import Coalesce, First, Last

__all__ = [
    "ResolutionContext",
    "ResolutionFunction",
    "FunctionResolution",
    "ResolutionRegistry",
    "default_registry",
    "build_default_registry",
    "Coalesce",
    "First",
    "Last",
    "Vote",
    "Group",
    "Concat",
    "AnnotatedConcat",
    "Shortest",
    "Longest",
    "Choose",
    "ChooseSourceOrder",
    "MostRecent",
    "TrimmedMean",
    "Midrange",
    "MostPrecise",
]
