"""Conflict-resolution function framework.

Paper §2.4: "Conflict resolution is implemented as user defined aggregation.
However, the concept of conflict resolution is more general than the concept
of aggregation, because it uses the entire query context to resolve
conflicts.  The query context consists not only of the conflicting values
themselves, but also of the corresponding tuples, all the remaining column
values, and other metadata, such as column name or table name."

:class:`ResolutionContext` is that query context; :class:`ResolutionFunction`
is the user-defined-aggregation interface; :class:`ResolutionRegistry` makes
HumMer extensible ("new functions can be added").
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.engine.relation import Row
from repro.engine.types import is_null
from repro.exceptions import ResolutionError, UnknownResolutionFunctionError

__all__ = [
    "ResolutionContext",
    "ResolutionFunction",
    "FunctionResolution",
    "ResolutionRegistry",
    "default_registry",
]


class ResolutionContext:
    """Everything a resolution function may consult while resolving one column
    of one object cluster.

    ``rows`` and ``sources`` may be passed as plain lists or as zero-argument
    callables; a callable is invoked (once, then cached) on first access.
    Most functions — Coalesce above all, the Fuse By default — only ever read
    ``values``, so the fusion operator hands in factories and the wrapper
    :class:`~repro.engine.relation.Row` objects (and per-source strings) are
    simply never built for them.

    Attributes:
        column: name of the column being resolved.
        values: the (possibly conflicting) values of that column, one per
            tuple of the cluster, in cluster order — including nulls.
        rows: the full tuples of the cluster (same order as *values*).
        sources: value of the ``sourceID`` column per tuple (or ``None``).
        object_id: the cluster's objectID.
        table_name: name of the fused input table.
        metadata: free-form extras (e.g. the attribute used for recency).
    """

    def __init__(
        self,
        column: str,
        values: List[Any],
        rows: Union[List[Row], Callable[[], List[Row]], None] = None,
        sources: Union[List[Optional[str]], Callable[[], List[Optional[str]]], None] = None,
        object_id: Any = None,
        table_name: str = "",
        metadata: Optional[Dict[str, Any]] = None,
    ):
        self.column = column
        self.values = values
        self._rows = rows if rows is not None else []
        self._sources = sources if sources is not None else []
        self.object_id = object_id
        self.table_name = table_name
        self.metadata = metadata if metadata is not None else {}

    @property
    def rows(self) -> List[Row]:
        """The full tuples of the cluster (materialised on first access)."""
        if callable(self._rows):
            self._rows = self._rows()
        return self._rows

    @rows.setter
    def rows(self, rows: Union[List[Row], Callable[[], List[Row]]]) -> None:
        self._rows = rows

    @property
    def sources(self) -> List[Optional[str]]:
        """Per-tuple source names (materialised on first access)."""
        if callable(self._sources):
            self._sources = self._sources()
        return self._sources

    @sources.setter
    def sources(self, sources) -> None:
        self._sources = sources

    def __repr__(self) -> str:
        return (
            f"ResolutionContext(column={self.column!r}, values={self.values!r}, "
            f"object_id={self.object_id!r})"
        )

    @property
    def non_null_values(self) -> List[Any]:
        """The values that are actually present."""
        return [value for value in self.values if not is_null(value)]

    @property
    def distinct_values(self) -> List[Any]:
        """Distinct non-null values, first-seen order (the *conflicting* values)."""
        seen = set()
        distinct = []
        for value in self.non_null_values:
            key = self._value_key(value)
            if key not in seen:
                seen.add(key)
                distinct.append(value)
        return distinct

    @property
    def has_conflict(self) -> bool:
        """True if at least two distinct non-null values are present (contradiction)."""
        return len(self.distinct_values) > 1

    @property
    def is_uncertain(self) -> bool:
        """True if exactly one distinct value is present but some tuples miss it."""
        return len(self.distinct_values) == 1 and any(is_null(v) for v in self.values)

    def value_for_source(self, source: str) -> Any:
        """The column value contributed by *source* (first match), or ``None``."""
        for value, value_source in zip(self.values, self.sources):
            if value_source == source:
                return value
        return None

    @staticmethod
    def _value_key(value: Any):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return ("num", float(value))
        return (type(value).__name__, str(value))


class ResolutionFunction(abc.ABC):
    """A conflict-resolution strategy applied per column, per object cluster."""

    #: Registry name; subclasses must set it.
    name: str = ""

    @abc.abstractmethod
    def resolve(self, context: ResolutionContext) -> Any:
        """Produce the single resolved value for *context*."""

    def __call__(self, context: ResolutionContext) -> Any:
        return self.resolve(context)

    def describe(self) -> str:
        """One-line description used in documentation and the CLI."""
        return (self.__doc__ or self.name or type(self).__name__).strip().splitlines()[0]


class FunctionResolution(ResolutionFunction):
    """Adapter turning a plain callable over a value list into a resolution function.

    This is how the standard SQL aggregates (min, max, sum, avg, ...) are made
    available as resolution functions, matching the paper's "in addition to
    the standard aggregation functions already available in SQL".
    """

    def __init__(self, name: str, function: Callable[[Sequence[Any]], Any], doc: str = ""):
        self.name = name
        self._function = function
        self.__doc__ = doc or f"Standard aggregate {name!r} applied to the non-null values."

    def resolve(self, context: ResolutionContext) -> Any:
        return self._function(context.values)


class ResolutionRegistry:
    """Name → resolution function registry.

    Functions may be registered as instances, classes or plain callables; the
    registry also supports *parameterised* lookups such as ``choose`` which
    need arguments from the query (``RESOLVE(price, choose('cheap_store'))``).
    """

    def __init__(self) -> None:
        self._functions: Dict[str, ResolutionFunction] = {}
        self._factories: Dict[str, Callable[..., ResolutionFunction]] = {}

    def register(self, function: ResolutionFunction, replace: bool = False) -> None:
        """Register a ready-to-use resolution function under its ``name``."""
        key = function.name.lower()
        if not key:
            raise ResolutionError("resolution function must define a non-empty name")
        if key in self._functions and not replace:
            raise ResolutionError(f"resolution function {function.name!r} already registered")
        self._functions[key] = function

    def register_factory(
        self, name: str, factory: Callable[..., ResolutionFunction], replace: bool = False
    ) -> None:
        """Register a factory for parameterised functions (e.g. ``choose(source)``)."""
        key = name.lower()
        if key in self._factories and not replace:
            raise ResolutionError(f"resolution factory {name!r} already registered")
        self._factories[key] = factory

    def register_callable(
        self, name: str, function: Callable[[Sequence[Any]], Any], doc: str = ""
    ) -> None:
        """Register a plain list-of-values callable as a resolution function."""
        self.register(FunctionResolution(name, function, doc))

    def get(self, name: str, *arguments: Any) -> ResolutionFunction:
        """Look up a function by name, instantiating a factory when arguments are given."""
        key = name.lower()
        if arguments or (key in self._factories and key not in self._functions):
            factory = self._factories.get(key)
            if factory is None:
                raise UnknownResolutionFunctionError(name, tuple(self.names()))
            return factory(*arguments)
        try:
            return self._functions[key]
        except KeyError:
            raise UnknownResolutionFunctionError(name, tuple(self.names())) from None

    def has(self, name: str) -> bool:
        """Whether *name* is registered (as function or factory)."""
        key = name.lower()
        return key in self._functions or key in self._factories

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(set(self._functions) | set(self._factories))

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(set(self._functions) | set(self._factories))


_DEFAULT_REGISTRY: Optional[ResolutionRegistry] = None


def default_registry() -> ResolutionRegistry:
    """The process-wide default registry, populated with every built-in function."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        from repro.core.resolution.builtins import build_default_registry

        _DEFAULT_REGISTRY = build_default_registry()
    return _DEFAULT_REGISTRY
