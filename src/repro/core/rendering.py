"""Lineage-aware rendering of fused results.

"As an added feature, data values can be color-coded to represent their
individual lineage (one color per source relation, mixed colors for merged
values)." (paper §3)

:func:`render_with_lineage` is the terminal counterpart of that GUI feature:
each cell of the fused relation is coloured by the source that contributed
its value (ANSI colours), merged values get a distinct style, and a legend
maps colours back to sources.  :func:`annotate_with_lineage` produces a plain
text variant (``value [source]``) for environments without colour support.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.fusion import FusionResult
from repro.core.lineage import LineageMap
from repro.engine.relation import Relation
from repro.engine.types import is_null

__all__ = ["SOURCE_COLORS", "render_with_lineage", "annotate_with_lineage"]

#: ANSI foreground colours cycled over the sources, in registration order.
SOURCE_COLORS = ["36", "33", "32", "35", "34", "31", "96", "93", "92", "95"]

_RESET = "\x1b[0m"
_MERGED_STYLE = "1;4"  # bold underline marks values merged from several sources


def _color_for(source: str, palette: Dict[str, str]) -> str:
    if source not in palette:
        palette[source] = SOURCE_COLORS[len(palette) % len(SOURCE_COLORS)]
    return palette[source]


def _cell_lineage(lineage: LineageMap, relation: Relation, row, column: str):
    key_column = "objectID" if relation.schema.has_column("objectID") else None
    object_id = row[key_column] if key_column else None
    if object_id is None:
        # fall back to the first key-like column value
        object_id = row[relation.schema.names[0]]
    return lineage.lookup(object_id, column)


def render_with_lineage(
    result: FusionResult,
    limit: int = 20,
    use_color: bool = True,
) -> str:
    """Render the fused relation with per-cell provenance colouring.

    Args:
        result: the fusion result (relation + lineage).
        limit: maximum number of rows to render.
        use_color: disable to fall back to the plain ``value [source]`` form.
    """
    if not use_color:
        return annotate_with_lineage(result, limit=limit)
    relation = result.relation
    palette: Dict[str, str] = {}
    lines: List[str] = []
    names = list(relation.schema.names)
    lines.append(" | ".join(names))
    for row in list(relation)[:limit]:
        cells = []
        for column in names:
            value = row[column]
            text = "" if is_null(value) else str(value)
            lineage = _cell_lineage(result.lineage, relation, row, column)
            if lineage is None or not lineage.sources:
                cells.append(text)
            elif lineage.merged:
                cells.append(f"\x1b[{_MERGED_STYLE}m{text}{_RESET}")
            else:
                color = _color_for(lineage.single_source, palette)
                cells.append(f"\x1b[{color}m{text}{_RESET}")
        lines.append(" | ".join(cells))
    if len(relation) > limit:
        lines.append(f"... ({len(relation) - limit} more rows)")
    legend = ", ".join(
        f"\x1b[{color}m{source}{_RESET}" for source, color in palette.items()
    )
    if legend:
        lines.append(f"legend: {legend}; merged values are bold/underlined")
    return "\n".join(lines)


def annotate_with_lineage(result: FusionResult, limit: int = 20) -> str:
    """Plain-text lineage rendering: every sourced cell becomes ``value [source,...]``."""
    relation = result.relation
    names = list(relation.schema.names)
    lines = [" | ".join(names)]
    for row in list(relation)[:limit]:
        cells = []
        for column in names:
            value = row[column]
            text = "" if is_null(value) else str(value)
            lineage = _cell_lineage(result.lineage, relation, row, column)
            if lineage is not None and lineage.sources:
                text = f"{text} [{','.join(sorted(lineage.sources))}]"
            cells.append(text)
        lines.append(" | ".join(cells))
    if len(relation) > limit:
        lines.append(f"... ({len(relation) - limit} more rows)")
    return "\n".join(lines)
