"""The data-fusion operator: group by objectID and resolve every column.

This is the final HumMer phase (paper §2.4 / §3): "tuples with same objectID
are fused into a single tuple and conflicts among them are resolved according
to the query specification."

:class:`FusionSpec` captures the query specification (which columns to
output, which resolution function per column, the default Coalesce
behaviour); :class:`FusionOperator` executes it and optionally records
value-level lineage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.lineage import CellLineage, LineageMap, trace_cell_lineage
from repro.core.resolution.base import (
    ResolutionContext,
    ResolutionFunction,
    ResolutionRegistry,
    default_registry,
)
from repro.dedup.detector import OBJECT_ID_COLUMN
from repro.engine.operators.groupby import group_rows
from repro.engine.relation import Relation, Row
from repro.engine.schema import Column, Schema
from repro.engine.types import infer_column_type
from repro.exceptions import FusionError
from repro.matching.transform import SOURCE_ID_COLUMN

__all__ = [
    "ResolutionSpec",
    "FusionSpec",
    "FusedGroup",
    "FusionResult",
    "FusionOperator",
    "fuse",
]


def _once(factory):
    """A zero-argument callable that runs *factory* once and caches the result.

    Shared by every column context of one object cluster, so lazily
    materialised group structures are built at most once per group no matter
    how many columns read them.
    """
    cache: List[Any] = []

    def get():
        if not cache:
            cache.append(factory())
        return cache[0]

    return get


@dataclass
class ResolutionSpec:
    """Resolution request for one output column.

    ``function`` may be a registry name (``"max"``), a name plus arguments
    (``("choose", ["cd_planet"])`` for parameterised functions) or a ready
    :class:`ResolutionFunction` instance.  ``None`` means the Fuse By default
    (Coalesce).
    """

    column: str
    function: Union[None, str, Tuple[str, Sequence[Any]], ResolutionFunction] = None
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        return self.alias or self.column

    def instantiate(self, registry: ResolutionRegistry) -> ResolutionFunction:
        """Resolve the function reference against *registry*."""
        if self.function is None:
            return registry.get("coalesce")
        if isinstance(self.function, ResolutionFunction):
            return self.function
        if isinstance(self.function, str):
            return registry.get(self.function)
        name, arguments = self.function
        return registry.get(name, *arguments)


@dataclass
class FusionSpec:
    """The fusion part of a Fuse By query.

    Attributes:
        key_columns: the FUSE BY attributes (object identifier).  In the full
            pipeline this is the ``objectID`` column produced by duplicate
            detection; Fuse By also allows fusing directly on natural keys.
        resolutions: per-column resolution requests (SELECT items).  When
            empty, every column of the input (except bookkeeping columns) is
            output with the default Coalesce, i.e. ``SELECT *``.
        keep_source_column: include ``sourceID`` in the output (as a Group of
            contributing sources).
    """

    key_columns: List[str] = field(default_factory=lambda: [OBJECT_ID_COLUMN])
    resolutions: List[ResolutionSpec] = field(default_factory=list)
    keep_source_column: bool = False

    def output_columns(self, relation: Relation) -> List[ResolutionSpec]:
        """The effective SELECT list against *relation* (expanding the ``*`` default)."""
        if self.resolutions:
            return self.resolutions
        skip = {name.lower() for name in self.key_columns}
        skip.add(OBJECT_ID_COLUMN.lower())
        if not self.keep_source_column:
            skip.add(SOURCE_ID_COLUMN.lower())
        expanded = []
        for column in relation.schema:
            if column.name.lower() in skip:
                continue
            expanded.append(ResolutionSpec(column.name))
        return expanded


@dataclass
class FusedGroup:
    """One object cluster after conflict resolution, as yielded by the stream.

    Attributes:
        object_id: the group's object identifier (scalar for a single key
            column, tuple otherwise).
        row: the fused output tuple (key cells first, resolved cells after).
        resolved_conflicts: columns of this group whose values actually
            conflicted and were resolved.
        lineage: per output column, the value-level lineage record.
    """

    object_id: Any
    row: tuple
    resolved_conflicts: int
    lineage: List[CellLineage] = field(default_factory=list)


@dataclass
class FusionResult:
    """The fused relation plus lineage and statistics."""

    relation: Relation
    lineage: LineageMap
    input_tuple_count: int
    output_tuple_count: int
    resolved_conflict_count: int

    @property
    def compression_ratio(self) -> float:
        """Input tuples per output tuple (≥ 1; higher means more duplicates merged)."""
        if self.output_tuple_count == 0:
            return 1.0
        return self.input_tuple_count / self.output_tuple_count


class FusionOperator:
    """Fuses an objectID-annotated relation according to a :class:`FusionSpec`."""

    def __init__(
        self,
        spec: FusionSpec,
        registry: Optional[ResolutionRegistry] = None,
        table_name: str = "",
        metadata: Optional[Dict[str, Any]] = None,
    ):
        self.spec = spec
        self.registry = registry or default_registry()
        self.table_name = table_name
        self.metadata = dict(metadata or {})
        #: Optional intra-fusion progress hook ``(phase, done, total)``;
        #: called with phase ``"groups_resolved"`` after each object cluster
        #: is fused.  The session layer forwards these as
        #: :class:`~repro.core.session.ProgressEvent`\\ s.
        self.progress_callback: Optional[Callable[[str, int, int], None]] = None

    def _plan(self, relation: Relation):
        """Validate the spec against *relation*; resolve columns and functions."""
        for key in self.spec.key_columns:
            if not relation.schema.has_column(key):
                raise FusionError(
                    f"fusion key column {key!r} not present in the input relation; "
                    f"available: {', '.join(relation.schema.names)}"
                )
        output_specs = self.spec.output_columns(relation)
        functions = [spec.instantiate(self.registry) for spec in output_specs]
        input_positions = []
        for spec in output_specs:
            if not relation.schema.has_column(spec.column):
                raise FusionError(
                    f"cannot resolve unknown column {spec.column!r}; "
                    f"available: {', '.join(relation.schema.names)}"
                )
            input_positions.append(relation.schema.position(spec.column))
        return output_specs, functions, input_positions

    def fuse_stream(self, relation: Relation) -> Iterator[FusedGroup]:
        """Stream object clusters through conflict resolution one at a time.

        Validation happens up front (a spec error raises here, not at first
        ``next()``); the returned iterator then yields one
        :class:`FusedGroup` per cluster.  Only the grouping index — lists of
        references to *input* rows — is held; output rows, lineage records
        and the lazy per-group structures exist one group at a time, so a
        consumer that does not retain the yields runs in input-bounded
        memory no matter how large the materialised result would be.
        :meth:`fuse` is exactly this stream, collected.
        """
        output_specs, functions, input_positions = self._plan(relation)
        return self._resolve_groups(relation, output_specs, functions, input_positions)

    def _resolve_groups(
        self,
        relation: Relation,
        output_specs: List[ResolutionSpec],
        functions: List[ResolutionFunction],
        input_positions: List[int],
    ) -> Iterator[FusedGroup]:
        source_position = (
            relation.schema.position(SOURCE_ID_COLUMN)
            if relation.schema.has_column(SOURCE_ID_COLUMN)
            else None
        )
        groups = group_rows(relation, self.spec.key_columns)
        for done, (key_values, group) in enumerate(groups, start=1):
            object_id = key_values[0] if len(key_values) == 1 else tuple(key_values)
            # Row wrappers and per-source strings are built at most once per
            # group, and only if something actually reads them: resolution
            # functions receive them as lazy context fields, so a
            # Coalesce-only fusion never allocates a single Row.
            wrap_rows = _once(
                lambda group=group: [Row(relation.schema, values) for values in group]
            )
            group_sources = _once(
                lambda group=group: [
                    None
                    if source_position is None or values[source_position] is None
                    else str(values[source_position])
                    for values in group
                ]
            )
            cells = list(key_values)
            resolved_conflicts = 0
            lineage: List[CellLineage] = []
            for spec, function, position in zip(output_specs, functions, input_positions):
                values = [group_values[position] for group_values in group]
                context = ResolutionContext(
                    column=spec.column,
                    values=values,
                    rows=wrap_rows,
                    sources=group_sources,
                    object_id=object_id,
                    table_name=self.table_name,
                    metadata=self.metadata,
                )
                resolved = function.resolve(context)
                if context.has_conflict:
                    resolved_conflicts += 1
                cells.append(resolved)
                lineage.append(
                    trace_cell_lineage(
                        spec.output_name, object_id, resolved, values, context.sources
                    )
                )
            yield FusedGroup(
                object_id=object_id,
                row=tuple(cells),
                resolved_conflicts=resolved_conflicts,
                lineage=lineage,
            )
            if self.progress_callback is not None:
                self.progress_callback("groups_resolved", done, len(groups))

    def fuse(self, relation: Relation) -> FusionResult:
        """Produce one clean tuple per object cluster.

        Consumes :meth:`fuse_stream` — the streamed and the collected
        spelling resolve groups through the same code path and produce
        bit-identical rows, lineage and counters.
        """
        output_specs, functions, input_positions = self._plan(relation)
        lineage = LineageMap()
        rows: List[tuple] = []
        resolved_conflicts = 0
        for fused_group in self._resolve_groups(
            relation, output_specs, functions, input_positions
        ):
            rows.append(fused_group.row)
            resolved_conflicts += fused_group.resolved_conflicts
            for record in fused_group.lineage:
                lineage.record(record)

        key_schema_columns = [relation.schema.column(name) for name in self.spec.key_columns]
        value_columns = []
        for index, spec in enumerate(output_specs):
            values = (row[len(self.spec.key_columns) + index] for row in rows)
            value_columns.append(Column(spec.output_name, infer_column_type(values)))
        schema = Schema(key_schema_columns + value_columns)
        fused = Relation(schema, rows, name=self.table_name or "fused")
        return FusionResult(
            relation=fused,
            lineage=lineage,
            input_tuple_count=len(relation),
            output_tuple_count=len(fused),
            resolved_conflict_count=resolved_conflicts,
        )


def fuse(
    relation: Relation,
    key_columns: Sequence[str],
    resolutions: Optional[Dict[str, Union[str, Tuple[str, Sequence[Any]], ResolutionFunction]]] = None,
    registry: Optional[ResolutionRegistry] = None,
    keep_source_column: bool = False,
) -> FusionResult:
    """Convenience wrapper: fuse *relation* grouping by *key_columns*.

    ``resolutions`` maps column names to function references; unmentioned
    columns use the Coalesce default only when the mapping is empty —
    otherwise the output contains exactly the mapped columns plus the keys.
    To get "all columns, defaults except a few", pass every column explicitly
    or use :class:`FusionSpec` directly.
    """
    specs = [
        ResolutionSpec(column, function) for column, function in (resolutions or {}).items()
    ]
    spec = FusionSpec(
        key_columns=list(key_columns),
        resolutions=specs,
        keep_source_column=keep_source_column,
    )
    return FusionOperator(spec, registry=registry, table_name=relation.name).fuse(relation)
