"""Conflict detection and classification.

Before (or instead of) resolving, HumMer can show the user "sample conflicts"
(Fig. 2, step 5).  A *conflict* exists when the tuples of one object cluster
carry different values for the same attribute.  Following the data-fusion
literature the paper builds on, we distinguish

* **uncertainty** — one tuple has a value, others are null (a conflict
  between a value and nothing), and
* **contradiction** — at least two distinct non-null values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.relation import Relation
from repro.engine.types import is_null

__all__ = ["ConflictKind", "Conflict", "ConflictReport", "find_conflicts"]


class ConflictKind(enum.Enum):
    """How the values of one attribute within one cluster disagree."""

    NONE = "none"
    UNCERTAINTY = "uncertainty"
    CONTRADICTION = "contradiction"


@dataclass
class Conflict:
    """One attribute of one object cluster with disagreeing values."""

    object_id: Any
    column: str
    kind: ConflictKind
    values: List[Any]
    sources: List[Optional[str]] = field(default_factory=list)

    @property
    def distinct_values(self) -> List[Any]:
        """Distinct non-null values involved in the conflict."""
        seen = set()
        distinct = []
        for value in self.values:
            if is_null(value):
                continue
            key = (type(value).__name__, str(value))
            if key not in seen:
                seen.add(key)
                distinct.append(value)
        return distinct

    def __str__(self) -> str:
        rendered = ", ".join(str(v) for v in self.distinct_values)
        return f"{self.column}[object {self.object_id}]: {self.kind.value} ({rendered})"


@dataclass
class ConflictReport:
    """All conflicts of a fused input table, with summary statistics."""

    conflicts: List[Conflict] = field(default_factory=list)
    cluster_count: int = 0
    multi_tuple_cluster_count: int = 0

    @property
    def contradiction_count(self) -> int:
        """Number of contradictions (distinct non-null values disagree)."""
        return sum(1 for c in self.conflicts if c.kind is ConflictKind.CONTRADICTION)

    @property
    def uncertainty_count(self) -> int:
        """Number of uncertainties (value vs. null)."""
        return sum(1 for c in self.conflicts if c.kind is ConflictKind.UNCERTAINTY)

    def by_column(self) -> Dict[str, List[Conflict]]:
        """Conflicts grouped by attribute."""
        grouped: Dict[str, List[Conflict]] = {}
        for conflict in self.conflicts:
            grouped.setdefault(conflict.column, []).append(conflict)
        return grouped

    def sample(self, count: int = 10) -> List[Conflict]:
        """The first *count* contradictions (what the demo shows as "sample conflicts")."""
        contradictions = [c for c in self.conflicts if c.kind is ConflictKind.CONTRADICTION]
        return contradictions[:count]


def classify_values(values: Sequence[Any]) -> ConflictKind:
    """Classify the values of one attribute within one cluster."""
    non_null = [value for value in values if not is_null(value)]
    distinct = set()
    for value in non_null:
        distinct.add((type(value).__name__, str(value)))
    if len(distinct) > 1:
        return ConflictKind.CONTRADICTION
    if len(non_null) < len(values) and len(non_null) >= 1 and len(values) > 1:
        return ConflictKind.UNCERTAINTY
    return ConflictKind.NONE


def find_conflicts(
    relation: Relation,
    object_column: str = "objectID",
    source_column: str = "sourceID",
    ignore_columns: Sequence[str] = (),
) -> ConflictReport:
    """Find every conflict in a relation that already carries object ids."""
    from repro.engine.operators.groupby import group_rows

    ignored = {name.lower() for name in ignore_columns}
    ignored.add(object_column.lower())
    # provenance is bookkeeping, not data: differing sourceIDs are not a conflict
    ignored.add(source_column.lower())
    source_position = (
        relation.schema.position(source_column)
        if relation.schema.has_column(source_column)
        else None
    )
    report = ConflictReport()
    groups = group_rows(relation, [object_column])
    report.cluster_count = len(groups)
    for key_values, rows in groups:
        if len(rows) > 1:
            report.multi_tuple_cluster_count += 1
        else:
            continue
        object_id = key_values[0]
        sources = [
            None if source_position is None else row[source_position] for row in rows
        ]
        for position, column in enumerate(relation.schema):
            if column.name.lower() in ignored:
                continue
            values = [row[position] for row in rows]
            kind = classify_values(values)
            if kind is ConflictKind.NONE:
                continue
            report.conflicts.append(
                Conflict(
                    object_id=object_id,
                    column=column.name,
                    kind=kind,
                    values=values,
                    sources=sources,
                )
            )
    return report
