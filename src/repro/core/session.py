"""``repro.core.session`` — the HumMer wizard as an explicit state machine.

The paper's demo (Fig. 2) is a six-step *wizard*: the user inspects and
adjusts intermediate state between steps.  The library equivalent used to be
three mutation callbacks (``adjust_matching`` / ``adjust_selection`` /
``adjust_duplicates``) threaded through the pipeline constructor;
:class:`FusionSession` replaces them with *adjust-then-continue*: each
:meth:`~FusionSession.advance` call executes exactly one step, leaves its
artefact on the session (``session.matching``, ``session.selection``,
``session.detection``, …), and the caller mutates the artefact directly
before advancing again::

    session = hummer.session(["EE_Students", "CS_Students"])
    session.advance_to(FusionSession.SCHEMA_MATCHING)
    session.matching.correspondences.remove("Age", "Years")   # wizard step 2
    session.advance_to(FusionSession.DUPLICATE_DETECTION)
    session.detection.classified.confirm_all(True)            # wizard step 4
    session.apply_duplicate_decisions()
    result = session.run()                                    # steps 5 + 6

Progress on long runs is observable through subscribe-able
:class:`StageEvent`\\ s carrying per-step wall-clock seconds and payloads
(artifact reuse counters, the blocking plan report, classification counts).

A session run and :meth:`FusionPipeline.run` are the *same* code path —
``run()`` is now a thin loop over one session — so stepping manually and
running automatically produce bit-identical :class:`PipelineResult`\\ s.

Sessions survive process restarts: :meth:`FusionSession.to_dict` captures a
JSON-able snapshot (aliases, step cursor, per-step reports, duplicate
decisions, source content digests) and :meth:`FusionSession.from_dict`
rebuilds the session against a fresh pipeline by *replaying* the completed
steps — the pipeline is deterministic, so a resumed run is bit-identical to
an uninterrupted one (asserted in ``tests/core/test_session_snapshot.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.fusion import FusionOperator, FusionSpec, ResolutionSpec
from repro.core.pipeline import PipelineResult, PipelineTimings
from repro.core.resolution.base import ResolutionFunction
from repro.dedup.detector import OBJECT_ID_COLUMN
from repro.engine.relation import Relation
from repro.exceptions import HummerError

__all__ = ["SESSION_STEPS", "SNAPSHOT_VERSION", "StageEvent", "ProgressEvent", "FusionSession"]

#: Version tag written into (and required from) session snapshots.
SNAPSHOT_VERSION = 1

#: The wizard steps, in execution order.  ``prepare`` is the paper's step 1b
#: (a no-op for unprepared sessions); ``schema_matching`` covers steps 2+2b
#: once the transform runs at the start of ``attribute_selection``.
SESSION_STEPS = (
    "choose_sources",
    "prepare",
    "schema_matching",
    "attribute_selection",
    "duplicate_detection",
    "conflict_resolution",
    "fusion",
)

#: Terminal pseudo-step reported by :attr:`FusionSession.current_step`.
DONE = "done"


@dataclass(frozen=True)
class StageEvent:
    """One completed wizard step, for progress observation on long runs.

    Attributes:
        step: the completed step (one of :data:`SESSION_STEPS`).
        index: 1-based position of the step in the run.
        total: total number of steps in the run.
        seconds: wall-clock seconds the step took.
        payload: step-specific report — artifact reuse counters for
            ``prepare``, correspondence counts for ``schema_matching``, the
            blocking plan and classification counts for
            ``duplicate_detection``, output size for ``fusion``, …
    """

    step: str
    index: int
    total: int
    seconds: float
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ProgressEvent:
    """Intra-step progress on long runs, for streamed UIs.

    Where :class:`StageEvent` reports a *completed* step, progress events
    stream out while a step is still running: seeds scored and field
    matrices built during ``schema_matching``, candidate-pair batches scored
    during ``duplicate_detection``, groups resolved during ``fusion``.
    Counters are cumulative over the step (across source pairs / scoring
    batches); ``total`` is the work-item count of the current unit of work
    (one source pair's tuples, the run's candidate pairs, one fusion input's
    groups).

    Attributes:
        step: the running step (one of :data:`SESSION_STEPS`).
        phase: what is being counted (``"seeds_scored"``,
            ``"field_matrices"``, ``"pairs_scored"``, ``"groups_resolved"``).
        done: cumulative completed work items of this phase within the step.
        total: work items of the current unit of work.
    """

    step: str
    phase: str
    done: int
    total: int


def _spec_to_dict(spec: Optional[FusionSpec]) -> Optional[Dict[str, Any]]:
    """JSON-able form of a name-based :class:`FusionSpec` (``None`` passthrough).

    Raises :class:`HummerError` on resolutions carrying live
    :class:`ResolutionFunction` instances — a snapshot must be rebuildable in
    a process that never saw the instance.
    """
    if spec is None:
        return None
    resolutions = []
    for item in spec.resolutions:
        function = item.function
        if isinstance(function, ResolutionFunction):
            raise HummerError(
                f"the resolution for column {item.column!r} is a "
                "ResolutionFunction instance; session snapshots need "
                "name-based resolutions (a registry name or [name, args])"
            )
        if isinstance(function, tuple):
            function = [function[0], list(function[1])]
        resolutions.append(
            {"column": item.column, "function": function, "alias": item.alias}
        )
    return {
        "key_columns": list(spec.key_columns),
        "resolutions": resolutions,
        "keep_source_column": spec.keep_source_column,
    }


def _spec_from_dict(data: Optional[Dict[str, Any]]) -> Optional[FusionSpec]:
    """Inverse of :func:`_spec_to_dict`."""
    if data is None:
        return None
    resolutions = []
    for item in data.get("resolutions", ()):
        function = item.get("function")
        if isinstance(function, list):
            function = (function[0], list(function[1]))
        resolutions.append(
            ResolutionSpec(item["column"], function, alias=item.get("alias"))
        )
    return FusionSpec(
        key_columns=list(data.get("key_columns", (OBJECT_ID_COLUMN,))),
        resolutions=resolutions,
        keep_source_column=bool(data.get("keep_source_column", False)),
    )


class FusionSession:
    """Stateful, event-emitting execution of the six-step fusion wizard.

    Sessions are single-use: construct one per fusion run (via
    :meth:`HumMer.session` or :meth:`FusionPipeline.session`), advance it to
    completion, read :attr:`result`.

    Args:
        pipeline: the :class:`~repro.core.pipeline.FusionPipeline` providing
            the per-step primitives (matcher, detector, registry, preparer).
        aliases: catalog aliases of the sources to fuse (wizard step 1).
        spec: fusion spec for step 5; ``None`` means fuse on ``objectID``
            with Coalesce everywhere.
        metadata: column metadata handed to metadata-based resolution
            functions.
        skip_detection: fuse directly on the transformed union without
            duplicate detection (the ``FUSE BY (key)`` query shape) — the
            selection / detection / conflict steps become no-ops.
        skip_conflicts: skip the conflict-sampling report (step 5a) — the
            SQL query path only needs the fused relation, and never paid
            for the report before the session existed.
        transform_filter: optional callable applied to the combined relation
            right after transformation (the query executor's WHERE push-in).
    """

    #: Step-name constants (mirrors :data:`SESSION_STEPS`).
    CHOOSE_SOURCES, PREPARE, SCHEMA_MATCHING, ATTRIBUTE_SELECTION, \
        DUPLICATE_DETECTION, CONFLICT_RESOLUTION, FUSION = SESSION_STEPS
    DONE = DONE

    def __init__(
        self,
        pipeline,
        aliases: Sequence[str],
        spec: Optional[FusionSpec] = None,
        metadata: Optional[Dict[str, Any]] = None,
        skip_detection: bool = False,
        skip_conflicts: bool = False,
        transform_filter: Optional[Callable[[Relation], Relation]] = None,
    ):
        self.pipeline = pipeline
        self.aliases = list(aliases)
        self.spec = spec
        self.metadata = metadata
        self.skip_detection = skip_detection
        self.skip_conflicts = skip_conflicts
        self.transform_filter = transform_filter

        # per-step artefacts (the wizard's intermediate state)
        self.sources: Optional[List[Relation]] = None
        self.prepared = None
        self.matching = None
        self.transformed: Optional[Relation] = None
        self.prepared_view = None
        self.selection = None
        self.detection = None
        self.conflicts = None
        self.fusion = None
        self.result: Optional[PipelineResult] = None

        #: Per-step reports recorded as steps complete — the
        #: :class:`StageEvent` payload plus wall-clock seconds, keyed by step
        #: name.  Carried into snapshots as the per-step artefact summaries.
        self.step_reports: Dict[str, Dict[str, Any]] = {}

        self.timings = PipelineTimings()
        self._cursor = 0
        self._decisions_applied = False
        self._listeners: List[Callable[[StageEvent], None]] = []
        self._progress_listeners: List[Callable[[ProgressEvent], None]] = []
        self._runners = {
            self.CHOOSE_SOURCES: self._run_choose_sources,
            self.PREPARE: self._run_prepare,
            self.SCHEMA_MATCHING: self._run_schema_matching,
            self.ATTRIBUTE_SELECTION: self._run_attribute_selection,
            self.DUPLICATE_DETECTION: self._run_duplicate_detection,
            self.CONFLICT_RESOLUTION: self._run_conflict_resolution,
            self.FUSION: self._run_fusion,
        }

    # -- state inspection ----------------------------------------------------------

    @property
    def current_step(self) -> str:
        """The next step :meth:`advance` will execute (or :data:`DONE`)."""
        if self._cursor >= len(SESSION_STEPS):
            return DONE
        return SESSION_STEPS[self._cursor]

    @property
    def completed_steps(self) -> Sequence[str]:
        """The steps executed so far, in order."""
        return SESSION_STEPS[: self._cursor]

    @property
    def is_done(self) -> bool:
        """Whether every step has executed and :attr:`result` is available."""
        return self._cursor >= len(SESSION_STEPS)

    # -- observation ---------------------------------------------------------------

    def subscribe(self, listener: Callable[[StageEvent], None]) -> Callable[[], None]:
        """Receive a :class:`StageEvent` after each completed step.

        Returns an unsubscribe callable.  Listener exceptions propagate to
        the advancing caller — observers are part of the run, not detached
        best-effort logging.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def subscribe_progress(
        self, listener: Callable[[ProgressEvent], None]
    ) -> Callable[[], None]:
        """Receive :class:`ProgressEvent`\\ s *while* long steps are running.

        Returns an unsubscribe callable.  Like :meth:`subscribe`, listener
        exceptions propagate to the advancing caller.
        """
        self._progress_listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._progress_listeners:
                self._progress_listeners.remove(listener)

        return unsubscribe

    def _emit_progress(self, step: str, phase: str, done: int, total: int) -> None:
        if not self._progress_listeners:
            return
        event = ProgressEvent(step=step, phase=phase, done=done, total=total)
        for listener in list(self._progress_listeners):
            listener(event)

    # -- advancing -----------------------------------------------------------------

    def advance(self):
        """Execute the current step and return its artefact.

        Between calls the caller may adjust the produced artefacts in place
        (remove correspondences, change the attribute selection, decide
        unsure pairs + :meth:`apply_duplicate_decisions`) — the library
        counterpart of the demo's GUI interventions.
        """
        if self.is_done:
            raise HummerError("the session is complete; construct a new one to re-run")
        step = SESSION_STEPS[self._cursor]
        started = time.perf_counter()
        artefact, payload = self._runners[step]()
        seconds = time.perf_counter() - started
        self._cursor += 1
        self.step_reports[step] = {"seconds": seconds, "payload": dict(payload)}
        event = StageEvent(
            step=step,
            index=self._cursor,
            total=len(SESSION_STEPS),
            seconds=seconds,
            payload=payload,
        )
        for listener in list(self._listeners):
            listener(event)
        return artefact

    def advance_to(self, step: str):
        """Advance until *step* (inclusive) has executed; return its artefact."""
        if step not in SESSION_STEPS:
            raise HummerError(
                f"unknown session step {step!r} (steps: {', '.join(SESSION_STEPS)})"
            )
        if step in self.completed_steps:
            raise HummerError(f"session step {step!r} has already executed")
        artefact = None
        while step not in self.completed_steps:
            artefact = self.advance()
        return artefact

    def run(self) -> PipelineResult:
        """Advance through every remaining step and return the result."""
        while not self.is_done:
            self.advance()
        return self.result

    # -- mid-session adjustment ----------------------------------------------------

    def apply_duplicate_decisions(self):
        """Re-cluster after deciding unsure pairs (wizard step 4 confirmation).

        Call after mutating ``session.detection.classified`` (e.g.
        ``confirm_all`` or per-pair decisions) and before advancing past
        duplicate detection's successor steps.  Comparison scores are
        reused; only the transitive closure and the objectID column are
        recomputed.
        """
        if self.detection is None:
            raise HummerError(
                "no duplicate detection to re-cluster; advance the session "
                "through duplicate_detection first"
            )
        if self.conflicts is not None or self.fusion is not None:
            raise HummerError(
                "duplicate decisions must be applied before conflict "
                "resolution and fusion run"
            )
        self.detection = self.pipeline.detector.redetect_with_decisions(
            self.transformed, self.detection
        )
        self._decisions_applied = True
        return self.detection

    # -- snapshot / restore --------------------------------------------------------

    @property
    def can_snapshot(self) -> bool:
        """Whether :meth:`to_dict` can succeed for this session.

        False for sessions holding process-local state a snapshot cannot
        carry: a ``transform_filter`` callable, or a spec with live
        :class:`ResolutionFunction` instances.  Durable services use this
        to skip journaling such sessions instead of failing their steps.
        """
        if self.transform_filter is not None:
            return False
        if self.spec is not None:
            for item in self.spec.resolutions:
                if isinstance(item.function, ResolutionFunction):
                    return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able snapshot of this session's progress.

        The snapshot captures everything needed to resume in another process
        (:meth:`from_dict`): aliases, the step cursor, per-step reports,
        user decisions on unsure pairs, the fusion spec (name-based only)
        and a content digest per source so a resume against changed data
        fails loudly instead of silently diverging.

        Raises:
            HummerError: for sessions that cannot be snapshotted — a
                ``transform_filter`` (an arbitrary callable) or a spec
                holding live :class:`ResolutionFunction` instances.
        """
        if self.transform_filter is not None:
            raise HummerError(
                "sessions with a transform_filter cannot be snapshotted "
                "(the filter is an arbitrary callable)"
            )
        decisions = []
        segments = None
        if self.detection is not None:
            classified = self.detection.classified
            decisions = [
                [int(left), int(right), bool(accept)]
                for (left, right), accept in sorted(classified.decisions.items())
            ]
            # Segment membership is snapshotted too: the wizard lets users
            # *move* pairs between segments (demote a sure duplicate to
            # unsure), and accepted_pairs() starts from sure_duplicates —
            # decisions alone would not reproduce such demotions on resume.
            segments = {
                name: [list(score.as_tuple()) for score in getattr(classified, name)]
                for name in ("sure_duplicates", "unsure", "sure_non_duplicates")
            }
        digests = None
        if self.sources is not None:
            digests = [
                [alias, source.content_digest()]
                for alias, source in zip(self.aliases, self.sources)
            ]
        return {
            "version": SNAPSHOT_VERSION,
            "aliases": list(self.aliases),
            "completed_steps": list(self.completed_steps),
            "skip_detection": self.skip_detection,
            "skip_conflicts": self.skip_conflicts,
            "spec": _spec_to_dict(self.spec),
            "metadata": self.metadata,
            "decisions": decisions,
            "classified_segments": segments,
            "decisions_applied": self._decisions_applied,
            "step_reports": {
                step: dict(report) for step, report in self.step_reports.items()
            },
            "source_digests": digests,
        }

    @classmethod
    def from_dict(cls, pipeline, data: Dict[str, Any]) -> "FusionSession":
        """Rebuild a session from :meth:`to_dict` against a fresh *pipeline*.

        Completed steps are *replayed* — the pipeline is deterministic, so
        the replay reproduces the snapshotted artefacts bit-identically;
        recorded duplicate decisions are restored (and re-applied when they
        had been applied) at the point in the replay where they originally
        happened.  Source content digests are verified right after
        ``choose_sources``: resuming over changed data raises
        :class:`HummerError`.
        """
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise HummerError(
                f"unsupported session snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        completed = [str(step) for step in data.get("completed_steps", ())]
        if tuple(completed) != SESSION_STEPS[: len(completed)]:
            raise HummerError(
                "snapshot completed_steps "
                f"{completed!r} is not a prefix of the wizard steps"
            )
        session = cls(
            pipeline,
            data.get("aliases", ()),
            spec=_spec_from_dict(data.get("spec")),
            metadata=data.get("metadata"),
            skip_detection=bool(data.get("skip_detection", False)),
            skip_conflicts=bool(data.get("skip_conflicts", False)),
        )
        decisions = data.get("decisions") or []
        decisions_applied = bool(data.get("decisions_applied", False))
        for step in completed:
            session.advance()
            if step == cls.CHOOSE_SOURCES:
                session._verify_source_digests(data.get("source_digests"))
            if step == cls.DUPLICATE_DETECTION and session.detection is not None:
                classified = session.detection.classified
                segments = data.get("classified_segments")
                if segments:
                    by_pair = {
                        score.as_tuple(): score
                        for name in (
                            "sure_duplicates", "unsure", "sure_non_duplicates"
                        )
                        for score in getattr(classified, name)
                    }
                    for name in (
                        "sure_duplicates", "unsure", "sure_non_duplicates"
                    ):
                        restored = []
                        for left, right in segments.get(name, ()):
                            score = by_pair.get((int(left), int(right)))
                            if score is not None:
                                restored.append(score)
                        setattr(classified, name, restored)
                if decisions:
                    classified.decisions = {
                        (int(left), int(right)): bool(accept)
                        for left, right, accept in decisions
                    }
                if decisions_applied:
                    session.apply_duplicate_decisions()
        return session

    def _verify_source_digests(self, digests) -> None:
        """Raise if any snapshotted source digest differs from the live one."""
        if not digests or self.sources is None:
            return
        current = {
            alias: source.content_digest()
            for alias, source in zip(self.aliases, self.sources)
        }
        for alias, digest in digests:
            if current.get(alias) != digest:
                raise HummerError(
                    f"source {alias!r} changed since the session was "
                    "snapshotted (content digest mismatch); re-run the "
                    "fusion instead of resuming"
                )

    # -- step implementations ------------------------------------------------------
    #
    # Each runner returns (artefact, event payload).  Timing attribution
    # into PipelineTimings keeps the pre-session phase semantics: transform
    # counts as matching, selection as duplicate detection, conflicts as
    # fusion.

    def _run_choose_sources(self):
        started = time.perf_counter()
        self.sources = self.pipeline.step_choose_sources(self.aliases)
        self.timings.fetch += time.perf_counter() - started
        payload = {
            "aliases": list(self.aliases),
            "tuples": sum(len(source) for source in self.sources),
        }
        return self.sources, payload

    def _run_prepare(self):
        started = time.perf_counter()
        self.prepared = self.pipeline.step_prepare(self.aliases)
        if self.prepared is not None:
            self.timings.prepare += time.perf_counter() - started
        return self.prepared, (
            dict(self.prepared.report()) if self.prepared is not None else {}
        )

    def _run_schema_matching(self):
        matcher = self.pipeline.matcher
        seeder = getattr(matcher, "seeder", None)
        counters: Dict[str, int] = {"seeds_scored": 0, "field_matrices": 0}
        scoring: Dict[str, int] = {"seed_candidates": 0, "seed_cosines": 0}

        # Counters accumulate across source pairs (MultiMatcher matches
        # every non-preferred source against the preferred one), so `done`
        # is cumulative over the whole step.
        def forward(phase: str, done: int, total: int) -> None:
            counters[phase] = counters.get(phase, 0) + 1
            self._emit_progress(self.SCHEMA_MATCHING, phase, counters[phase], total)

        def record_scoring(statistics) -> None:
            scoring["seed_candidates"] += statistics.candidate_count
            scoring["seed_cosines"] += statistics.scored_count

        restore = []
        if hasattr(matcher, "progress_callback"):
            restore.append((matcher, "progress_callback", matcher.progress_callback))
            matcher.progress_callback = forward
        if seeder is not None and hasattr(seeder, "progress_callback"):
            restore.append((seeder, "progress_callback", seeder.progress_callback))
            seeder.progress_callback = forward
        if seeder is not None and hasattr(seeder, "scoring_listener"):
            restore.append((seeder, "scoring_listener", seeder.scoring_listener))
            seeder.scoring_listener = record_scoring
        started = time.perf_counter()
        try:
            self.matching = self.pipeline.step_schema_matching(
                self.sources, self.prepared
            )
        finally:
            for target, attribute, previous in reversed(restore):
                setattr(target, attribute, previous)
        self.timings.matching += time.perf_counter() - started
        payload = {
            "correspondences": (
                len(self.matching.correspondences) if self.matching is not None else 0
            ),
            "seeds_scored": counters["seeds_scored"],
            "field_matrices": counters["field_matrices"],
        }
        payload.update(scoring)
        return self.matching, payload

    def _run_attribute_selection(self):
        started = time.perf_counter()
        transformed = self.pipeline.step_transform(self.sources, self.matching)
        if self.transform_filter is not None:
            transformed = self.transform_filter(transformed)
        self.transformed = transformed
        self.timings.matching += time.perf_counter() - started
        if self.prepared is not None:
            self.prepared_view = self.prepared.view(
                transformed,
                correspondences=self.matching.correspondences if self.matching else None,
                preferred=self.matching.preferred if self.matching else None,
            )
        if self.skip_detection:
            return None, {"skipped": True}
        started = time.perf_counter()
        self.selection = self.pipeline.step_attribute_selection(transformed)
        self.timings.duplicate_detection += time.perf_counter() - started
        return self.selection, {"attributes": list(self.selection.attributes)}

    def _run_duplicate_detection(self):
        if self.skip_detection:
            return None, {"skipped": True}
        counters: Dict[str, int] = {"pairs_scored": 0, "score_batches": 0}

        # The executor reports cumulative pairs per completed batch (one
        # batch for the serial path, one per merged chunk for the pool).
        def forward(phase: str, done: int, total: int) -> None:
            counters["score_batches"] += 1
            counters["pairs_scored"] = done
            self._emit_progress(self.DUPLICATE_DETECTION, phase, done, total)

        started = time.perf_counter()
        self.detection = self.pipeline.step_duplicate_detection(
            self.transformed,
            self.selection,
            prepared_view=self.prepared_view,
            progress_callback=forward,
        )
        self.timings.duplicate_detection += time.perf_counter() - started
        statistics = self.detection.filter_statistics
        payload = {
            "clusters": self.detection.cluster_count,
            "counts": dict(self.detection.classified.counts),
            "candidate_pairs": statistics.blocking_candidates,
            "compared_pairs": statistics.compared,
            "pairs_scored": counters["pairs_scored"],
            "score_batches": counters["score_batches"],
        }
        if statistics.blocking_plan is not None:
            payload["blocking_plan"] = statistics.blocking_plan
        report = self.detection.clustering_report
        if report is not None:
            payload["clustering"] = report.strategy
            payload["largest_cluster"] = report.largest_cluster
            payload["chains_split"] = report.chains_split
        return self.detection, payload

    def _run_conflict_resolution(self):
        if self.skip_detection or self.skip_conflicts:
            return None, {"skipped": True}
        started = time.perf_counter()
        self.conflicts = self.pipeline.step_conflicts(self.detection)
        self.timings.fusion += time.perf_counter() - started
        payload = {
            "contradictions": self.conflicts.contradiction_count,
            "uncertainties": self.conflicts.uncertainty_count,
        }
        return self.conflicts, payload

    def _run_fusion(self):
        counters: Dict[str, int] = {"groups_resolved": 0}

        def forward(phase: str, done: int, total: int) -> None:
            counters[phase] = counters.get(phase, 0) + 1
            self._emit_progress(self.FUSION, phase, done, total)

        started = time.perf_counter()
        if self.detection is not None:
            self.fusion = self.pipeline.step_fusion(
                self.detection,
                spec=self.spec,
                metadata=self.metadata,
                progress_callback=forward,
            )
        else:
            # skip_detection: fuse the transformed union directly (the
            # FUSE BY key shape step_fusion cannot express)
            operator = FusionOperator(
                self.spec or FusionSpec(key_columns=[OBJECT_ID_COLUMN]),
                registry=self.pipeline.registry,
                table_name="fused",
                metadata=self.metadata,
            )
            operator.progress_callback = forward
            self.fusion = operator.fuse(self.transformed)
        self.timings.fusion += time.perf_counter() - started
        self.result = PipelineResult(
            sources=self.sources,
            matching=self.matching,
            transformed=self.transformed,
            attribute_selection=self.selection,
            detection=self.detection,
            conflicts=self.conflicts,
            fusion=self.fusion,
            timings=self.timings,
            prepared=self.prepared.report() if self.prepared is not None else None,
        )
        return self.fusion, {
            "output_tuples": len(self.fusion.relation),
            "groups_resolved": counters["groups_resolved"],
        }
