"""HumMer's primary contribution: declarative data fusion.

This package holds the conflict-resolution framework (paper §2.4), the fusion
operator that collapses duplicate clusters into single clean tuples, the
value-lineage tracking, conflict classification and the six-step pipeline
that ties schema matching, duplicate detection and fusion together (Fig. 2).
"""

from repro.core.conflicts import Conflict, ConflictKind, ConflictReport, find_conflicts
from repro.core.fusion import FusionOperator, FusionResult, FusionSpec, ResolutionSpec, fuse
from repro.core.lineage import CellLineage, LineageMap, trace_cell_lineage
from repro.core.rendering import annotate_with_lineage, render_with_lineage
from repro.core.pipeline import FusionPipeline, PipelineResult, PipelineTimings
from repro.core.session import SESSION_STEPS, FusionSession, ProgressEvent, StageEvent
from repro.core.resolution import (
    ResolutionContext,
    ResolutionFunction,
    ResolutionRegistry,
    default_registry,
)

__all__ = [
    "Conflict",
    "ConflictKind",
    "ConflictReport",
    "find_conflicts",
    "FusionOperator",
    "FusionResult",
    "FusionSpec",
    "ResolutionSpec",
    "fuse",
    "CellLineage",
    "LineageMap",
    "trace_cell_lineage",
    "annotate_with_lineage",
    "render_with_lineage",
    "FusionPipeline",
    "PipelineResult",
    "PipelineTimings",
    "FusionSession",
    "StageEvent",
    "ProgressEvent",
    "SESSION_STEPS",
    "ResolutionContext",
    "ResolutionFunction",
    "ResolutionRegistry",
    "default_registry",
]
