"""Value-level lineage (provenance) of the fused result.

"As an added feature, data values can be color-coded to represent their
individual lineage (one color per source relation, mixed colors for merged
values)." (paper §3)

Instead of colours, the library records, for every cell of the fused result,
the set of sources that contributed the resolved value.  A cell whose value
was taken verbatim from one source has single-source lineage; a cell whose
value was computed from several sources (vote, avg, concat, ...) has merged
lineage.  The CLI and examples render this as ANSI colours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.types import is_null, values_equal

__all__ = ["CellLineage", "LineageMap", "trace_cell_lineage"]


@dataclass(frozen=True)
class CellLineage:
    """Provenance of one cell of the fused result."""

    column: str
    object_id: Any
    sources: FrozenSet[str]
    merged: bool

    @property
    def single_source(self) -> Optional[str]:
        """The lone contributing source, when there is exactly one."""
        if len(self.sources) == 1:
            return next(iter(self.sources))
        return None


class LineageMap:
    """Lineage for every (object, column) cell of a fused result."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[Any, str], CellLineage] = {}

    def record(self, lineage: CellLineage) -> None:
        """Store lineage for one cell."""
        self._cells[(lineage.object_id, lineage.column.lower())] = lineage

    def lookup(self, object_id: Any, column: str) -> Optional[CellLineage]:
        """Lineage of the cell for *object_id* / *column*, if recorded."""
        return self._cells.get((object_id, column.lower()))

    def sources_used(self) -> List[str]:
        """Every source that contributed at least one cell, sorted."""
        sources = set()
        for lineage in self._cells.values():
            sources.update(lineage.sources)
        return sorted(sources)

    def merged_cells(self) -> List[CellLineage]:
        """Cells whose value combines several sources."""
        return [lineage for lineage in self._cells.values() if lineage.merged]

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())


def trace_cell_lineage(
    column: str,
    object_id: Any,
    resolved_value: Any,
    values: Sequence[Any],
    sources: Sequence[Optional[str]],
) -> CellLineage:
    """Derive the lineage of one resolved cell.

    Sources whose value equals the resolved value are the contributors; if no
    source value equals it (the function computed something new, e.g. an
    average or a concatenation), every source that supplied *any* value is a
    contributor and the cell is marked merged.
    """
    exact: set = set()
    contributing: set = set()
    for value, source in zip(values, sources):
        if is_null(value) or source is None:
            continue
        contributing.add(str(source))
        if values_equal(value, resolved_value) or (
            not is_null(resolved_value) and str(value) == str(resolved_value)
        ):
            exact.add(str(source))
    if is_null(resolved_value):
        return CellLineage(column=column, object_id=object_id, sources=frozenset(), merged=False)
    if exact:
        return CellLineage(
            column=column, object_id=object_id, sources=frozenset(exact), merged=len(exact) > 1
        )
    return CellLineage(
        column=column,
        object_id=object_id,
        sources=frozenset(contributing),
        merged=len(contributing) > 1,
    )
