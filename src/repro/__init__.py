"""HumMer reproduction: automatic data fusion for heterogeneous, dirty data.

Reproduction of *"Automatic Data Fusion with HumMer"* (Bilke, Bleiholder,
Böhm, Draba, Naumann, Weis — VLDB 2005).  Guided by a Fuse By query over
multiple tables, the library performs three fully automated steps:

1. **Schema matching** (``repro.matching``) — instance-based, duplicate-driven
   alignment of heterogeneous schemata (the DUMAS algorithm).
2. **Duplicate detection** (``repro.dedup``) — domain-independent, similarity
   based detection of multiple representations of the same real-world object.
3. **Data fusion / conflict resolution** (``repro.core``) — merging duplicate
   clusters into single consistent tuples using declarative resolution
   functions.

The :class:`HumMer` facade ties everything together, configured by the
declarative :class:`FusionConfig` tree (``repro.config``) and driven either
automatically or step by step through a :class:`FusionSession`
(``repro.core.session``); the ``repro.fuseby`` package parses and executes
the Fuse By SQL extension; ``repro.engine`` is the underlying relational
engine (the XXL substitute); ``repro.datagen``, ``repro.baselines`` and
``repro.evaluation`` support the experiments.
"""

from repro.hummer import HumMer
from repro.config import (
    DedupConfig,
    FusionConfig,
    MatchingConfig,
    PrepareConfig,
    ResolutionConfig,
)
from repro.engine import Catalog, Column, DataType, Relation, Schema
from repro.core import (
    FusionPipeline,
    FusionResult,
    FusionSession,
    FusionSpec,
    PipelineResult,
    ProgressEvent,
    ResolutionContext,
    ResolutionFunction,
    ResolutionSpec,
    StageEvent,
    default_registry,
    fuse,
)
from repro.matching import DumasMatcher, transform_sources
from repro.dedup import DuplicateDetector
from repro.fuseby import parse_query

__version__ = "1.1.0"

__all__ = [
    "HumMer",
    "FusionConfig",
    "MatchingConfig",
    "DedupConfig",
    "PrepareConfig",
    "ResolutionConfig",
    "FusionSession",
    "StageEvent",
    "ProgressEvent",
    "Catalog",
    "Column",
    "DataType",
    "Relation",
    "Schema",
    "FusionPipeline",
    "FusionResult",
    "FusionSpec",
    "PipelineResult",
    "ResolutionContext",
    "ResolutionFunction",
    "ResolutionSpec",
    "default_registry",
    "fuse",
    "DumasMatcher",
    "transform_sources",
    "DuplicateDetector",
    "parse_query",
    "__version__",
]
