"""HTTP service facade over the HumMer fusion library (ISSUE 7 tentpole).

A dependency-light async service: stdlib ``asyncio.start_server`` speaking
enough HTTP/1.1 for JSON request/response bodies and an SSE-style progress
stream, wrapping a multi-tenant registry of :class:`~repro.hummer.HumMer`
instances.  One tenant's requests serialize behind a per-tenant lock while
other tenants proceed concurrently; blocking pipeline steps run in a worker
thread pool with per-request timeouts.

Entry points:

* :func:`repro.service.server.serve` — run the service in the current
  event loop (the ``hummer serve`` CLI subcommand).
* :class:`repro.service.server.ServiceServer` — in-process server on a
  background thread, for tests and examples.
* :class:`repro.service.client.ServiceClient` — minimal stdlib HTTP
  client speaking the service's JSON protocol.
"""

from repro.service.app import ServiceApp
from repro.service.client import ServiceClient
from repro.service.errors import ApiError, status_for_exception
from repro.service.server import ServiceServer, serve
from repro.service.state import ServiceState, Tenant

__all__ = [
    "ApiError",
    "ServiceApp",
    "ServiceClient",
    "ServiceServer",
    "ServiceState",
    "Tenant",
    "serve",
    "status_for_exception",
]
