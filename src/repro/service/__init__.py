"""HTTP service facade over the HumMer fusion library (ISSUE 7 tentpole).

A dependency-light async service: stdlib ``asyncio.start_server`` speaking
enough HTTP/1.1 for JSON request/response bodies and an SSE-style progress
stream, wrapping a multi-tenant registry of :class:`~repro.hummer.HumMer`
instances.  One tenant's requests serialize behind a bounded per-tenant
work queue (over-full tenants answer 429 ``TenantBusy``) while other
tenants proceed concurrently; blocking pipeline steps run in a worker
thread pool with per-request timeouts, and a step that outlives its
timeout keeps the tenant busy (409) until it settles.  With
``ServiceState(data_dir=...)`` the registry is durable: per-tenant
artifact caches plus an append-only journal
(:class:`~repro.service.journal.TenantJournal`) let a restarted process
recover every tenant and session with zero client re-upload.

Entry points:

* :func:`repro.service.server.serve` — run the service in the current
  event loop (the ``hummer serve`` CLI subcommand).
* :class:`repro.service.server.ServiceServer` — in-process server on a
  background thread, for tests and examples.
* :class:`repro.service.client.ServiceClient` — minimal stdlib HTTP
  client speaking the service's JSON protocol.
"""

from repro.service.app import ServiceApp
from repro.service.client import ServiceClient
from repro.service.errors import ApiError, status_for_exception
from repro.service.journal import TenantJournal
from repro.service.server import ServiceServer, serve
from repro.service.state import ServiceState, Tenant

__all__ = [
    "ApiError",
    "ServiceApp",
    "ServiceClient",
    "ServiceServer",
    "ServiceState",
    "Tenant",
    "TenantJournal",
    "serve",
    "status_for_exception",
]
