"""Multi-tenant service state: tenants, their sessions, and event buffers.

Each tenant owns one :class:`~repro.hummer.HumMer` instance and an
``asyncio.Lock`` — requests against the same tenant serialize, requests
against different tenants interleave freely.  Blocking pipeline work runs
on a shared thread pool; event callbacks fired from those worker threads
are forwarded onto the event loop with ``call_soon_threadsafe`` so stream
handlers can wait on plain ``asyncio.Event`` objects.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.config import FusionConfig
from repro.core.session import FusionSession
from repro.hummer import HumMer
from repro.service.errors import ApiError

__all__ = ["SessionHandle", "ServiceState", "Tenant"]


class SessionHandle:
    """A tenant's fusion session plus its buffered wizard events.

    Events (both :class:`StageEvent` and :class:`ProgressEvent`) are
    appended as JSON-able dicts in arrival order; ``changed`` wakes any
    stream handler waiting for news.  Buffers are append-only so a late
    subscriber replays the full history before following live events.
    """

    def __init__(self, session_id: str, session: FusionSession, loop: asyncio.AbstractEventLoop):
        self.id = session_id
        self.session = session
        self.events: List[Dict[str, Any]] = []
        self.changed = asyncio.Event()
        self._loop = loop
        session.subscribe(lambda event: self._record("stage", event))
        session.subscribe_progress(lambda event: self._record("progress", event))

    def _record(self, kind: str, event) -> None:
        payload = dataclasses.asdict(event)
        payload["event"] = kind
        # Steps run on worker threads; the buffer append is thread-safe in
        # itself, but waking waiters must happen on the loop thread.
        self.events.append(payload)
        self._loop.call_soon_threadsafe(self.changed.set)

    def notify(self) -> None:
        """Wake stream handlers from the loop thread (e.g. on completion)."""
        self.changed.set()

    def status(self) -> Dict[str, Any]:
        session = self.session
        return {
            "session": self.id,
            "current_step": session.current_step,
            "completed_steps": list(session.completed_steps),
            "is_done": session.is_done,
            "events_buffered": len(self.events),
            "step_reports": {
                step: dict(report)
                for step, report in session.step_reports.items()
            },
        }


class Tenant:
    """One tenant: an isolated HumMer instance, sessions, and a lock."""

    def __init__(self, tenant_id: str, loop: asyncio.AbstractEventLoop,
                 config: Optional[FusionConfig] = None):
        self.id = tenant_id
        self.hummer = HumMer(config=config)
        self.lock = asyncio.Lock()
        self.sessions: Dict[str, SessionHandle] = {}
        self._loop = loop
        self._session_ids = itertools.count(1)

    def add_session(self, session: FusionSession) -> SessionHandle:
        session_id = f"s{next(self._session_ids)}"
        handle = SessionHandle(session_id, session, self._loop)
        self.sessions[session_id] = handle
        return handle

    def get_session(self, session_id: str) -> SessionHandle:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise ApiError(
                404, f"unknown session {session_id!r} for tenant {self.id!r}",
                "UnknownSession",
            ) from None


class ServiceState:
    """The registry of tenants plus the shared worker pool.

    Args:
        step_timeout: per-request ceiling (seconds) on blocking pipeline
            work; a step that exceeds it yields a 504 without killing the
            tenant.
        max_workers: worker threads shared by all tenants.
    """

    def __init__(self, step_timeout: float = 300.0, max_workers: int = 4):
        self.tenants: Dict[str, Tenant] = {}
        self.step_timeout = step_timeout
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="hummer-service"
        )
        self._tenant_ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    def create_tenant(self, tenant_id: Optional[str] = None,
                      config: Optional[FusionConfig] = None) -> Tenant:
        if tenant_id is None:
            tenant_id = f"t{next(self._tenant_ids)}"
            while tenant_id in self.tenants:
                tenant_id = f"t{next(self._tenant_ids)}"
        if tenant_id in self.tenants:
            raise ApiError(409, f"tenant {tenant_id!r} already exists", "TenantExists")
        tenant = Tenant(tenant_id, self.loop, config=config)
        self.tenants[tenant_id] = tenant
        return tenant

    def get_tenant(self, tenant_id: str) -> Tenant:
        try:
            return self.tenants[tenant_id]
        except KeyError:
            raise ApiError(
                404, f"unknown tenant {tenant_id!r}", "UnknownTenant"
            ) from None

    def drop_tenant(self, tenant_id: str) -> None:
        self.get_tenant(tenant_id)
        del self.tenants[tenant_id]

    async def run_blocking(self, tenant: Tenant, call: Callable[[], Any]) -> Any:
        """Run *call* on the worker pool with the per-request timeout.

        Raises:
            TimeoutError: when the step exceeds ``step_timeout`` (mapped to
                504 by the error layer).  The worker thread itself is not
                interruptible — it finishes in the background — but the
                request returns.
        """
        future = self.loop.run_in_executor(self.executor, call)
        return await asyncio.wait_for(future, timeout=self.step_timeout)

    def close(self) -> None:
        self.executor.shutdown(wait=False)
