"""Multi-tenant service state: tenants, sessions, admission control, durability.

Each tenant owns one :class:`~repro.hummer.HumMer` instance plus an
admission gate: requests against the same tenant serialize behind an
``asyncio.Lock``, but the queue behind that lock is *bounded* — a tenant
with ``max_queued`` requests already outstanding answers 429
``TenantBusy`` instead of queuing without limit, and a step that outlived
the request timeout keeps the tenant busy (409 ``TenantBusy``) until the
orphaned worker actually settles, so no new request can interleave with a
still-running step.  Blocking pipeline work runs on a shared thread pool;
event callbacks fired from those worker threads are forwarded onto the
event loop with ``call_soon_threadsafe`` so stream handlers can wait on
plain ``asyncio.Event`` objects.

With ``data_dir`` the state is durable: each tenant gets its own on-disk
artifact directory (wired through ``PrepareConfig(artifact_dir=...)``) and
an append-only journal (:mod:`repro.service.journal`) of source uploads
and per-step session snapshots.  :meth:`ServiceState.recover` rebuilds the
whole registry in a fresh process — re-registering sources and
replay-restoring sessions — without the client re-uploading anything.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import itertools
import re
import shutil
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.config import FusionConfig
from repro.core.session import FusionSession
from repro.hummer import HumMer
from repro.service.errors import ApiError
from repro.service.journal import TenantJournal, relation_from_upload, tenant_dirname

__all__ = ["SessionHandle", "ServiceState", "Tenant"]


class SessionHandle:
    """A tenant's fusion session plus its buffered wizard events.

    Events (both :class:`StageEvent` and :class:`ProgressEvent`) are
    appended as JSON-able dicts in arrival order; ``changed`` wakes any
    stream handler waiting for news.  Buffers are append-only so a late
    subscriber replays the full history before following live events.
    ``closed_reason`` is set when the session can no longer advance (its
    tenant was deleted) so event streams terminate instead of waiting
    forever.
    """

    def __init__(self, session_id: str, session: FusionSession, loop: asyncio.AbstractEventLoop):
        self.id = session_id
        self.session = session
        self.events: List[Dict[str, Any]] = []
        self.changed = asyncio.Event()
        self.closed_reason: Optional[str] = None
        self._loop = loop
        session.subscribe(lambda event: self._record("stage", event))
        session.subscribe_progress(lambda event: self._record("progress", event))

    def _record(self, kind: str, event) -> None:
        payload = dataclasses.asdict(event)
        payload["event"] = kind
        # Steps run on worker threads; the buffer append is thread-safe in
        # itself, but waking waiters must happen on the loop thread.
        self.events.append(payload)
        self._loop.call_soon_threadsafe(self.changed.set)

    def notify(self) -> None:
        """Wake stream handlers from the loop thread (e.g. on completion)."""
        self.changed.set()

    def close(self, reason: str) -> None:
        """Mark the session as unable to advance and wake stream handlers."""
        self.closed_reason = reason
        self.changed.set()

    def status(self) -> Dict[str, Any]:
        session = self.session
        return {
            "session": self.id,
            "current_step": session.current_step,
            "completed_steps": list(session.completed_steps),
            "is_done": session.is_done,
            "events_buffered": len(self.events),
            "step_reports": {
                step: dict(report)
                for step, report in session.step_reports.items()
            },
        }


class Tenant:
    """One tenant: an isolated HumMer instance, sessions, and admission.

    Args:
        max_queued: bound on requests queued behind the tenant lock; one
            more may be in flight.  Exceeding it is a 429 ``TenantBusy``.
        journal: the tenant's durability journal (``None`` = in-memory
            only).
    """

    def __init__(self, tenant_id: str, loop: asyncio.AbstractEventLoop,
                 config: Optional[FusionConfig] = None, max_queued: int = 4,
                 journal: Optional[TenantJournal] = None):
        self.id = tenant_id
        self.hummer = HumMer(config=config)
        self.lock = asyncio.Lock()
        self.sessions: Dict[str, SessionHandle] = {}
        self.max_queued = max_queued
        self.journal = journal
        self.orphan: Optional[asyncio.Future] = None
        self._loop = loop
        self._next_session_id = 1
        self._in_flight = 0
        self._queued = 0

    # -- admission -----------------------------------------------------------------

    @property
    def orphaned(self) -> bool:
        """Whether a timed-out step is still running on a worker thread."""
        orphan = self.orphan
        if orphan is not None and orphan.done():
            self.orphan = None
            orphan = None
        return orphan is not None

    def mark_orphan(self, future: asyncio.Future) -> None:
        """Keep the tenant busy until a timed-out step's *future* settles."""
        self.orphan = future
        future.add_done_callback(self._orphan_settled)

    def _orphan_settled(self, future: asyncio.Future) -> None:
        if self.orphan is future:
            self.orphan = None
        if not future.cancelled():
            # retrieve so a failed orphan never logs "never retrieved"
            future.exception()
        # the orphaned step kept emitting events; wake any stream handlers
        for handle in self.sessions.values():
            handle.notify()

    def admission_status(self) -> Dict[str, Any]:
        """Queue depth and busyness, for tenant status and ``GET /stats``."""
        return {
            "in_flight": self._in_flight,
            "queued": self._queued,
            "max_queued": self.max_queued,
            "orphaned": self.orphaned,
        }

    def cluster_diagnostics(self) -> Optional[Dict[str, Any]]:
        """Cluster shape of the newest completed dedup step, or ``None``.

        Surfaces over-merging live: operators watch ``largest_cluster``
        balloon (transitive chaining) or ``chains_split`` climb (a graph
        strategy actively cutting weak bridges).  Sessions are scanned in
        creation order, so the most recent dedup report wins.
        """
        newest: Optional[Dict[str, Any]] = None
        for session_id, handle in self.sessions.items():
            report = handle.session.step_reports.get(
                FusionSession.DUPLICATE_DETECTION
            )
            if not report:
                continue
            payload = report.get("payload", {})
            if "clusters" not in payload:
                continue
            newest = {
                "session": session_id,
                "clusters": payload.get("clusters"),
                "largest_cluster": payload.get("largest_cluster"),
                "chains_split": payload.get("chains_split"),
                "clustering": payload.get("clustering"),
            }
        return newest

    @contextlib.asynccontextmanager
    async def admit(self, bounded: bool = True):
        """Serialize a request behind the tenant lock, with admission control.

        Only *bounded* (mutating) requests face admission checks: a tenant
        wedged by an orphaned (timed-out, still-running) step answers 409
        immediately, and a full queue answers 429.  Reads still serialize
        behind the lock but are never bounced — status must stay
        observable while the tenant is busy.
        """
        if bounded:
            self._check_orphan()
            if self._in_flight + self._queued > self.max_queued:
                raise ApiError(
                    429,
                    f"tenant {self.id!r} has {self._queued} queued request(s) "
                    f"(max_queued={self.max_queued}); retry later",
                    "TenantBusy",
                )
        self._queued += 1
        try:
            await self.lock.acquire()
        finally:
            self._queued -= 1
        self._in_flight += 1
        try:
            # the previous holder may have timed out and orphaned its step
            if bounded:
                self._check_orphan()
            yield
        finally:
            self._in_flight -= 1
            self.lock.release()

    def _check_orphan(self) -> None:
        if self.orphaned:
            raise ApiError(
                409,
                f"tenant {self.id!r} is busy: a timed-out step is still "
                "running; retry once it settles",
                "TenantBusy",
            )

    # -- sessions ------------------------------------------------------------------

    def add_session(self, session: FusionSession,
                    session_id: Optional[str] = None) -> SessionHandle:
        if session_id is None:
            session_id = f"s{self._next_session_id}"
            self._next_session_id += 1
        else:
            # recovery re-installs journaled ids; keep new ids collision-free
            match = re.fullmatch(r"s(\d+)", session_id)
            if match:
                self._next_session_id = max(
                    self._next_session_id, int(match.group(1)) + 1
                )
        handle = SessionHandle(session_id, session, self._loop)
        self.sessions[session_id] = handle
        if self.journal is not None and session.can_snapshot:
            # journal the snapshot after every completed step, from within
            # the step's own (worker-thread) stage callback — so a kill
            # between requests never loses a finished step
            session.subscribe(lambda event: self.record_session(handle))
        return handle

    def get_session(self, session_id: str) -> SessionHandle:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise ApiError(
                404, f"unknown session {session_id!r} for tenant {self.id!r}",
                "UnknownSession",
            ) from None

    # -- journaling ----------------------------------------------------------------

    def record_source(self, body: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append({"record": "source", "body": dict(body)})

    def record_unregister(self, alias: str) -> None:
        if self.journal is not None:
            self.journal.append({"record": "unregister", "alias": alias})

    def record_prepare_mode(self, mode: str) -> None:
        if self.journal is not None:
            self.journal.append({"record": "prepare_mode", "mode": mode})

    def record_session(self, handle: SessionHandle) -> None:
        if self.journal is None:
            return
        session = handle.session
        if not session.can_snapshot:
            return
        try:
            snapshot = session.to_dict()
        except Exception:
            # journaling is best-effort; never fail the step that fired it
            return
        self.journal.append(
            {"record": "session", "session": handle.id, "snapshot": snapshot}
        )


class ServiceState:
    """The registry of tenants plus the shared worker pool.

    Args:
        step_timeout: per-request ceiling (seconds) on blocking pipeline
            work; a step that exceeds it yields a 504 without killing the
            tenant (the tenant stays busy until the worker settles).
        max_workers: worker threads shared by all tenants.
        max_queued: per-tenant bound on requests queued behind the tenant
            lock (one more may be in flight); exceeding it is a 429.
        data_dir: optional directory for durability — per-tenant artifact
            dirs and journals under ``{data_dir}/tenants/``.  A fresh
            process pointed at the same directory rebuilds every tenant
            and session via :meth:`recover`.
    """

    def __init__(self, step_timeout: float = 300.0, max_workers: int = 4,
                 max_queued: int = 4, data_dir: Optional[str] = None):
        self.tenants: Dict[str, Tenant] = {}
        self.step_timeout = step_timeout
        self.max_workers = max_workers
        self.max_queued = max_queued
        self.data_dir = Path(data_dir) if data_dir else None
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="hummer-service"
        )
        self.recovery: Dict[str, Any] = {
            "recovered": False, "tenants": 0, "sessions": 0, "errors": [],
        }
        self._tenant_ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    # -- tenants -------------------------------------------------------------------

    def _tenant_dir(self, tenant_id: str) -> Optional[Path]:
        if self.data_dir is None:
            return None
        return self.data_dir / "tenants" / tenant_dirname(tenant_id)

    def create_tenant(self, tenant_id: Optional[str] = None,
                      config: Optional[FusionConfig] = None,
                      _journal: bool = True) -> Tenant:
        if tenant_id is None:
            tenant_id = f"t{next(self._tenant_ids)}"
            while tenant_id in self.tenants:
                tenant_id = f"t{next(self._tenant_ids)}"
        if tenant_id in self.tenants:
            raise ApiError(409, f"tenant {tenant_id!r} already exists", "TenantExists")
        effective = config if config is not None else FusionConfig()
        journal = None
        tenant_dir = self._tenant_dir(tenant_id)
        if tenant_dir is not None:
            if effective.prepare.artifact_dir is None:
                # wire the per-tenant artifact directory through the config
                # tree (PrepareConfig → HumMer → Catalog → ArtifactStore)
                effective = effective.merged(
                    {"prepare": {"artifact_dir": str(tenant_dir / "artifacts")}}
                )
            journal = TenantJournal(tenant_dir / "journal.jsonl")
        tenant = Tenant(
            tenant_id, self.loop, config=effective,
            max_queued=self.max_queued, journal=journal,
        )
        self.tenants[tenant_id] = tenant
        if journal is not None and _journal:
            journal.append({
                "record": "tenant",
                "tenant": tenant_id,
                "config": config.to_dict() if config is not None else None,
            })
        return tenant

    def get_tenant(self, tenant_id: str) -> Tenant:
        try:
            return self.tenants[tenant_id]
        except KeyError:
            raise ApiError(
                404, f"unknown tenant {tenant_id!r}", "UnknownTenant"
            ) from None

    def drop_tenant(self, tenant_id: str) -> None:
        tenant = self.get_tenant(tenant_id)
        del self.tenants[tenant_id]
        # open /events streams for this tenant's sessions must terminate
        # instead of waiting forever on sessions that cannot advance
        for handle in tenant.sessions.values():
            handle.close("tenant_deleted")
        tenant_dir = self._tenant_dir(tenant_id)
        if tenant_dir is not None:
            shutil.rmtree(tenant_dir, ignore_errors=True)

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> Dict[str, Any]:
        """Rebuild tenants and sessions from the data directory's journals.

        Idempotent; a no-op without ``data_dir``.  Runs blocking pipeline
        work (session replay) synchronously — call before serving traffic.
        Per-tenant failures are collected in the returned report (also at
        ``GET /stats`` under ``recovery``) instead of failing the boot.
        """
        if self.recovery["recovered"] or self.data_dir is None:
            return self.recovery
        self.recovery["recovered"] = True
        root = self.data_dir / "tenants"
        if not root.is_dir():
            return self.recovery
        for tenant_dir in sorted(root.iterdir()):
            journal_path = tenant_dir / "journal.jsonl"
            if not journal_path.is_file():
                continue
            try:
                self._recover_tenant(TenantJournal(journal_path).read())
            except Exception as exc:
                self.recovery["errors"].append(
                    f"tenant journal {journal_path.parent.name}: {exc}"
                )
        return self.recovery

    def _recover_tenant(self, records: List[Dict[str, Any]]) -> None:
        if not records or records[0].get("record") != "tenant":
            raise ApiError(500, "journal does not start with a tenant record")
        tenant_id = records[0]["tenant"]
        config_data = records[0].get("config")
        config = FusionConfig.from_dict(config_data) if config_data else None
        tenant = self.create_tenant(tenant_id, config=config, _journal=False)
        self.recovery["tenants"] += 1
        snapshots: Dict[str, Dict[str, Any]] = {}
        for record in records[1:]:
            kind = record.get("record")
            if kind == "source":
                body = record.get("body") or {}
                relation = relation_from_upload(body)
                tenant.hummer.register(
                    body["alias"],
                    relation,
                    description=body.get("description", ""),
                    replace=bool(body.get("replace", False)),
                    prepare=body.get("prepare"),
                )
            elif kind == "unregister":
                tenant.hummer.unregister(record["alias"])
            elif kind == "prepare_mode":
                tenant.hummer.enable_prepare(record["mode"])
            elif kind == "session":
                # latest snapshot per session id wins; dict keeps first-seen order
                snapshots[record["session"]] = record["snapshot"]
        for session_id, snapshot in snapshots.items():
            try:
                session = tenant.hummer.restore_session(snapshot)
            except Exception as exc:
                self.recovery["errors"].append(
                    f"tenant {tenant_id!r} session {session_id!r}: {exc}"
                )
                continue
            tenant.add_session(session, session_id=session_id)
            self.recovery["sessions"] += 1

    # -- shared worker pool --------------------------------------------------------

    async def run_blocking(self, tenant: Tenant, call: Callable[[], Any]) -> Any:
        """Run *call* on the worker pool with the per-request timeout.

        Raises:
            TimeoutError: when the step exceeds ``step_timeout`` (mapped to
                504 by the error layer).  The worker thread itself is not
                interruptible — it finishes in the background — so the
                future is kept as the tenant's *orphan*: the tenant answers
                409 ``TenantBusy`` until the step actually settles, instead
                of letting the next request interleave with it.
        """
        future = self.loop.run_in_executor(self.executor, call)
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), timeout=self.step_timeout
            )
        except (TimeoutError, asyncio.TimeoutError):
            tenant.mark_orphan(future)
            raise

    # -- introspection -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Service-wide stats: per-tenant depth, pool sizing, recovery report."""
        return {
            "tenants": {
                tenant_id: {
                    "sources": len(tenant.hummer.sources()),
                    "sessions": len(tenant.sessions),
                    "admission": tenant.admission_status(),
                    "clusters": tenant.cluster_diagnostics(),
                }
                for tenant_id, tenant in sorted(self.tenants.items())
            },
            "step_timeout": self.step_timeout,
            "max_workers": self.max_workers,
            "max_queued": self.max_queued,
            "data_dir": str(self.data_dir) if self.data_dir is not None else None,
            "recovery": self.recovery,
        }

    def close(self) -> None:
        self.executor.shutdown(wait=False)
