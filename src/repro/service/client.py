"""Minimal stdlib client for the fusion service.

One ``http.client`` connection per request (the service closes every
connection), JSON in/out, and a generator over the SSE-style event stream.
The example client and the service tests both drive the service through
this class, so it doubles as living documentation of the wire protocol.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response, carrying the service's structured error."""

    def __init__(self, status: int, error_type: str, message: str):
        super().__init__(f"{status} {error_type}: {message}")
        self.status = status
        self.error_type = error_type
        self.message = message


class ServiceClient:
    """Synchronous client bound to one service base URL (and optionally
    one tenant — pass ``tenant`` to skip repeating it per call)."""

    def __init__(self, base_url: str, tenant: Optional[str] = None,
                 timeout: float = 60.0):
        split = urlsplit(base_url)
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout

    # -- transport -----------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if response.status >= 400:
                self._raise(response.status, raw)
            if content_type.startswith("application/json"):
                return json.loads(raw) if raw else None
            return raw.decode("utf-8")
        finally:
            connection.close()

    @staticmethod
    def _raise(status: int, raw: bytes) -> None:
        try:
            error = json.loads(raw)["error"]
            raise ServiceError(status, error["type"], error["message"])
        except (json.JSONDecodeError, KeyError):
            raise ServiceError(status, "Unknown", raw.decode("utf-8", "replace"))

    def _tenant_path(self, suffix: str = "", tenant: Optional[str] = None) -> str:
        tenant_id = tenant or self.tenant
        if tenant_id is None:
            raise ValueError("no tenant bound; pass tenant= or set client.tenant")
        return f"/tenants/{tenant_id}{suffix}"

    # -- tenant lifecycle ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        """Service-wide stats: per-tenant queue depth, recovery report."""
        return self._request("GET", "/stats")

    def tenant_status(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        """One tenant's sources, sessions, and admission (queue) status."""
        return self._request("GET", self._tenant_path(tenant=tenant))

    def create_tenant(self, tenant: Optional[str] = None) -> str:
        body = {"tenant": tenant} if tenant else {}
        created = self._request("POST", "/tenants", body)["tenant"]
        if self.tenant is None:
            self.tenant = created
        return created

    def tenants(self) -> List[str]:
        return self._request("GET", "/tenants")["tenants"]

    def delete_tenant(self, tenant: Optional[str] = None) -> None:
        self._request("DELETE", self._tenant_path(tenant=tenant))

    # -- sources -------------------------------------------------------------------

    def upload_csv(self, alias: str, text: str, replace: bool = False,
                   **options: Any) -> Dict[str, Any]:
        body = {"alias": alias, "format": "csv", "data": text,
                "replace": replace, **options}
        return self._request("POST", self._tenant_path("/sources"), body)

    def upload_rows(self, alias: str, rows: Sequence[Dict[str, Any]],
                    replace: bool = False, **options: Any) -> Dict[str, Any]:
        body = {"alias": alias, "format": "json", "data": list(rows),
                "replace": replace, **options}
        return self._request("POST", self._tenant_path("/sources"), body)

    def sources(self) -> List[str]:
        return self._request("GET", self._tenant_path("/sources"))["sources"]

    def prepare(self, mode: Optional[str] = None,
                aliases: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if mode is not None:
            body["mode"] = mode
        if aliases is not None:
            body["aliases"] = list(aliases)
        return self._request("POST", self._tenant_path("/prepare"), body)["report"]

    # -- sessions ------------------------------------------------------------------

    def create_session(self, aliases: Sequence[str],
                       resolutions: Optional[Dict[str, Any]] = None,
                       metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {"aliases": list(aliases)}
        if resolutions is not None:
            body["resolutions"] = resolutions
        if metadata is not None:
            body["metadata"] = metadata
        return self._request("POST", self._tenant_path("/sessions"), body)

    def restore_session(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        return self._request(
            "POST", self._tenant_path("/sessions"), {"snapshot": snapshot}
        )

    def session_status(self, session: str) -> Dict[str, Any]:
        return self._request("GET", self._tenant_path(f"/sessions/{session}"))

    def advance(self, session: str, to: Optional[str] = None) -> Dict[str, Any]:
        body = {"to": to} if to is not None else {}
        return self._request(
            "POST", self._tenant_path(f"/sessions/{session}/advance"), body
        )

    def run_to_completion(self, session: str) -> Dict[str, Any]:
        return self.advance(session, to="done")

    def apply_decisions(self, session: str,
                        decisions: Sequence[Sequence[Any]],
                        apply: bool = True) -> Dict[str, Any]:
        return self._request(
            "POST",
            self._tenant_path(f"/sessions/{session}/decisions"),
            {"decisions": [list(item) for item in decisions], "apply": apply},
        )

    def snapshot(self, session: str) -> Dict[str, Any]:
        return self._request(
            "GET", self._tenant_path(f"/sessions/{session}/snapshot")
        )["snapshot"]

    def result(self, session: str) -> Dict[str, Any]:
        return self._request("GET", self._tenant_path(f"/sessions/{session}/result"))

    def result_csv(self, session: str) -> str:
        return self._request(
            "GET", self._tenant_path(f"/sessions/{session}/result?format=csv")
        )

    def query(self, statement: str) -> Dict[str, Any]:
        return self._request(
            "POST", self._tenant_path("/query"), {"statement": statement}
        )

    # -- event streaming -----------------------------------------------------------

    def stream_events(self, session: str,
                      timeout: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """Yield the session's events as dicts; ends on the ``end`` event.

        The stream replays already-buffered events first, so it is safe to
        subscribe after (or while) the session runs.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            connection.request(
                "GET", self._tenant_path(f"/sessions/{session}/events")
            )
            response = connection.getresponse()
            if response.status >= 400:
                self._raise(response.status, response.read())
            for line in response:
                line = line.strip()
                if not line.startswith(b"data: "):
                    continue
                event = json.loads(line[len(b"data: "):])
                yield event
                if event.get("event") == "end":
                    break
        finally:
            connection.close()
