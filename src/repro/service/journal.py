"""Per-tenant durability journal: append-only JSONL under ``--data-dir``.

Each tenant of a durable :class:`~repro.service.state.ServiceState` owns one
journal file::

    {data_dir}/tenants/{tenant-dirname}/journal.jsonl
    {data_dir}/tenants/{tenant-dirname}/artifacts/        (ArtifactStore)

The journal records everything needed to rebuild the tenant in a fresh
process without the client re-uploading anything — in arrival order:

* ``{"record": "tenant", "tenant": id, "config": {...}|null}`` — first line;
* ``{"record": "source", "body": {...}}`` — a successful source upload
  (the full request body, so replay goes through the same construction);
* ``{"record": "unregister", "alias": a}`` — a source removal;
* ``{"record": "prepare_mode", "mode": m}`` — preparation switched on;
* ``{"record": "session", "session": id, "snapshot": {...}}`` — a
  :meth:`FusionSession.to_dict` snapshot, appended at session creation and
  after every completed step / decision batch.  The *latest* snapshot per
  session id wins on recovery.

Appends are best-effort (an unwritable directory never fails the request,
mirroring :class:`~repro.prepare.store.ArtifactStore`), and reads tolerate a
truncated final line — the shape a kill mid-append leaves behind.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping

from repro.engine.relation import Relation
from repro.engine.io.csv_source import relation_from_csv_text
from repro.service.errors import ApiError

__all__ = ["TenantJournal", "relation_from_upload", "tenant_dirname"]


def tenant_dirname(tenant_id: str) -> str:
    """Filesystem-safe directory name for a tenant id.

    Readable prefix plus an id digest, so sanitised ids cannot collide
    (same scheme as the artifact store's alias prefixes).
    """
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", tenant_id)[:40]
    digest = hashlib.sha256(tenant_id.encode("utf-8")).hexdigest()[:8]
    return f"{safe}-{digest}"


def relation_from_upload(body: Mapping[str, Any]) -> Relation:
    """Build the relation described by a source-upload request body.

    Shared by the upload handler and journal replay so a recovered source
    is constructed by exactly the code path that registered it.
    """
    alias = body.get("alias")
    if alias is None:
        raise ApiError(400, "missing required field 'alias'", "MissingField")
    data = body.get("data")
    if data is None:
        raise ApiError(400, "missing required field 'data'", "MissingField")
    fmt = body.get("format", "json")
    if fmt == "csv":
        if not isinstance(data, str):
            raise ApiError(400, "csv uploads send the file text in 'data'")
        return relation_from_csv_text(
            data,
            name=alias,
            delimiter=body.get("delimiter", ","),
            has_header=bool(body.get("has_header", True)),
            column_names=body.get("column_names"),
        )
    if fmt == "json":
        if not isinstance(data, list):
            raise ApiError(400, "json uploads send a list of row objects in 'data'")
        return Relation.from_dicts(data, name=alias)
    raise ApiError(400, f"unknown source format {fmt!r} (csv or json)")


class TenantJournal:
    """Append-only JSONL journal for one tenant."""

    def __init__(self, path: Path):
        self.path = Path(path)

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record; best-effort (an unwritable path is ignored)."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                handle.flush()
        except (OSError, TypeError, ValueError):
            # durability is an add-on: a full disk or unserialisable payload
            # must never fail the request that produced the record
            pass

    def read(self) -> List[Dict[str, Any]]:
        """All decodable records, in order.

        A truncated or garbled line (the tail a kill mid-append leaves)
        is skipped rather than failing the whole recovery.
        """
        records: List[Dict[str, Any]] = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records
