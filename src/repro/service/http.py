"""Minimal HTTP/1.1 over asyncio streams — just enough for the service.

Scope is deliberate: ``Connection: close`` on every response (no
keep-alive, no chunked encoding — streams are delimited by EOF, which is
exactly what the SSE-style progress endpoint needs), JSON bodies sized by
``Content-Length``, no multipart.  The point of the hand-rolled layer is
staying inside the stdlib; it is not a general web server.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.service.errors import ApiError

__all__ = ["Request", "read_request", "write_response", "start_stream", "REASONS"]

#: Upper bound on header block and body sizes — the service takes inline
#: dataset uploads, so bodies are generous but still bounded.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


@dataclass
class Request:
    """A parsed request: method, split path, query and decoded JSON body."""

    method: str
    path: str
    parts: Tuple[str, ...]
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    _json: Any = field(default=None, repr=False)

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` for an empty body)."""
        if self._json is None:
            if not self.body:
                self._json = {}
            else:
                try:
                    self._json = json.loads(self.body)
                except json.JSONDecodeError as exc:
                    raise ApiError(400, f"request body is not valid JSON: {exc}")
        return self._json


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from *reader*; ``None`` on a closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ApiError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise ApiError(400, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise ApiError(400, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ApiError(400, f"malformed request line: {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path)
    parts = tuple(part for part in path.split("/") if part)
    query = {
        key: values[-1] for key, values in parse_qs(split.query).items()
    }

    body = b""
    length = int(headers.get("content-length", 0) or 0)
    if length < 0 or length > MAX_BODY_BYTES:
        raise ApiError(400, f"unacceptable content-length {length}")
    if length:
        body = await reader.readexactly(length)
    return Request(method.upper(), path, parts, query, headers, body)


def _head(status: int, content_type: str, length: Optional[int]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any = None,
    content_type: str = "application/json",
) -> None:
    """Write a complete response. *payload* is JSON-encoded unless already
    ``bytes`` (then *content_type* should say what it is)."""
    if payload is None:
        body = b""
    elif isinstance(payload, bytes):
        body = payload
    else:
        body = (json.dumps(payload) + "\n").encode("utf-8")
    writer.write(_head(status, content_type, len(body)) + body)
    await writer.drain()


async def start_stream(writer: asyncio.StreamWriter) -> None:
    """Begin an SSE-style response; the body is delimited by EOF."""
    writer.write(_head(200, "text/event-stream", None))
    await writer.drain()


async def write_stream_event(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Write one ``data:`` line of an event stream."""
    writer.write(f"data: {json.dumps(payload)}\n\n".encode("utf-8"))
    await writer.drain()
