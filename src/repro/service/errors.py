"""Structured error payloads: library exceptions → HTTP status codes.

The mapping is deliberately coarse — the service's contract is the
*payload shape* (``{"error": {"type": ..., "message": ...}}``), with the
status code as a routing hint:

* unknown tenant / source / session → 404
* malformed requests and invalid configuration → 400
* registering over an existing alias without ``replace`` → 409
* a pipeline step that failed on valid-looking input → 422
* a step that exceeded the per-request timeout → 504
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict

from repro.exceptions import (
    CatalogError,
    ConfigError,
    HummerError,
    QueryError,
    SchemaError,
    SourceError,
)

__all__ = ["ApiError", "error_payload", "status_for_exception"]


class ApiError(Exception):
    """An error raised by a handler with an explicit HTTP status.

    Handlers raise this directly for protocol-level problems (unknown
    route, malformed JSON, missing fields); library exceptions are mapped
    via :func:`status_for_exception` instead.
    """

    def __init__(self, status: int, message: str, error_type: str = "ApiError"):
        super().__init__(message)
        self.status = status
        self.error_type = error_type


def status_for_exception(exc: BaseException) -> int:
    """HTTP status for a library exception escaping a handler."""
    if isinstance(exc, ApiError):
        return exc.status
    # asyncio.TimeoutError is only an alias of TimeoutError from 3.11 on
    if isinstance(exc, (TimeoutError, asyncio.TimeoutError)):
        return 504
    if isinstance(exc, CatalogError):
        # "already registered" is a conflict, "unknown alias" is missing
        return 409 if "registered" in str(exc) else 404
    if isinstance(exc, (ConfigError, QueryError, SourceError, SchemaError)):
        return 400
    if isinstance(exc, (KeyError, ValueError, TypeError)):
        return 400
    if isinstance(exc, HummerError):
        return 422
    return 500


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """The service's uniform error body."""
    if isinstance(exc, ApiError):
        error_type = exc.error_type
    elif isinstance(exc, (TimeoutError, asyncio.TimeoutError)):
        error_type = "Timeout"
    else:
        error_type = type(exc).__name__
    return {"error": {"type": error_type, "message": str(exc) or error_type}}
